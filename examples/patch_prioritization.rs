//! The §VII "practical usage" workflow: a developer's clone detector has
//! flagged fifteen propagated vulnerable code clones — which patches are
//! urgent?
//!
//! Runs the whole Table II corpus through the portfolio verifier (in
//! parallel) and prints the prioritised patch list: demonstrated
//! memory-corruption triggers first, then DoS triggers, then the
//! verification failure (unknown risk), then the verified-safe clones.
//!
//! ```text
//! cargo run --release --example patch_prioritization
//! ```

use octo_corpus::all_pairs;
use octopocs::{render_portfolio, verify_portfolio, Job, PipelineConfig, SoftwarePairInput};

fn main() {
    let pairs = all_pairs();
    let names: Vec<String> = pairs
        .iter()
        .map(|p| format!("{} in {} {}", p.vuln_id, p.t_name, p.t_version))
        .collect();
    let jobs: Vec<Job<'_>> = pairs
        .iter()
        .zip(names.iter())
        .map(|(p, name)| Job {
            name,
            input: SoftwarePairInput {
                s: &p.s,
                t: &p.t,
                poc: &p.poc,
                shared: &p.shared,
            },
        })
        .collect();

    let t0 = std::time::Instant::now();
    let entries = verify_portfolio(&jobs, &PipelineConfig::default(), 4);
    println!(
        "verified {} propagated clones in {:.2}s\n",
        entries.len(),
        t0.elapsed().as_secs_f64()
    );
    println!("patch priority list:");
    print!("{}", render_portfolio(&entries));

    let urgent = entries
        .iter()
        .filter(|e| e.report.verdict.poc_generated())
        .count();
    let safe = entries
        .iter()
        .filter(|e| matches!(e.urgency, octopocs::Urgency::VerifiedSafe))
        .count();
    println!("\nsummary: {urgent} need patches now, {safe} verified safe for routine patching");
}
