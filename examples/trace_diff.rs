//! Execution-trace view of PoC reforming: why the original PoC dies in
//! the target and where the reformed one goes instead.
//!
//! Uses the VM's PIN-style trace recorder on the Idx-9 pair (gif2png →
//! artificial gif2png): the original PoC carries an invalid GIF version,
//! so the hardened target bails in its version check; the reformed PoC
//! sails through into the cloned `read_image` and crashes there.
//!
//! ```text
//! cargo run --release --example trace_diff
//! ```

use octo_corpus::pair_by_idx;
use octo_vm::{TraceHook, Vm};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn main() {
    let pair = pair_by_idx(9).expect("Idx 9 exists");
    println!(
        "pair: {} {} -> {} {}\n",
        pair.s_name, pair.s_version, pair.t_name, pair.t_version
    );

    // Reform the PoC first.
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let report = verify(&input, &PipelineConfig::default());
    let poc_prime = report.poc_prime().expect("Idx 9 is Type-II triggered");

    // Trace the original PoC through T.
    let mut orig = TraceHook::with_limit(64);
    let out_orig = Vm::new(&pair.t, pair.poc.bytes()).run_hooked(&mut orig);
    println!("--- T(original poc): {out_orig:?}");
    print!("{}", orig.trace.render(&pair.t));

    // Trace the reformed PoC through T.
    let mut reformed = TraceHook::with_limit(64);
    let out_ref = Vm::new(&pair.t, poc_prime.bytes()).run_hooked(&mut reformed);
    println!("\n--- T(reformed poc'): {out_ref:?}");
    print!("{}", reformed.trace.render(&pair.t));

    // Where do they part ways?
    match orig.trace.divergence(&reformed.trace) {
        Some(i) => println!(
            "\ntraces diverge at event #{i}: {:?} vs {:?}",
            orig.trace.events()[i],
            reformed.trace.events()[i]
        ),
        None => println!("\none trace is a prefix of the other"),
    }

    let ep = pair.t.func_by_name(&pair.shared[0]).expect("clone in T");
    println!(
        "\nep (`{}`) entries — original: {}, reformed: {}",
        pair.shared[0],
        orig.trace.entry_count(ep),
        reformed.trace.entry_count(ep)
    );
}
