//! The paper's §II-C motivating "triggered case": a JPEG2000 vulnerability
//! propagated from OpenJPEG's `opj_dump` into MuPDF.
//!
//! The original PoC is a malicious raw J2K codestream; MuPDF "can receive
//! only a PDF file as input", so the PoC as-is does nothing. OctoPoCs
//! extracts the crash primitive from the J2K file and re-wraps it in a
//! guiding input that drives MuPDF's PDF parser to the shared decoder —
//! "changing the header part of the original JPEG file into PDF file
//! format".
//!
//! ```text
//! cargo run --release --example mutool_reform
//! ```

use octo_corpus::pair_by_idx;
use octo_vm::Vm;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

fn main() {
    // Table II Idx 8: S = opj_dump 2.1.1, T = MuPDF 1.9.
    let pair = pair_by_idxx();
    println!(
        "S = {} {}   T = {} {}",
        pair.s_name, pair.s_version, pair.t_name, pair.t_version
    );
    println!("vulnerability: {} ({})\n", pair.vuln_id, pair.cwe);

    println!(
        "original poc ({} bytes — a raw mini-J2K codestream):",
        pair.poc.len()
    );
    println!("{}", pair.poc.hexdump());

    // 1. The original PoC crashes S ...
    let s_out = Vm::new(&pair.s, pair.poc.bytes()).run();
    println!("S(poc)  -> {s_out:?}");

    // 2. ... but not T (MuPDF wants a PDF).
    let t_out = Vm::new(&pair.t, pair.poc.bytes()).run();
    println!("T(poc)  -> {t_out:?}   (the PoC does not even pass the header check)\n");

    // 3. Reform the PoC.
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let report = verify(&input, &PipelineConfig::default());
    let Verdict::Triggered {
        kind, poc_prime, ..
    } = &report.verdict
    else {
        panic!("expected a triggered verdict, got {:?}", report.verdict);
    };
    println!("verdict: triggered, {kind} (guiding input had to change)");
    println!(
        "reformed poc' ({} bytes — now a mini-PDF with the J2K crash primitive inside):",
        poc_prime.len()
    );
    println!("{}", poc_prime.hexdump());

    // 4. Demonstrate the reformed PoC.
    let t_out = Vm::new(&pair.t, poc_prime.bytes()).run();
    println!("T(poc') -> {t_out:?}");
    let crash = t_out.crash().expect("poc' crashes T");
    println!("\ncrash backtrace in T:\n{}", crash.backtrace);
}

fn pair_by_idxx() -> octo_corpus::SoftwarePair {
    pair_by_idx(8).expect("Idx 8 exists")
}
