//! Static analysis over the whole Table II corpus.
//!
//! Runs `octo-lint` over the `T` program of each of the 15 software pairs
//! and the P0 pre-screen (via the pipeline with `static_prescreen` on),
//! then prints a per-pair summary table: dead code found, statically
//! resolvable indirect control flow, and whether `ep` was proved
//! statically unreachable or unstitchable before any symbolic execution.
//!
//! ```text
//! cargo run --example lint_corpus
//! ```

use octo_corpus::all_pairs;
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn main() {
    let config = PipelineConfig::default().with_static_prescreen();
    println!(
        "{:<4} {:<24} {:>5} {:>6} {:>6} {:>6} {:>6}  {:<10} verdict",
        "Idx", "T", "diags", "dead", "ijmp", "icall", "ubd", "prescreen"
    );
    println!("{}", "-".repeat(92));

    let mut pairs_with_dead = 0u32;
    let mut pairs_with_resolved = 0u32;
    let mut pairs_prescreened = 0u32;

    for pair in all_pairs() {
        let lint = octo_lint::lint_program(&pair.t);
        let s = &lint.summary;

        let input = SoftwarePairInput {
            s: &pair.s,
            t: &pair.t,
            poc: &pair.poc,
            shared: &pair.shared,
        };
        let report = verify(&input, &config);

        let dead = s.unreachable_blocks + s.dead_stores;
        let resolved = s.resolved_ijmps + s.resolved_icalls;
        if dead > 0 {
            pairs_with_dead += 1;
        }
        if resolved > 0 {
            pairs_with_resolved += 1;
        }
        if report.prescreen {
            pairs_prescreened += 1;
        }

        println!(
            "{:<4} {:<24} {:>5} {:>6} {:>6} {:>6} {:>6}  {:<10} {}",
            pair.idx,
            pair.t_name,
            lint.diags.len(),
            dead,
            s.resolved_ijmps,
            s.resolved_icalls,
            s.use_before_def,
            if report.prescreen { "P0" } else { "-" },
            report.verdict.type_label(),
        );
    }

    println!("{}", "-".repeat(92));
    println!(
        "pairs with dead code: {pairs_with_dead} | pairs with statically \
         resolvable indirects: {pairs_with_resolved} | pairs decided in P0: \
         {pairs_prescreened}"
    );
}
