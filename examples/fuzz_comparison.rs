//! Head-to-head: greybox fuzzing vs PoC reforming on the gif2png pair.
//!
//! Reproduces the flavour of Table V on the one target where fuzzing has a
//! fighting chance (the artificial gif2png: a shallow size-byte bug behind
//! a strict version check). AFLFast finds the crash by mutation; OctoPoCs
//! reforms the original PoC directly. On the magic-gated targets (Idx 7
//! and 8) the fuzzers exhaust 20 virtual hours — run
//! `cargo run --release -p octo-bench --bin table5` for the full
//! comparison.
//!
//! ```text
//! cargo run --release --example fuzz_comparison
//! ```

use octo_corpus::pair_by_idx;
use octo_fuzz::{run_aflfast, FuzzConfig, FuzzOutcome, FuzzTarget};
use octo_poc::formats::mini_gif;
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn main() {
    // Table II Idx 9: gif2png → gif2png (artificial).
    let pair = pair_by_idx(9).expect("Idx 9 exists");
    let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));

    // --- AFLFast, seeded with a valid GIF, 1 virtual hour budget. ---
    let target = FuzzTarget {
        program: &pair.t,
        shared,
        limits: octo_vm::Limits::default(),
    };
    let seed = mini_gif::Builder::new().block(&[1, 2, 3]).build();
    let config = FuzzConfig {
        budget_virtual_secs: 3_600.0,
        ..FuzzConfig::default()
    };
    println!("AFLFast fuzzing {} (1 virtual hour budget)...", pair.t_name);
    match run_aflfast(&target, &[seed], config) {
        FuzzOutcome::CrashFound {
            input,
            stats,
            crash,
        } => {
            println!(
                "  crash after {:.1} virtual s, {} execs ({} edges, {} paths)",
                stats.virtual_seconds, stats.execs, stats.edges, stats.distinct_paths
            );
            println!(
                "  crashing input: {} bytes, class {}",
                input.len(),
                crash.kind.class()
            );
        }
        FuzzOutcome::BudgetExhausted { stats } => {
            println!("  budget exhausted after {} execs", stats.execs)
        }
        FuzzOutcome::ToolError { message } => println!("  tool error: {message}"),
    }

    // --- OctoPoCs: reform the disclosed PoC. ---
    println!("\nOctoPoCs reforming the disclosed PoC...");
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let t0 = std::time::Instant::now();
    let report = verify(&input, &PipelineConfig::default());
    println!(
        "  verdict {} in {:.2} wall s (symex backtracks: {})",
        report.verdict,
        t0.elapsed().as_secs_f64(),
        report
            .symex_stats
            .as_ref()
            .map(|s| s.backtracks)
            .unwrap_or(0)
    );
    if let Some(poc_prime) = report.poc_prime() {
        let diff = pair.poc.diff(poc_prime);
        println!(
            "  poc' differs from poc at {} offsets (version bytes were fixed up):",
            diff.len()
        );
        for (off, old, new) in diff.iter().take(8) {
            println!("    offset {off:>3}: {old:#04x} -> {new:#04x}");
        }
    }
}
