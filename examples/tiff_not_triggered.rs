//! The paper's §II-C "non-triggered case": the LibTIFF CVE-2016-10095
//! stack overflow cloned into OpenJPEG's `opj_compress`.
//!
//! The vulnerable `_TIFFVGetField` is present in the target, but
//! `tiftoimage` only ever calls it with seven hard-coded tag values — the
//! crash-triggering tag `0x13d` can never be delivered. OctoPoCs discovers
//! this when the combine-phase constraints become unsatisfiable and
//! verifies the vulnerability as *not triggerable* (Type-III), which is
//! exactly the information a developer needs to deprioritise the patch.
//!
//! ```text
//! cargo run --release --example tiff_not_triggered
//! ```

use octo_corpus::pair_by_idx;
use octo_vm::Vm;
use octopocs::{verify, NotTriggerableReason, PipelineConfig, SoftwarePairInput, Verdict};

fn main() {
    // Table II Idx 10: S = tiffsplit 4.0.6, T = opj_compress 2.3.1.
    let pair = pair_by_idx(10).expect("Idx 10 exists");
    println!(
        "S = {} {}   T = {} {}",
        pair.s_name, pair.s_version, pair.t_name, pair.t_version
    );
    println!("vulnerability: {} ({})\n", pair.vuln_id, pair.cwe);

    // The PoC demonstrably crashes S (tag 0x13d reaches the clone).
    let s_out = Vm::new(&pair.s, pair.poc.bytes()).run();
    println!("S(poc) -> {s_out:?}");
    let crash = s_out.crash().expect("S crashes");
    println!("S crash: {} [{}]\n", crash.kind, crash.kind.class());

    // Verification proves the clone cannot be triggered in T.
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let report = verify(&input, &PipelineConfig::default());
    match &report.verdict {
        Verdict::NotTriggerable { reason } => {
            println!("verdict: NOT triggerable (Type-III)");
            println!("reason : {reason}");
            assert_eq!(*reason, NotTriggerableReason::UnsatisfiableConstraints);
            println!(
                "\nThe shared `tiff_vget_field` is reachable in {}, but every call\n\
                 site passes a hard-coded tag — the recorded crash argument 0x13d\n\
                 conflicts with all of them, so no input file can trigger the clone.",
                pair.t_name
            );
        }
        other => panic!("expected Type-III, got {other:?}"),
    }
    println!(
        "\npipeline: ep={} entries={} p1={} insts, wall={:.3}s",
        report.ep_name.as_deref().unwrap_or("?"),
        report.ep_entries,
        report.p1_insts,
        report.wall_seconds
    );
}
