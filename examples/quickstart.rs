//! Quickstart: verify a propagated vulnerability end-to-end.
//!
//! Defines a tiny original software `S` (crashes when the shared decoder
//! sees a magic byte) and a propagated software `T` (same cloned decoder
//! behind a different header), then runs the full OctoPoCs pipeline and
//! prints the reformed PoC.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use octo_ir::parse::parse_program;
use octo_poc::PocFile;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

/// The cloned vulnerable function: crashes on input byte 0x41.
const SHARED: &str = r#"
func decode(fd) {
entry:
    v = getc fd
    c = eq v, 0x41
    br c, boom, fine
boom:
    buf = alloc 4
    store.1 buf + 4, v
    jmp fine
fine:
    ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S reads its one-byte payload directly.
    let s = parse_program(&format!(
        r#"
func main() {{
entry:
    fd = open
    call decode(fd)
    halt 0
}}
{SHARED}
"#
    ))?;

    // T requires an "OK" two-byte header before the cloned decoder runs.
    let t = parse_program(&format!(
        r#"
func main() {{
entry:
    fd = open
    h1 = getc fd
    ok1 = eq h1, 'O'
    br ok1, second, rej
second:
    h2 = getc fd
    ok2 = eq h2, 'K'
    br ok2, go, rej
go:
    call decode(fd)
    halt 0
rej:
    halt 1
}}
{SHARED}
"#
    ))?;

    // The original PoC crashes S but not T (wrong header).
    let poc = PocFile::from(&b"A"[..]);
    let shared = vec!["decode".to_string()];

    let input = SoftwarePairInput {
        s: &s,
        t: &t,
        poc: &poc,
        shared: &shared,
    };
    let report = verify(&input, &PipelineConfig::default());

    println!(
        "ep              : {}",
        report.ep_name.as_deref().unwrap_or("?")
    );
    println!("ep entries in S : {}", report.ep_entries);
    println!("verdict         : {}", report.verdict);
    match &report.verdict {
        Verdict::Triggered {
            kind, poc_prime, ..
        } => {
            println!("classification  : {kind}");
            println!("reformed poc' ({} bytes):", poc_prime.len());
            println!("{}", poc_prime.hexdump());
            // Demonstrate it: run T on poc'.
            let out = octo_vm::Vm::new(&t, poc_prime.bytes()).run();
            println!("T(poc') outcome : {out:?}");
        }
        other => println!("unexpected verdict: {other:?}"),
    }
    Ok(())
}
