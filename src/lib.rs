//! Umbrella package hosting the repository-level integration tests and examples.
#![warn(missing_docs)]
