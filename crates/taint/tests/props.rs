//! Property tests for the taint engine: over random record-parser
//! programs, the extracted crash primitives obey the P1 contract.

use octo_ir::parse::parse_program;
use octo_poc::PocFile;
use octo_taint::{extract_crash_primitives, TaintConfig};
use proptest::prelude::*;

/// A parser with `n_records` size-prefixed records, each handed to the
/// shared `consume` function, which crashes while processing the last
/// record. Record payload bytes are consumed *inside* ℓ; the size bytes
/// are consumed by main (guiding).
fn record_parser(n_records: usize) -> octo_ir::Program {
    let src = format!(
        r#"
func main() {{
entry:
    fd = open
    i = 0
    jmp loop
loop:
    done = uge i, {n_records}
    br done, boom_check, rec
rec:
    size = getc fd
    call consume(fd, size)
    i = add i, 1
    jmp loop
boom_check:
    call consume(fd, 255)
    halt 0
}}
func consume(fd, size) {{
entry:
    buf = alloc 8
    i = 0
    jmp copy
copy:
    done = uge i, size
    br done, fin, body
body:
    v = getc fd
    p = add buf, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    ret 0
}}
"#
    );
    parse_program(&src).expect("generated parser parses")
}

/// Builds a PoC with the given record payloads; a final oversized call
/// crashes in ℓ.
fn build_poc(payloads: &[Vec<u8>]) -> PocFile {
    let mut bytes = Vec::new();
    for p in payloads {
        bytes.push(p.len() as u8);
        bytes.extend_from_slice(p);
    }
    // trailing bytes feed the final oversized consume
    bytes.extend_from_slice(&[0xEE; 4]);
    PocFile::new(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// P1 contract over random record layouts:
    /// * extraction succeeds (S crashes in ℓ),
    /// * one bunch per ep entry, in order,
    /// * every recorded byte value matches the PoC,
    /// * payload bytes land in their record's bunch; size bytes (consumed
    ///   by main) never appear in any bunch.
    #[test]
    fn bunches_follow_record_structure(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..6), 0..4),
    ) {
        let program = record_parser(payloads.len());
        let poc = build_poc(&payloads);
        let ep = program.func_by_name("consume").expect("ep");
        let config = TaintConfig::new(ep, vec![ep]);
        let extraction = extract_crash_primitives(&program, &poc, &config)
            .expect("S must crash in ℓ");
        let q = &extraction.primitives;

        // One bunch per record plus the crashing entry.
        prop_assert_eq!(q.entry_count(), payloads.len() + 1);
        prop_assert!(q.consistent_with(&poc));

        // Size bytes are consumed in main and must not be primitives.
        let mut offset = 0u32;
        for (i, payload) in payloads.iter().enumerate() {
            let size_off = offset;
            let bunch = q.bunch(i).expect("bunch per record");
            let offs: Vec<u32> = bunch.iter().map(|(o, _)| o).collect();
            prop_assert!(
                !offs.contains(&size_off),
                "record {i}: size byte {size_off} leaked into the bunch"
            );
            // Every payload byte is in this record's bunch.
            for j in 0..payload.len() as u32 {
                prop_assert!(
                    offs.contains(&(size_off + 1 + j)),
                    "record {i}: payload byte {} missing from bunch {offs:?}",
                    size_off + 1 + j
                );
            }
            offset += 1 + payload.len() as u32;
        }

        // ep arguments were recorded for every entry.
        for i in 0..q.entry_count() {
            let args = q.args(i).expect("args recorded");
            prop_assert_eq!(args.len(), 2); // (fd, size)
            prop_assert_eq!(args[0], 3); // the input fd
        }
    }

    /// The context-free ablation produces exactly one bunch whose offsets
    /// are the union of the context-aware bunches'.
    #[test]
    fn context_free_is_the_flattened_union(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..6), 1..4),
    ) {
        let program = record_parser(payloads.len());
        let poc = build_poc(&payloads);
        let ep = program.func_by_name("consume").expect("ep");
        let aware = extract_crash_primitives(
            &program, &poc, &TaintConfig::new(ep, vec![ep]))
            .expect("aware extraction");
        let plain = extract_crash_primitives(
            &program, &poc, &TaintConfig::new(ep, vec![ep]).context_free())
            .expect("plain extraction");
        prop_assert_eq!(plain.primitives.entry_count(), 1);
        prop_assert_eq!(
            plain.primitives.all_offsets(),
            aware.primitives.all_offsets()
        );
        prop_assert_eq!(
            plain.primitives.all_offsets(),
            aware.primitives.flatten().all_offsets()
        );
    }
}
