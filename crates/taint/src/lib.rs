//! # octo-taint — context-aware dynamic taint analysis (phase P1).
//!
//! The paper's taint engine is 2,400 lines of C++ on Intel PIN (§IV-A);
//! this crate is the same engine as a [`octo_vm::Hook`] client of our
//! PIN-substitute VM. It implements the paper's algorithm 1:
//!
//! 1. **Specify the memory area of interest** — hook every file-read and
//!    memory-mapping operation and record, per memory byte, which PoC file
//!    offset produced it (Fig. 4).
//! 2. **Monitor from the program entry** — propagate taint through
//!    registers and memory from the very start, because "some bytes in poc
//!    may be read and stored before entering ℓ and then *indirectly* used
//!    in ℓ" (the *candidate addresses*).
//! 3. **Context-aware extraction** — count entries into `ep`; while the
//!    execution is inside `ℓ`, every access whose data (or address)
//!    carries taint contributes its file offsets to the *bunch* of the
//!    current entry. Bunches are emitted in entry order together with the
//!    arguments `ep` received (phase P3 replays those arguments in `T`).
//!
//! Two ablation switches reproduce the paper's design choices:
//! [`Granularity::Word`] (vs the paper's byte-level tainting, §IV-A) and
//! [`ContextMode::ContextFree`] (the Table III baseline, which collapses
//! every bunch into one).
//!
//! ```
//! use octo_ir::parse::parse_program;
//! use octo_poc::PocFile;
//! use octo_taint::{extract_crash_primitives, TaintConfig};
//!
//! let src = r#"
//! func main() {
//! entry:
//!     fd = open
//!     buf = alloc 4
//!     n = read fd, buf, 4
//!     call shared(buf)
//!     halt 0
//! }
//! func shared(p) {
//! entry:
//!     v = load.1 p + 2
//!     c = eq v, 0x41
//!     br c, boom, fine
//! boom:
//!     trap 1
//! fine:
//!     ret
//! }
//! "#;
//! let program = parse_program(src).expect("valid");
//! let ep = program.func_by_name("shared").expect("exists");
//! let poc = PocFile::from(&b"xyA!"[..]);
//! let cfg = TaintConfig::new(ep, vec![ep]);
//! let extraction = extract_crash_primitives(&program, &poc, &cfg).expect("crashes");
//! // The byte at offset 2 was consumed inside the shared function.
//! let bunch = extraction.primitives.bunch(0).expect("one entry");
//! assert!(bunch.iter().any(|(off, v)| off == 2 && v == 0x41));
//! ```
#![warn(missing_docs)]

pub mod engine;
pub mod extract;
pub mod set;

pub use engine::{ContextMode, Granularity, TaintConfig, TaintEngine, TaintStats};
pub use extract::{extract_crash_primitives, extract_with_limits, Extraction, TaintError};
pub use set::TaintSet;
