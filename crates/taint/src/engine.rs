//! The taint engine: a [`Hook`] that tracks PoC bytes through execution.

use std::collections::HashMap;

use octo_ir::{FuncId, Inst, Operand, Reg, Terminator};
use octo_poc::{Bunch, CrashPrimitives, PocFile};
use octo_vm::{CrashReport, Hook, HookCtx};

use crate::set::TaintSet;

/// Taint granularity (paper §IV-A: "we also handle the tainting at the
/// byte character-level").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Track each input byte independently (the paper's choice).
    #[default]
    Byte,
    /// Track 8-byte-aligned groups — the coarser alternative the paper
    /// rejects; kept as an ablation switch. Over-taints neighbouring
    /// bytes, bloating bunches.
    Word,
}

/// Whether extraction distinguishes `ep` entries (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextMode {
    /// One bunch per `ep` entry, in order (the paper's approach).
    #[default]
    ContextAware,
    /// All primitive bytes collapse into a single bunch ("located in poc'
    /// at once") — the Table III baseline.
    ContextFree,
}

/// Configuration of one extraction run.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// The entry point of the shared code area `ℓ`.
    pub ep: FuncId,
    /// All functions of `ℓ` (used for reporting; the dynamic extent of an
    /// `ep` activation defines "inside ℓ").
    pub shared: Vec<FuncId>,
    /// Byte- or word-level tainting.
    pub granularity: Granularity,
    /// Context-aware or context-free bunching.
    pub context: ContextMode,
}

impl TaintConfig {
    /// Byte-level, context-aware configuration (the paper's).
    pub fn new(ep: FuncId, shared: Vec<FuncId>) -> TaintConfig {
        TaintConfig {
            ep,
            shared,
            granularity: Granularity::Byte,
            context: ContextMode::ContextAware,
        }
    }

    /// Switches to word-level tainting.
    pub fn word_level(mut self) -> TaintConfig {
        self.granularity = Granularity::Word;
        self
    }

    /// Switches to context-free bunching (Table III baseline).
    pub fn context_free(mut self) -> TaintConfig {
        self.context = ContextMode::ContextFree;
        self
    }
}

#[derive(Default)]
struct FrameTaint {
    regs: HashMap<u16, TaintSet>,
}

impl FrameTaint {
    fn get(&self, r: Reg) -> TaintSet {
        self.regs.get(&r.0).cloned().unwrap_or_default()
    }

    fn set(&mut self, r: Reg, t: TaintSet) {
        if t.is_empty() {
            self.regs.remove(&r.0);
        } else {
            self.regs.insert(r.0, t);
        }
    }
}

/// Counters of one taint run (P1 observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintStats {
    /// Input-file bytes uploaded into simulated memory (getc/read).
    pub bytes_uploaded: u64,
    /// High-watermark of the tainted-address map.
    pub peak_tainted_addrs: u64,
    /// Taint sets recorded into bunches while inside `ℓ`.
    pub taint_records: u64,
}

/// The taint-tracking hook. Attach to a [`octo_vm::Vm`] run over the
/// original software `S` executing the original `poc`, then take the
/// extracted primitives with [`TaintEngine::into_primitives`].
pub struct TaintEngine {
    config: TaintConfig,
    poc: PocFile,
    mem: HashMap<u64, TaintSet>,
    frames: Vec<FrameTaint>,
    /// Destination registers of in-flight calls (one per frame above main).
    call_dsts: Vec<Option<Reg>>,
    /// Argument taints stashed between `on_inst(Call)` and `on_call`.
    pending_args: Vec<TaintSet>,
    /// Dst register stashed between `on_inst(Call)` and `on_call`.
    pending_dst: Option<Reg>,
    /// Return-value taint stashed between `on_term(Ret)` and `on_ret`.
    pending_ret: TaintSet,
    /// Call depth of the active `ep` activation, when inside `ℓ`.
    inside_depth: Option<usize>,
    ep_count: u32,
    acc: Option<Bunch>,
    acc_args: Vec<u64>,
    primitives: CrashPrimitives,
    crash: Option<CrashReport>,
    stats: TaintStats,
}

impl TaintEngine {
    /// Creates an engine for one run of `S` on `poc`.
    pub fn new(config: TaintConfig, poc: PocFile) -> TaintEngine {
        TaintEngine {
            config,
            poc,
            mem: HashMap::new(),
            frames: Vec::new(),
            call_dsts: Vec::new(),
            pending_args: Vec::new(),
            pending_dst: None,
            pending_ret: TaintSet::empty(),
            inside_depth: None,
            ep_count: 0,
            acc: None,
            acc_args: Vec::new(),
            primitives: CrashPrimitives::new(),
            crash: None,
            stats: TaintStats::default(),
        }
    }

    /// Number of times execution entered `ep`.
    pub fn ep_entries(&self) -> u32 {
        self.ep_count
    }

    /// The crash report observed, if any.
    pub fn crash(&self) -> Option<&CrashReport> {
        self.crash.as_ref()
    }

    /// Counters accumulated so far (read them before
    /// [`TaintEngine::into_primitives`] consumes the engine).
    pub fn stats(&self) -> TaintStats {
        self.stats
    }

    /// Finalises and returns the extracted crash primitives.
    pub fn into_primitives(mut self) -> CrashPrimitives {
        self.close_bunch(true);
        self.primitives
    }

    fn op_taint(&self, op: Operand) -> TaintSet {
        match op {
            Operand::Reg(r) => self.frames.last().map(|f| f.get(r)).unwrap_or_default(),
            Operand::Imm(_) => TaintSet::empty(),
        }
    }

    fn set_reg(&mut self, r: Reg, t: TaintSet) {
        if let Some(f) = self.frames.last_mut() {
            f.set(r, t);
        }
    }

    fn mem_taint_range(&self, addr: u64, len: u64) -> TaintSet {
        let mut acc = TaintSet::empty();
        for i in 0..len {
            if let Some(t) = self.mem.get(&addr.wrapping_add(i)) {
                acc = acc.union(t);
            }
        }
        acc
    }

    fn set_mem_range(&mut self, addr: u64, len: u64, t: &TaintSet) {
        for i in 0..len {
            let a = addr.wrapping_add(i);
            if t.is_empty() {
                // Algorithm 1, line 11: overwriting with untainted data
                // removes the address from the tainted set.
                self.mem.remove(&a);
            } else {
                self.mem.insert(a, t.clone());
            }
        }
        self.note_tainted_peak();
    }

    /// Keeps the tainted-address watermark current after map growth.
    fn note_tainted_peak(&mut self) {
        self.stats.peak_tainted_addrs = self.stats.peak_tainted_addrs.max(self.mem.len() as u64);
    }

    fn inside(&self) -> bool {
        self.inside_depth.is_some()
    }

    /// Adds the offsets of `t` to the current bunch (P1.3).
    fn record(&mut self, t: &TaintSet) {
        if t.is_empty() || !self.inside() {
            return;
        }
        if let Some(b) = &mut self.acc {
            self.stats.taint_records += 1;
            for off in t.iter() {
                b.add(off, self.poc.byte(off));
            }
        }
    }

    /// Marks freshly uploaded file bytes: `mem[addr+i] = {file_off+i}`.
    fn upload(&mut self, addr: u64, file_off: u64, len: u64) {
        self.stats.bytes_uploaded += len;
        match self.config.granularity {
            Granularity::Byte => {
                for i in 0..len {
                    self.mem
                        .insert(addr + i, TaintSet::single((file_off + i) as u32));
                }
            }
            Granularity::Word => {
                // Each aligned 8-byte group shares the union of the offsets
                // uploaded into it.
                let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
                for i in 0..len {
                    groups
                        .entry((addr + i) & !7)
                        .or_default()
                        .push((file_off + i) as u32);
                }
                for (base, offs) in groups {
                    let set = TaintSet::from_iter(offs);
                    for j in 0..8 {
                        self.mem.insert(base + j, set.clone());
                    }
                }
            }
        }
        self.note_tainted_peak();
    }

    fn open_bunch(&mut self, args: &[u64]) {
        match self.config.context {
            ContextMode::ContextAware => {
                self.acc = Some(Bunch::new(self.ep_count));
                self.acc_args = args.to_vec();
            }
            ContextMode::ContextFree => {
                if self.acc.is_none() {
                    self.acc = Some(Bunch::new(1));
                    self.acc_args = args.to_vec();
                }
            }
        }
    }

    fn close_bunch(&mut self, final_close: bool) {
        match self.config.context {
            ContextMode::ContextAware => {
                if let Some(b) = self.acc.take() {
                    octo_trace::emit(octo_trace::TraceKind::BunchRecorded {
                        entry: b.seq,
                        bytes: b.len() as u64,
                    });
                    self.primitives.push(b, std::mem::take(&mut self.acc_args));
                }
            }
            ContextMode::ContextFree => {
                if final_close {
                    if let Some(b) = self.acc.take() {
                        octo_trace::emit(octo_trace::TraceKind::BunchRecorded {
                            entry: b.seq,
                            bytes: b.len() as u64,
                        });
                        self.primitives.push(b, std::mem::take(&mut self.acc_args));
                    }
                }
            }
        }
    }
}

impl Hook for TaintEngine {
    fn on_inst(&mut self, ctx: &HookCtx<'_>, inst: &Inst) {
        let eval = |op: Operand| match op {
            Operand::Reg(r) => ctx.regs[r.0 as usize],
            Operand::Imm(v) => v,
        };
        match inst {
            Inst::Const { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::BlockAddr { dst, .. }
            | Inst::FileOpen { dst }
            | Inst::FileTell { dst, .. }
            | Inst::FileSize { dst, .. } => self.set_reg(*dst, TaintSet::empty()),
            Inst::Move { dst, src } => {
                let t = self.op_taint(*src);
                self.set_reg(*dst, t);
            }
            Inst::Bin { dst, lhs, rhs, .. } | Inst::CheckedBin { dst, lhs, rhs, .. } => {
                let t = self.op_taint(*lhs).union(&self.op_taint(*rhs));
                self.set_reg(*dst, t);
            }
            Inst::Un { dst, src, .. } => {
                let t = self.op_taint(*src);
                self.set_reg(*dst, t);
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let a = eval(*addr).wrapping_add(*offset);
                let data = self.mem_taint_range(a, width.bytes());
                let addr_t = self.op_taint(*addr);
                let full = data.union(&addr_t);
                self.record(&full);
                self.set_reg(*dst, full);
            }
            Inst::Store {
                addr,
                offset,
                src,
                width,
            } => {
                let a = eval(*addr).wrapping_add(*offset);
                let old = self.mem_taint_range(a, width.bytes());
                let src_t = self.op_taint(*src);
                let addr_t = self.op_taint(*addr);
                let touched = old.union(&src_t).union(&addr_t);
                self.record(&touched);
                self.set_mem_range(a, width.bytes(), &src_t);
            }
            Inst::Call { dst, args, .. } => {
                self.pending_args = args.iter().map(|a| self.op_taint(*a)).collect();
                self.pending_dst = *dst;
            }
            Inst::CallIndirect { dst, args, .. } => {
                self.pending_args = args.iter().map(|a| self.op_taint(*a)).collect();
                self.pending_dst = *dst;
            }
            Inst::FileRead { dst, buf, len, .. } => {
                let buf_addr = eval(*buf);
                let want = eval(*len);
                let pos = ctx.file_pos.min(ctx.file_size);
                let count = want.min(ctx.file_size - pos);
                if count > 0 {
                    self.upload(buf_addr, pos, count);
                    // Bytes read while inside ℓ are used in ℓ.
                    let offs = TaintSet::from_iter(pos as u32..(pos + count) as u32);
                    self.record(&offs);
                }
                self.set_reg(*dst, TaintSet::empty());
            }
            Inst::FileGetc { dst, .. } => {
                if ctx.file_pos < ctx.file_size {
                    // A getc consumes one input byte just like a read;
                    // it lands in a register instead of memory, so it is
                    // billed here rather than in `upload`.
                    self.stats.bytes_uploaded += 1;
                    let t = TaintSet::single(ctx.file_pos as u32);
                    self.record(&t);
                    self.set_reg(*dst, t);
                } else {
                    self.set_reg(*dst, TaintSet::empty());
                }
            }
            Inst::MemMap { dst, .. } => {
                // The whole input is uploaded; actual use inside ℓ is
                // recorded at the subsequent loads.
                self.set_reg(*dst, TaintSet::empty());
            }
            Inst::FileSeek { .. } | Inst::Trap { .. } | Inst::Nop => {}
        }
    }

    fn on_term(&mut self, _ctx: &HookCtx<'_>, term: &Terminator) {
        if let Terminator::Ret(Some(v)) = term {
            self.pending_ret = self.op_taint(*v);
        } else if let Terminator::Ret(None) = term {
            self.pending_ret = TaintSet::empty();
        }
    }

    fn on_mmap(&mut self, base: u64, len: u64) {
        self.upload(base, 0, len);
    }

    fn on_call(&mut self, callee: FuncId, args: &[u64], depth: usize) {
        let mut frame = FrameTaint::default();
        for (i, t) in self.pending_args.drain(..).enumerate() {
            frame.set(Reg(i as u16), t);
        }
        self.frames.push(frame);
        if depth > 1 {
            self.call_dsts.push(self.pending_dst.take());
        }
        if callee == self.config.ep && !self.inside() {
            self.ep_count += 1;
            octo_trace::emit(octo_trace::TraceKind::EpEntered {
                entry: self.ep_count,
            });
            self.inside_depth = Some(depth);
            self.open_bunch(args);
        }
    }

    fn on_ret(&mut self, _func: FuncId, value: Option<u64>, depth: usize) {
        if self.inside_depth == Some(depth) {
            self.inside_depth = None;
            self.close_bunch(false);
        }
        self.frames.pop();
        let dst = if depth > 1 {
            self.call_dsts.pop().flatten()
        } else {
            None
        };
        if let Some(dst) = dst {
            let t = if value.is_some() {
                std::mem::take(&mut self.pending_ret)
            } else {
                TaintSet::empty()
            };
            self.set_reg(dst, t);
        }
        self.pending_ret = TaintSet::empty();
    }

    fn on_crash(&mut self, report: &CrashReport) {
        self.crash = Some(report.clone());
        if self.inside() {
            self.inside_depth = None;
            self.close_bunch(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_vm::Vm;

    fn run_taint(src: &str, poc: &[u8], ep_name: &str) -> (TaintEngine, octo_vm::RunOutcome) {
        let p = parse_program(src).unwrap();
        let ep = p.func_by_name(ep_name).unwrap();
        let mut engine = TaintEngine::new(TaintConfig::new(ep, vec![ep]), PocFile::from(poc));
        let out = Vm::new(&p, poc).run_hooked(&mut engine);
        (engine, out)
    }

    const DIRECT_USE: &str = r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 8
    call shared(buf)
    halt 0
}
func shared(p) {
entry:
    v = load.1 p + 3
    c = eq v, 0x58
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    #[test]
    fn bytes_loaded_inside_shared_are_primitives() {
        let (engine, out) = run_taint(DIRECT_USE, b"aaaXbbbb", "shared");
        assert!(out.is_crash());
        assert_eq!(engine.ep_entries(), 1);
        let q = engine.into_primitives();
        assert_eq!(q.entry_count(), 1);
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![3]);
        assert_eq!(q.bunch(0).unwrap().iter().next().unwrap().1, b'X');
    }

    #[test]
    fn indirect_use_through_candidate_address() {
        // A byte is read and *stored* before ℓ, then loaded inside ℓ.
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 4
    n = read fd, buf, 4
    stash = alloc 8
    v = load.1 buf + 1
    store.1 stash + 5, v
    call shared(stash)
    halt 0
}
func shared(p) {
entry:
    w = load.1 p + 5
    c = eq w, 0x51
    br c, boom, fine
boom:
    trap 2
fine:
    ret
}
"#;
        let (engine, out) = run_taint(src, b"xQzz", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![1], "candidate address must carry offset 1");
    }

    const MULTI_ENTRY: &str = r#"
func main() {
entry:
    fd = open
    buf = alloc 2
    n = read fd, buf, 2
    call shared(buf)
    n2 = read fd, buf, 2
    call shared(buf)
    halt 0
}
func shared(p) {
entry:
    v = load.1 p
    w = load.1 p + 1
    c = eq w, 0x21
    br c, boom, fine
boom:
    trap 3
fine:
    ret
}
"#;

    #[test]
    fn context_aware_separates_bunches_per_entry() {
        let (engine, out) = run_taint(MULTI_ENTRY, b"ab1!", "shared");
        assert!(out.is_crash());
        assert_eq!(engine.ep_entries(), 2);
        let q = engine.into_primitives();
        assert_eq!(q.entry_count(), 2);
        let b1: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        let b2: Vec<u32> = q.bunch(1).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(b1, vec![0, 1]);
        assert_eq!(b2, vec![2, 3]);
        assert_eq!(q.bunch(0).unwrap().seq, 1);
        assert_eq!(q.bunch(1).unwrap().seq, 2);
    }

    #[test]
    fn context_free_collapses_bunches() {
        let p = parse_program(MULTI_ENTRY).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let poc = b"ab1!";
        let mut engine = TaintEngine::new(
            TaintConfig::new(ep, vec![ep]).context_free(),
            PocFile::from(&poc[..]),
        );
        let out = Vm::new(&p, poc).run_hooked(&mut engine);
        assert!(out.is_crash());
        let q = engine.into_primitives();
        assert_eq!(q.entry_count(), 1);
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ep_arguments_are_captured() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    call shared(b, 7)
    halt 0
}
func shared(x, y) {
entry:
    trap 1
}
"#;
        let (engine, out) = run_taint(src, b"\x2A", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        assert_eq!(q.args(0), Some(&[0x2A, 7][..]));
    }

    #[test]
    fn getc_inside_shared_is_recorded() {
        let src = r#"
func main() {
entry:
    fd = open
    h = getc fd
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    c = eq v, 0x42
    br c, boom, fine
boom:
    trap 4
fine:
    ret
}
"#;
        let (engine, out) = run_taint(src, b"AB", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![1], "only the byte consumed inside ℓ");
    }

    #[test]
    fn mmap_bytes_used_inside_shared_are_recorded() {
        let src = r#"
func main() {
entry:
    fd = open
    base = mmap fd
    call shared(base)
    halt 0
}
func shared(p) {
entry:
    v = load.2 p + 2
    c = eq v, 0x3231
    br c, boom, fine
boom:
    trap 5
fine:
    ret
}
"#;
        let (engine, out) = run_taint(src, b"ab12", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![2, 3]);
    }

    #[test]
    fn word_granularity_over_taints() {
        let (e_byte, _) = run_taint(DIRECT_USE, b"aaaXbbbb", "shared");
        let q_byte = e_byte.into_primitives();

        let p = parse_program(DIRECT_USE).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let poc = b"aaaXbbbb";
        let mut e_word = TaintEngine::new(
            TaintConfig::new(ep, vec![ep]).word_level(),
            PocFile::from(&poc[..]),
        );
        Vm::new(&p, poc).run_hooked(&mut e_word);
        let q_word = e_word.into_primitives();
        assert!(
            q_word.total_bytes() > q_byte.total_bytes(),
            "word-level must over-taint: {} vs {}",
            q_word.total_bytes(),
            q_byte.total_bytes()
        );
    }

    #[test]
    fn untainted_store_clears_taint() {
        // A tainted buffer byte is overwritten by a constant before ℓ reads
        // it — the read inside ℓ must not contribute primitives.
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 4
    n = read fd, buf, 4
    store.1 buf + 0, 0
    call shared(buf)
    halt 0
}
func shared(p) {
entry:
    v = load.1 p
    trap 6
}
"#;
        let (engine, out) = run_taint(src, b"abcd", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        assert_eq!(q.total_bytes(), 0);
    }

    #[test]
    fn return_value_taint_flows_to_caller() {
        let src = r#"
func main() {
entry:
    fd = open
    b = call fetch(fd)
    buf = alloc 2
    store.1 buf, b
    call shared(buf)
    halt 0
}
func fetch(fd) {
entry:
    v = getc fd
    ret v
}
func shared(p) {
entry:
    w = load.1 p
    trap 7
}
"#;
        let (engine, out) = run_taint(src, b"Z", "shared");
        assert!(out.is_crash());
        let q = engine.into_primitives();
        let offs: Vec<u32> = q.bunch(0).unwrap().iter().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0]);
    }
}
