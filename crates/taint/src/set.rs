//! Small sorted sets of file offsets.

use std::rc::Rc;

/// An immutable, shareable set of PoC file offsets.
///
/// Taint sets are copied along every data-flow edge, so they are reference
/// counted and copy-on-write: propagating a set is an `Rc` clone, and the
/// common single-source case allocates once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaintSet {
    offs: Option<Rc<Vec<u32>>>,
}

impl TaintSet {
    /// The empty (untainted) set.
    pub fn empty() -> TaintSet {
        TaintSet::default()
    }

    /// A single-offset set.
    pub fn single(off: u32) -> TaintSet {
        TaintSet {
            offs: Some(Rc::new(vec![off])),
        }
    }

    /// Builds from a sorted, deduplicated vector.
    fn from_sorted(v: Vec<u32>) -> TaintSet {
        if v.is_empty() {
            TaintSet::empty()
        } else {
            TaintSet {
                offs: Some(Rc::new(v)),
            }
        }
    }

    /// Whether the set is empty (no taint).
    pub fn is_empty(&self) -> bool {
        self.offs.is_none()
    }

    /// Number of offsets.
    pub fn len(&self) -> usize {
        self.offs.as_ref().map_or(0, |v| v.len())
    }

    /// The offsets in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.offs.iter().flat_map(|v| v.iter().copied())
    }

    /// Set union. Cheap when either side is empty or both point to the
    /// same underlying allocation.
    pub fn union(&self, other: &TaintSet) -> TaintSet {
        match (&self.offs, &other.offs) {
            (None, None) => TaintSet::empty(),
            (Some(_), None) => self.clone(),
            (None, Some(_)) => other.clone(),
            (Some(a), Some(b)) => {
                if Rc::ptr_eq(a, b) {
                    return self.clone();
                }
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                TaintSet::from_sorted(out)
            }
        }
    }

    /// Whether `off` is in the set.
    pub fn contains(&self, off: u32) -> bool {
        self.offs
            .as_ref()
            .is_some_and(|v| v.binary_search(&off).is_ok())
    }
}

impl FromIterator<u32> for TaintSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> TaintSet {
        let mut v: Vec<u32> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        TaintSet::from_sorted(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_properties() {
        let e = TaintSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(0));
    }

    #[test]
    fn union_merges_sorted() {
        let a = TaintSet::from_iter([5, 1, 3]);
        let b = TaintSet::from_iter([2, 3, 9]);
        let u = a.union(&b);
        let offs: Vec<u32> = u.iter().collect();
        assert_eq!(offs, vec![1, 2, 3, 5, 9]);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = TaintSet::from_iter([4, 7]);
        assert_eq!(a.union(&TaintSet::empty()), a);
        assert_eq!(TaintSet::empty().union(&a), a);
    }

    #[test]
    fn union_same_rc_is_cheap_identity() {
        let a = TaintSet::single(3);
        let b = a.clone();
        assert_eq!(a.union(&b), a);
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = TaintSet::from_iter(0..100);
        assert!(a.contains(42));
        assert!(!a.contains(100));
    }
}
