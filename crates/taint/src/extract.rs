//! Top-level crash-primitive extraction (phase P1 driver).

use std::fmt;

use octo_ir::Program;
use octo_poc::{CrashPrimitives, PocFile};
use octo_vm::{CrashReport, Limits, RunOutcome, Vm};

use crate::engine::{TaintConfig, TaintEngine, TaintStats};

/// Why extraction could not produce crash primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintError {
    /// `S` ran to completion on `poc` — the PoC does not trigger the
    /// vulnerability, so there is nothing to extract.
    NoCrash {
        /// Exit code of the clean run.
        exit_code: u64,
    },
    /// `S` crashed, but execution never entered `ep` — the provided `ep`
    /// does not match the crash (wrong shared-function set).
    EpNeverEntered,
}

impl fmt::Display for TaintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaintError::NoCrash { exit_code } => {
                write!(f, "poc did not crash S (exit code {exit_code})")
            }
            TaintError::EpNeverEntered => f.write_str("S crashed but execution never entered ep"),
        }
    }
}

impl std::error::Error for TaintError {}

/// The result of a successful P1 run.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The crash primitives `q`: one bunch per `ep` entry.
    pub primitives: CrashPrimitives,
    /// The crash that terminated the run (class + backtrace).
    pub crash: CrashReport,
    /// How many times execution entered `ep`.
    pub ep_entries: u32,
    /// Instructions executed (virtual-clock ticks).
    pub insts: u64,
    /// Engine counters (bytes uploaded, tainted-address peak, records).
    pub stats: TaintStats,
}

/// Runs `S` on `poc` under the taint engine and extracts crash primitives.
///
/// This is the paper's `q = P1(S, ep, poc)`.
///
/// # Errors
/// Fails when the PoC does not crash `S`, or crashes it without entering
/// `ep` (see [`TaintError`]).
pub fn extract_crash_primitives(
    program: &Program,
    poc: &PocFile,
    config: &TaintConfig,
) -> Result<Extraction, TaintError> {
    extract_with_limits(program, poc, config, Limits::default())
}

/// [`extract_crash_primitives`] with explicit execution limits.
///
/// # Errors
/// Same conditions as [`extract_crash_primitives`]. Note that a watchdog
/// expiry *is* a crash (the CWE-835 infinite-loop class), not an error.
pub fn extract_with_limits(
    program: &Program,
    poc: &PocFile,
    config: &TaintConfig,
    limits: Limits,
) -> Result<Extraction, TaintError> {
    let mut engine = TaintEngine::new(config.clone(), poc.clone());
    let mut vm = Vm::new(program, poc.bytes()).with_limits(limits);
    let outcome = vm.run_hooked(&mut engine);
    let insts = vm.insts_executed();
    match outcome {
        RunOutcome::Exit(exit_code) => Err(TaintError::NoCrash { exit_code }),
        RunOutcome::Crash(crash) => {
            let ep_entries = engine.ep_entries();
            if ep_entries == 0 {
                return Err(TaintError::EpNeverEntered);
            }
            let stats = engine.stats();
            let primitives: CrashPrimitives = engine.into_primitives();
            debug_assert!(primitives.consistent_with(poc));
            Ok(Extraction {
                primitives,
                crash,
                ep_entries,
                insts,
                stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    const PROG: &str = r#"
func main() {
entry:
    fd = open
    buf = alloc 4
    n = read fd, buf, 4
    ok = ugt n, 0
    br ok, use, done
use:
    call shared(buf)
    jmp done
done:
    halt 0
}
func shared(p) {
entry:
    v = load.1 p
    c = eq v, 0x7F
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn config(p: &octo_ir::Program) -> TaintConfig {
        let ep = p.func_by_name("shared").unwrap();
        TaintConfig::new(ep, vec![ep])
    }

    #[test]
    fn crashing_poc_extracts() {
        let p = parse_program(PROG).unwrap();
        let poc = PocFile::from(&b"\x7Fabc"[..]);
        let ex = extract_crash_primitives(&p, &poc, &config(&p)).unwrap();
        assert_eq!(ex.ep_entries, 1);
        assert_eq!(ex.crash.kind.class(), "TRAP");
        assert_eq!(ex.primitives.total_bytes(), 1);
        assert!(ex.insts > 0);
        assert_eq!(ex.stats.bytes_uploaded, 4, "read fd, buf, 4");
        assert!(ex.stats.peak_tainted_addrs >= 4);
        assert!(ex.stats.taint_records >= 1, "the load inside shared");
    }

    #[test]
    fn benign_input_is_no_crash() {
        let p = parse_program(PROG).unwrap();
        let poc = PocFile::from(&b"zzzz"[..]);
        let err = extract_crash_primitives(&p, &poc, &config(&p)).unwrap_err();
        assert_eq!(err, TaintError::NoCrash { exit_code: 0 });
    }

    #[test]
    fn crash_outside_ep_is_reported() {
        let src = r#"
func main() {
entry:
    v = load.1 0
    halt v
}
func shared() {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let cfg = TaintConfig::new(ep, vec![ep]);
        let err = extract_crash_primitives(&p, &PocFile::default(), &cfg).unwrap_err();
        assert_eq!(err, TaintError::EpNeverEntered);
    }
}
