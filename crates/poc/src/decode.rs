//! Decoders for the mini formats — the inverse of [`crate::formats`].
//!
//! The pipeline never needs these (the subject programs parse their own
//! input), but tests and tooling do: a generated `poc'` can be decoded to
//! check *structurally* that the reform produced a well-formed container
//! with the crash primitive in the right record, and the
//! builder↔decoder round-trip is property-tested.

use std::fmt;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong or missing magic bytes.
    BadMagic,
    /// The file ends inside a declared structure.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => f.write_str("bad magic"),
            DecodeError::Truncated { context } => write!(f, "truncated while reading {context}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError::Truncated { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        let s = self.take(2, context)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
}

/// A decoded record-container file (mini-JPEG, mini-PDF, mini-AVC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Version byte (mini-JPEG / mini-PDF only; 0 for mini-AVC).
    pub version: u8,
    /// `(kind, payload)` records in file order.
    pub records: Vec<(u8, Vec<u8>)>,
}

/// Decodes a mini-JPEG file.
///
/// # Errors
/// Fails on wrong magic or truncation.
pub fn decode_mini_jpeg(data: &[u8]) -> Result<Container, DecodeError> {
    decode_counted(data, b"MJPG")
}

/// Decodes a mini-PDF file.
///
/// # Errors
/// Fails on wrong magic or truncation.
pub fn decode_mini_pdf(data: &[u8]) -> Result<Container, DecodeError> {
    decode_counted(data, b"%PDF")
}

fn decode_counted(data: &[u8], magic: &[u8; 4]) -> Result<Container, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4, "magic")? != magic {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u8("version")?;
    let count = r.u8("record count")?;
    let mut records = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let kind = r.u8("record kind")?;
        let len = r.u16("record length")?;
        let payload = r.take(usize::from(len), "record payload")?.to_vec();
        records.push((kind, payload));
    }
    Ok(Container { version, records })
}

/// Decodes a mini-AVC stream (terminated by a kind-0 frame).
///
/// # Errors
/// Fails on wrong magic or truncation (including a missing terminator).
pub fn decode_mini_avc(data: &[u8]) -> Result<Container, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4, "magic")? != b"MAVC" {
        return Err(DecodeError::BadMagic);
    }
    let mut records = Vec::new();
    loop {
        let kind = r.u8("frame kind")?;
        if kind == 0 {
            break;
        }
        let len = r.u16("frame size")?;
        let payload = r.take(usize::from(len), "frame payload")?.to_vec();
        records.push((kind, payload));
    }
    Ok(Container {
        version: 0,
        records,
    })
}

/// A decoded mini-GIF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gif {
    /// The three version bytes after `GIF`.
    pub version: [u8; 3],
    /// Declared width.
    pub width: u16,
    /// Declared height.
    pub height: u16,
    /// `(declared_size, data)` per image block. `data.len()` can differ
    /// from `declared_size` only for the final (possibly malformed) block.
    pub blocks: Vec<(u8, Vec<u8>)>,
}

/// Decodes a mini-GIF file. Tolerates a malformed final block whose
/// declared size exceeds the remaining bytes (the CVE-2011-2896 PoC
/// shape) — the available bytes are returned.
///
/// # Errors
/// Fails on wrong magic or header truncation.
pub fn decode_mini_gif(data: &[u8]) -> Result<Gif, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(3, "magic")? != b"GIF" {
        return Err(DecodeError::BadMagic);
    }
    let v = r.take(3, "version")?;
    let version = [v[0], v[1], v[2]];
    let width = r.u16("width")?;
    let height = r.u16("height")?;
    let mut blocks = Vec::new();
    loop {
        let sep = r.u8("block separator")?;
        match sep {
            s if s == crate::formats::mini_gif::TRAILER => break,
            s if s == crate::formats::mini_gif::IMAGE_SEPARATOR => {
                let declared = r.u8("block size")?;
                let remaining = r.data.len() - r.pos;
                if usize::from(declared) > remaining {
                    // Malformed final block (the CVE shape): the declared
                    // size exceeds the file; take what exists and stop —
                    // the trailer, if any, is indistinguishable from data.
                    let data = r.take(remaining, "block data")?.to_vec();
                    blocks.push((declared, data));
                    break;
                }
                let data = r.take(usize::from(declared), "block data")?.to_vec();
                blocks.push((declared, data));
            }
            _ => return Err(DecodeError::BadMagic),
        }
    }
    Ok(Gif {
        version,
        width,
        height,
        blocks,
    })
}

/// A decoded mini-TIFF directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiff {
    /// `(tag, value)` directory entries.
    pub entries: Vec<(u16, u32)>,
}

/// Decodes a mini-TIFF file.
///
/// # Errors
/// Fails on wrong magic or truncation.
pub fn decode_mini_tiff(data: &[u8]) -> Result<Tiff, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4, "magic")? != b"II*\0" {
        return Err(DecodeError::BadMagic);
    }
    let count = r.u8("entry count")?;
    let mut entries = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let tag = r.u16("tag")?;
        let value = r.u32("value")?;
        entries.push((tag, value));
    }
    Ok(Tiff { entries })
}

/// A decoded mini-J2K header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct J2k {
    /// Component count.
    pub ncomp: u8,
    /// Tile width.
    pub tile_w: u16,
    /// Tile height.
    pub tile_h: u16,
    /// Remaining codestream bytes.
    pub data: Vec<u8>,
}

/// Decodes a mini-J2K file.
///
/// # Errors
/// Fails on wrong magic or header truncation.
pub fn decode_mini_j2k(data: &[u8]) -> Result<J2k, DecodeError> {
    let mut r = Reader::new(data);
    if r.take(4, "magic")? != b"MJ2K" {
        return Err(DecodeError::BadMagic);
    }
    let ncomp = r.u8("ncomp")?;
    let tile_w = r.u16("tile width")?;
    let tile_h = r.u16("tile height")?;
    let data = data[r.pos..].to_vec();
    Ok(J2k {
        ncomp,
        tile_w,
        tile_h,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{mini_avc, mini_gif, mini_j2k, mini_jpeg, mini_pdf, mini_tiff};

    #[test]
    fn jpeg_roundtrip() {
        let f = mini_jpeg::Builder::new()
            .version(2)
            .segment(mini_jpeg::SEG_HUFF, &[1, 2, 3])
            .segment(mini_jpeg::SEG_SCAN, b"xyz")
            .build();
        let c = decode_mini_jpeg(&f).unwrap();
        assert_eq!(c.version, 2);
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0], (mini_jpeg::SEG_HUFF, vec![1, 2, 3]));
    }

    #[test]
    fn pdf_roundtrip_with_nesting() {
        let img = mini_j2k::Builder::new().components(0).build();
        let f = mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_IMAGE, &img)
            .build();
        let c = decode_mini_pdf(&f).unwrap();
        assert_eq!(c.records.len(), 1);
        let inner = decode_mini_j2k(&c.records[0].1).unwrap();
        assert_eq!(inner.ncomp, 0);
    }

    #[test]
    fn gif_roundtrip_including_malformed_block() {
        let f = mini_gif::Builder::new()
            .version(*b"99a")
            .block(b"ok")
            .block_oversized(0xFF, &[1, 2, 3])
            .build();
        let g = decode_mini_gif(&f).unwrap();
        assert_eq!(&g.version, b"99a");
        assert_eq!(g.blocks[0], (2, b"ok".to_vec()));
        assert_eq!(g.blocks[1].0, 0xFF);
        assert!(g.blocks[1].1.len() < 0xFF);
    }

    #[test]
    fn tiff_and_avc_roundtrip() {
        let f = mini_tiff::Builder::new()
            .entry(0x100, 7)
            .entry(mini_tiff::VULN_TAG, 0xDEAD_BEEF)
            .build();
        let t = decode_mini_tiff(&f).unwrap();
        assert_eq!(t.entries[1], (0x13d, 0xDEAD_BEEF));

        let f = mini_avc::Builder::new()
            .frame(mini_avc::FRAME_SPS, &[1, 2])
            .frame(mini_avc::FRAME_PIC, &[3])
            .build();
        let c = decode_mini_avc(&f).unwrap();
        assert_eq!(c.records.len(), 2);
    }

    #[test]
    fn errors_are_classified() {
        assert_eq!(decode_mini_jpeg(b"NOPE"), Err(DecodeError::BadMagic));
        assert!(matches!(
            decode_mini_jpeg(b"MJPG"),
            Err(DecodeError::Truncated { .. })
        ));
        assert_eq!(decode_mini_gif(b"JIF87a"), Err(DecodeError::BadMagic));
        assert!(matches!(
            decode_mini_tiff(b"II*\0\x05"),
            Err(DecodeError::Truncated { .. })
        ));
    }
}
