//! # octo-poc — proof-of-concept files, crash primitives, and mini formats.
//!
//! The paper's unit of input is a *malformed file type PoC* (§II-A): a byte
//! file whose contents drive the vulnerable software into its crash. This
//! crate provides:
//!
//! * [`PocFile`] — the byte-file type, with diff/hexdump utilities;
//! * [`Bunch`] and [`CrashPrimitives`] — the output of phase P1: the PoC
//!   bytes consumed inside the shared code area `ℓ`, grouped by which entry
//!   into `ℓ` consumed them (the paper's context-aware grouping);
//! * [`formats`] — builders for the five mini file formats the corpus
//!   programs parse (mini-JPEG, mini-PDF, mini-GIF, mini-TIFF, mini-J2K and
//!   a mini video stream), standing in for the real JPEG/PDF/GIF/TIFF
//!   formats of the paper's dataset.
#![warn(missing_docs)]

pub mod decode;
pub mod formats;
pub mod poc;
pub mod primitives;

pub use decode::DecodeError;
pub use poc::PocFile;
pub use primitives::{Bunch, CrashPrimitives};
