//! Mini file formats — the corpus' stand-ins for JPEG/PDF/GIF/TIFF/JPEG2000.
//!
//! The paper's dataset feeds real malformed image/PDF files to real parsers.
//! Our corpus programs (MicroIR) parse these simplified formats instead;
//! each format keeps the structural features the evaluation depends on:
//! magic headers (which random fuzzing must guess), length-prefixed
//! records (which create file-position-dependent parsing, the reason bunch
//! placement needs the file position indicator), and container nesting
//! (a PDF can embed an image file — the MuPDF/ghostscript Type-II cases
//! re-wrap a J2K payload in a PDF container and vice versa).
//!
//! All multi-byte integers are little-endian.

/// Appends a `u16` little-endian.
pub fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// mini-GIF: `"GIF" ver[3] width:u16 height:u16
/// { 0x2C size:u8 data[size] }* 0x3B`
///
/// Models the gif2png CVE-2011-2896 shape: image blocks introduced by the
/// GIF image separator (`0x2C`), each a size-prefixed run copied into a
/// fixed-size buffer, terminated by the GIF trailer (`0x3B`).
pub mod mini_gif {
    use super::push_u16;

    /// Canonical magic + version ("GIF87a").
    pub const MAGIC: &[u8; 6] = b"GIF87a";
    /// Header length (magic + width + height).
    pub const HEADER_LEN: usize = 10;
    /// Image-separator byte introducing each data block.
    pub const IMAGE_SEPARATOR: u8 = 0x2C;
    /// Trailer byte ending the file.
    pub const TRAILER: u8 = 0x3B;

    /// Builds a mini-GIF file.
    #[derive(Debug, Clone)]
    pub struct Builder {
        version: [u8; 3],
        width: u16,
        height: u16,
        blocks: Vec<(u8, Vec<u8>)>,
    }

    impl Builder {
        /// A well-formed file skeleton (version `87a`).
        pub fn new() -> Builder {
            Builder {
                version: *b"87a",
                width: 4,
                height: 4,
                blocks: Vec::new(),
            }
        }

        /// Overrides the three version bytes (the disclosed CVE-2011-2896
        /// PoC carried an *invalid* version, which original gif2png
        /// ignored — the paper's artificial Idx-9 target rejects it).
        pub fn version(mut self, v: [u8; 3]) -> Builder {
            self.version = v;
            self
        }

        /// Sets the image dimensions.
        pub fn size(mut self, width: u16, height: u16) -> Builder {
            self.width = width;
            self.height = height;
            self
        }

        /// Appends one data block (≤ 255 bytes).
        ///
        /// # Panics
        /// Panics if `data` exceeds 255 bytes.
        pub fn block(mut self, data: &[u8]) -> Builder {
            assert!(data.len() <= 255, "mini-GIF block too large");
            self.blocks.push((data.len() as u8, data.to_vec()));
            self
        }

        /// Appends a *malformed* block whose declared size byte differs
        /// from the data actually present — the CVE-2011-2896 shape, where
        /// the decoder trusts the declared size.
        pub fn block_oversized(mut self, declared: u8, data: &[u8]) -> Builder {
            self.blocks.push((declared, data.to_vec()));
            self
        }

        /// Serialises the file.
        pub fn build(&self) -> Vec<u8> {
            let mut out = Vec::new();
            out.extend_from_slice(b"GIF");
            out.extend_from_slice(&self.version);
            push_u16(&mut out, self.width);
            push_u16(&mut out, self.height);
            for (declared, data) in &self.blocks {
                out.push(IMAGE_SEPARATOR);
                out.push(*declared);
                out.extend_from_slice(data);
            }
            out.push(TRAILER);
            out
        }
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }
}

/// mini-TIFF: `"II*\0" count:u8 { tag:u16 value:u32 }*count`
///
/// Models the LibTIFF CVE-2016-10095 shape: a directory of tagged fields
/// dispatched through `_TIFFVGetField(tag)`; tag `0x13d` is the vulnerable
/// one.
pub mod mini_tiff {
    use super::{push_u16, push_u32};

    /// Magic bytes.
    pub const MAGIC: &[u8; 4] = b"II*\0";
    /// The tag value that triggers the planted vulnerability.
    pub const VULN_TAG: u16 = 0x13d;

    /// Builds a mini-TIFF file from `(tag, value)` directory entries.
    #[derive(Debug, Clone, Default)]
    pub struct Builder {
        entries: Vec<(u16, u32)>,
    }

    impl Builder {
        /// An empty directory.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Appends a directory entry.
        pub fn entry(mut self, tag: u16, value: u32) -> Builder {
            self.entries.push((tag, value));
            self
        }

        /// Serialises the file.
        ///
        /// # Panics
        /// Panics if more than 255 entries were added.
        pub fn build(&self) -> Vec<u8> {
            assert!(self.entries.len() <= 255);
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.push(self.entries.len() as u8);
            for (tag, value) in &self.entries {
                push_u16(&mut out, *tag);
                push_u32(&mut out, *value);
            }
            out
        }
    }
}

/// mini-JPEG: `"MJPG" ver:u8 nseg:u8 { kind:u8 len:u16 payload[len] }*nseg`
///
/// Segment kinds mirror JPEG markers: `0xC4` (huffman table), `0xDA`
/// (scan data), `0xE0` (application data).
pub mod mini_jpeg {
    use super::push_u16;

    /// Magic bytes.
    pub const MAGIC: &[u8; 4] = b"MJPG";
    /// Huffman-table segment kind.
    pub const SEG_HUFF: u8 = 0xC4;
    /// Scan-data segment kind.
    pub const SEG_SCAN: u8 = 0xDA;
    /// Application-data segment kind.
    pub const SEG_APP: u8 = 0xE0;

    /// Builds a mini-JPEG file from typed segments.
    #[derive(Debug, Clone, Default)]
    pub struct Builder {
        version: u8,
        segments: Vec<(u8, Vec<u8>)>,
    }

    impl Builder {
        /// Version-1 skeleton.
        pub fn new() -> Builder {
            Builder {
                version: 1,
                segments: Vec::new(),
            }
        }

        /// Overrides the version byte.
        pub fn version(mut self, v: u8) -> Builder {
            self.version = v;
            self
        }

        /// Appends a segment.
        pub fn segment(mut self, kind: u8, payload: &[u8]) -> Builder {
            self.segments.push((kind, payload.to_vec()));
            self
        }

        /// Serialises the file.
        ///
        /// # Panics
        /// Panics on more than 255 segments or a payload over 65535 bytes.
        pub fn build(&self) -> Vec<u8> {
            assert!(self.segments.len() <= 255);
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.push(self.version);
            out.push(self.segments.len() as u8);
            for (kind, payload) in &self.segments {
                assert!(payload.len() <= u16::MAX as usize);
                out.push(*kind);
                push_u16(&mut out, payload.len() as u16);
                out.extend_from_slice(payload);
            }
            out
        }
    }
}

/// mini-J2K (JPEG2000 codestream): `"MJ2K" ncomp:u8 tilew:u16 tileh:u16 data…`
///
/// Models the OpenJPEG ghostscript-BZ697463 shape: a header whose
/// component count of zero leads the shared decoder into a null
/// dereference.
pub mod mini_j2k {
    use super::push_u16;

    /// Magic bytes.
    pub const MAGIC: &[u8; 4] = b"MJ2K";
    /// Header length (magic + ncomp + tilew + tileh).
    pub const HEADER_LEN: usize = 9;

    /// Builds a mini-J2K file.
    #[derive(Debug, Clone)]
    pub struct Builder {
        ncomp: u8,
        tile: (u16, u16),
        data: Vec<u8>,
    }

    impl Builder {
        /// A well-formed single-component skeleton.
        pub fn new() -> Builder {
            Builder {
                ncomp: 1,
                tile: (8, 8),
                data: Vec::new(),
            }
        }

        /// Sets the component count (0 triggers the planted null deref in
        /// the vulnerable decoders).
        pub fn components(mut self, n: u8) -> Builder {
            self.ncomp = n;
            self
        }

        /// Sets the tile dimensions.
        pub fn tile(mut self, w: u16, h: u16) -> Builder {
            self.tile = (w, h);
            self
        }

        /// Appends raw codestream data.
        pub fn data(mut self, bytes: &[u8]) -> Builder {
            self.data.extend_from_slice(bytes);
            self
        }

        /// Serialises the file.
        pub fn build(&self) -> Vec<u8> {
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.push(self.ncomp);
            push_u16(&mut out, self.tile.0);
            push_u16(&mut out, self.tile.1);
            out.extend_from_slice(&self.data);
            out
        }
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }
}

/// mini-PDF: `"%PDF" ver:u8 nobj:u8 { kind:u8 len:u16 payload[len] }*nobj`
///
/// Object kinds: `'S'` content stream, `'X'` xref table, `'I'` embedded
/// image (its payload is a complete mini-J2K or mini-JPEG file — container
/// nesting used by the Type-II re-wrapping cases).
pub mod mini_pdf {
    use super::push_u16;

    /// Magic bytes.
    pub const MAGIC: &[u8; 4] = b"%PDF";
    /// Content-stream object kind.
    pub const OBJ_STREAM: u8 = b'S';
    /// Cross-reference object kind.
    pub const OBJ_XREF: u8 = b'X';
    /// Embedded-image object kind.
    pub const OBJ_IMAGE: u8 = b'I';

    /// Builds a mini-PDF file from typed objects.
    #[derive(Debug, Clone)]
    pub struct Builder {
        version: u8,
        objects: Vec<(u8, Vec<u8>)>,
    }

    impl Builder {
        /// Version-1 skeleton.
        pub fn new() -> Builder {
            Builder {
                version: 1,
                objects: Vec::new(),
            }
        }

        /// Overrides the version byte.
        pub fn version(mut self, v: u8) -> Builder {
            self.version = v;
            self
        }

        /// Appends an object.
        pub fn object(mut self, kind: u8, payload: &[u8]) -> Builder {
            self.objects.push((kind, payload.to_vec()));
            self
        }

        /// Serialises the file.
        ///
        /// # Panics
        /// Panics on more than 255 objects or a payload over 65535 bytes.
        pub fn build(&self) -> Vec<u8> {
            assert!(self.objects.len() <= 255);
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            out.push(self.version);
            out.push(self.objects.len() as u8);
            for (kind, payload) in &self.objects {
                assert!(payload.len() <= u16::MAX as usize);
                out.push(*kind);
                push_u16(&mut out, payload.len() as u16);
                out.extend_from_slice(payload);
            }
            out
        }
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }
}

/// mini-AVC (video stream): `"MAVC" { kind:u8 size:u16 payload[size] }*`
/// terminated by a kind-0 frame.
///
/// Models the avconv/ffmpeg CVE-2018-11102 shape: a sequence-parameter
/// frame whose declared dimensions exceed the decoder's frame buffer.
pub mod mini_avc {
    use super::push_u16;

    /// Magic bytes.
    pub const MAGIC: &[u8; 4] = b"MAVC";
    /// Sequence-parameter-set frame kind.
    pub const FRAME_SPS: u8 = 1;
    /// Picture-data frame kind.
    pub const FRAME_PIC: u8 = 2;

    /// Builds a mini-AVC stream from typed frames.
    #[derive(Debug, Clone, Default)]
    pub struct Builder {
        frames: Vec<(u8, Vec<u8>)>,
    }

    impl Builder {
        /// An empty stream.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Appends a frame.
        pub fn frame(mut self, kind: u8, payload: &[u8]) -> Builder {
            self.frames.push((kind, payload.to_vec()));
            self
        }

        /// Serialises the stream (with the terminating kind-0 frame).
        ///
        /// # Panics
        /// Panics if a payload exceeds 65535 bytes.
        pub fn build(&self) -> Vec<u8> {
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            for (kind, payload) in &self.frames {
                assert!(payload.len() <= u16::MAX as usize);
                out.push(*kind);
                push_u16(&mut out, payload.len() as u16);
                out.extend_from_slice(payload);
            }
            out.push(0);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gif_layout() {
        let f = mini_gif::Builder::new()
            .size(3, 5)
            .block(b"abc")
            .block(b"")
            .build();
        assert_eq!(&f[..6], mini_gif::MAGIC);
        assert_eq!(u16::from_le_bytes([f[6], f[7]]), 3);
        assert_eq!(u16::from_le_bytes([f[8], f[9]]), 5);
        assert_eq!(f[10], mini_gif::IMAGE_SEPARATOR);
        assert_eq!(f[11], 3); // first block size
        assert_eq!(&f[12..15], b"abc");
        assert_eq!(f[15], mini_gif::IMAGE_SEPARATOR);
        assert_eq!(f[16], 0); // empty block
        assert_eq!(*f.last().unwrap(), mini_gif::TRAILER);
    }

    #[test]
    fn gif_invalid_version() {
        let f = mini_gif::Builder::new().version(*b"99a").build();
        assert_eq!(&f[3..6], b"99a");
        assert_eq!(&f[..3], b"GIF");
    }

    #[test]
    fn tiff_layout() {
        let f = mini_tiff::Builder::new()
            .entry(0x100, 64)
            .entry(mini_tiff::VULN_TAG, 0)
            .build();
        assert_eq!(&f[..4], mini_tiff::MAGIC);
        assert_eq!(f[4], 2);
        assert_eq!(u16::from_le_bytes([f[5], f[6]]), 0x100);
        assert_eq!(u16::from_le_bytes([f[11], f[12]]), 0x13d);
    }

    #[test]
    fn jpeg_layout() {
        let f = mini_jpeg::Builder::new()
            .segment(mini_jpeg::SEG_HUFF, &[4, 1, 2, 3, 4])
            .segment(mini_jpeg::SEG_SCAN, b"xy")
            .build();
        assert_eq!(&f[..4], mini_jpeg::MAGIC);
        assert_eq!(f[4], 1); // version
        assert_eq!(f[5], 2); // nseg
        assert_eq!(f[6], mini_jpeg::SEG_HUFF);
        assert_eq!(u16::from_le_bytes([f[7], f[8]]), 5);
    }

    #[test]
    fn j2k_layout() {
        let f = mini_j2k::Builder::new().components(0).tile(16, 16).build();
        assert_eq!(&f[..4], mini_j2k::MAGIC);
        assert_eq!(f[4], 0);
        assert_eq!(f.len(), mini_j2k::HEADER_LEN);
    }

    #[test]
    fn pdf_embeds_j2k() {
        let img = mini_j2k::Builder::new().components(0).build();
        let f = mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_STREAM, b"BT /F1 ET")
            .object(mini_pdf::OBJ_IMAGE, &img)
            .build();
        assert_eq!(&f[..4], mini_pdf::MAGIC);
        assert_eq!(f[5], 2); // nobj
                             // the embedded image payload appears verbatim
        let pos = f
            .windows(img.len())
            .position(|w| w == img.as_slice())
            .unwrap();
        assert!(pos > 6);
    }

    #[test]
    fn avc_layout_terminates() {
        let f = mini_avc::Builder::new()
            .frame(mini_avc::FRAME_SPS, &[0x40, 0x00, 0x40, 0x00])
            .build();
        assert_eq!(&f[..4], mini_avc::MAGIC);
        assert_eq!(f[4], mini_avc::FRAME_SPS);
        assert_eq!(*f.last().unwrap(), 0);
    }
}
