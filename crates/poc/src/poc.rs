//! The PoC byte-file type.

use std::fmt;

/// A proof-of-concept input file: a sequence of bytes fed to a subject
/// program as its single file input.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PocFile {
    bytes: Vec<u8>,
}

impl PocFile {
    /// Wraps raw bytes.
    pub fn new(bytes: Vec<u8>) -> PocFile {
        PocFile { bytes }
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The byte at `offset` (0 past the end, mirroring the zero-filled
    /// symbolic file convention).
    pub fn byte(&self, offset: u32) -> u8 {
        self.bytes.get(offset as usize).copied().unwrap_or(0)
    }

    /// Consumes the wrapper, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Offsets (with values) where `self` and `other` differ; the longer
    /// file's tail is compared against implicit zeros.
    pub fn diff(&self, other: &PocFile) -> Vec<(u32, u8, u8)> {
        let n = self.len().max(other.len()) as u32;
        (0..n)
            .filter_map(|o| {
                let (a, b) = (self.byte(o), other.byte(o));
                (a != b).then_some((o, a, b))
            })
            .collect()
    }

    /// A compact hexdump (16 bytes per row) for logs and reports.
    pub fn hexdump(&self) -> String {
        let mut out = String::new();
        for (row, chunk) in self.bytes.chunks(16).enumerate() {
            out.push_str(&format!("{:08x}  ", row * 16));
            for (i, b) in chunk.iter().enumerate() {
                out.push_str(&format!("{b:02x}"));
                out.push(if i == 7 { ' ' } else { '\0' });
                out.retain(|c| c != '\0');
                out.push(' ');
            }
            for _ in chunk.len()..16 {
                out.push_str("   ");
            }
            out.push(' ');
            for b in chunk {
                out.push(if b.is_ascii_graphic() || *b == b' ' {
                    *b as char
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl From<Vec<u8>> for PocFile {
    fn from(bytes: Vec<u8>) -> PocFile {
        PocFile::new(bytes)
    }
}

impl From<&[u8]> for PocFile {
    fn from(bytes: &[u8]) -> PocFile {
        PocFile::new(bytes.to_vec())
    }
}

impl AsRef<[u8]> for PocFile {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Display for PocFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PocFile({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_access_zero_fills() {
        let p = PocFile::from(&b"ab"[..]);
        assert_eq!(p.byte(0), b'a');
        assert_eq!(p.byte(5), 0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn diff_reports_positions() {
        let a = PocFile::from(&b"GIF87a"[..]);
        let b = PocFile::from(&b"GIF99a"[..]);
        let d = a.diff(&b);
        assert_eq!(d, vec![(3, b'8', b'9'), (4, b'7', b'9')]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn diff_covers_length_mismatch() {
        let a = PocFile::from(&b"ab"[..]);
        let b = PocFile::from(&b"abc"[..]);
        assert_eq!(a.diff(&b), vec![(2, 0, b'c')]);
    }

    #[test]
    fn hexdump_shows_ascii_column() {
        let p = PocFile::from(&b"GIF87a\x00\xff"[..]);
        let dump = p.hexdump();
        assert!(dump.contains("47 49 46"), "{dump}");
        assert!(dump.contains("GIF87a.."), "{dump}");
    }
}
