//! Crash primitives: the reusable part of a PoC.
//!
//! Phase P1 of the paper extracts, for each entry of the execution into the
//! shared code area `ℓ`, the set of PoC file bytes consumed during that
//! entry. Each such group is a *bunch*, "stored along with the number of
//! encounters with `ep` (sequential value)". The ordered collection of
//! bunches is the crash primitive set `q`.

use std::collections::BTreeMap;

use crate::poc::PocFile;

/// The PoC bytes consumed during one entry into `ℓ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bunch {
    /// 1-based sequential number of the `ep` entry this bunch belongs to.
    pub seq: u32,
    /// `original offset → byte value` pairs, relative to the original PoC.
    bytes: BTreeMap<u32, u8>,
}

impl Bunch {
    /// Creates an empty bunch for entry `seq`.
    pub fn new(seq: u32) -> Bunch {
        Bunch {
            seq,
            bytes: BTreeMap::new(),
        }
    }

    /// Records that the original PoC byte at `offset` (value `value`) was
    /// consumed during this entry.
    pub fn add(&mut self, offset: u32, value: u8) {
        self.bytes.insert(offset, value);
    }

    /// `(offset, value)` pairs in ascending offset order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.bytes.iter().map(|(&o, &v)| (o, v))
    }

    /// Number of bytes in the bunch.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the bunch is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The bunch as a dense byte string in offset order.
    ///
    /// When the consumed bytes are contiguous in the original PoC (the
    /// common case: `ℓ` reads a record sequentially) this is exactly the
    /// record's raw bytes, suitable for splicing at a new offset.
    pub fn dense_bytes(&self) -> Vec<u8> {
        self.bytes.values().copied().collect()
    }

    /// The lowest original offset, if non-empty.
    pub fn first_offset(&self) -> Option<u32> {
        self.bytes.keys().next().copied()
    }

    /// Whether the consumed offsets form one contiguous range.
    pub fn is_contiguous(&self) -> bool {
        let offs: Vec<u32> = self.bytes.keys().copied().collect();
        offs.windows(2).all(|w| w[1] == w[0] + 1)
    }
}

/// The full crash-primitive set `q` extracted from one PoC (paper P1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrashPrimitives {
    bunches: Vec<Bunch>,
    /// Arguments `ep` was called with at each entry (paper P3 re-executes
    /// `ep` in `T` "with the same parameters as those used in S").
    ep_args: Vec<Vec<u64>>,
}

impl CrashPrimitives {
    /// Creates an empty primitive set.
    pub fn new() -> CrashPrimitives {
        CrashPrimitives::default()
    }

    /// Appends the bunch for the next `ep` entry together with the
    /// arguments `ep` received at that entry.
    pub fn push(&mut self, bunch: Bunch, args: Vec<u64>) {
        self.bunches.push(bunch);
        self.ep_args.push(args);
    }

    /// The bunches in entry order.
    pub fn bunches(&self) -> &[Bunch] {
        &self.bunches
    }

    /// The bunch for 0-based entry index `i`.
    pub fn bunch(&self, i: usize) -> Option<&Bunch> {
        self.bunches.get(i)
    }

    /// The arguments of the `i`-th `ep` entry.
    pub fn args(&self, i: usize) -> Option<&[u64]> {
        self.ep_args.get(i).map(Vec::as_slice)
    }

    /// Number of `ep` entries observed.
    pub fn entry_count(&self) -> usize {
        self.bunches.len()
    }

    /// Whether no entries were recorded (the vulnerability never entered
    /// `ℓ` — cannot happen for a genuine `S`/`poc` pair).
    pub fn is_empty(&self) -> bool {
        self.bunches.is_empty()
    }

    /// Total bytes across all bunches.
    pub fn total_bytes(&self) -> usize {
        self.bunches.iter().map(Bunch::len).sum()
    }

    /// All distinct original-PoC offsets covered by any bunch.
    pub fn all_offsets(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .bunches
            .iter()
            .flat_map(|b| b.iter().map(|(o, _)| o))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Flattens every bunch into a single context-free bunch — the
    /// *context-unaware* extraction the paper ablates in Table III. All
    /// primitive bytes collapse into one group "located in poc' at once".
    pub fn flatten(&self) -> CrashPrimitives {
        let mut flat = Bunch::new(1);
        for b in &self.bunches {
            for (o, v) in b.iter() {
                flat.add(o, v);
            }
        }
        let args = self.ep_args.first().cloned().unwrap_or_default();
        let mut out = CrashPrimitives::new();
        out.push(flat, args);
        out
    }

    /// Reconstructs the primitive bytes as they appear in `poc` (sanity
    /// utility: every recorded value must match the PoC byte).
    pub fn consistent_with(&self, poc: &PocFile) -> bool {
        self.bunches
            .iter()
            .flat_map(Bunch::iter)
            .all(|(o, v)| poc.byte(o) == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrashPrimitives {
        let mut q = CrashPrimitives::new();
        let mut b1 = Bunch::new(1);
        b1.add(4, 0x41);
        b1.add(5, 0x41);
        let mut b2 = Bunch::new(2);
        b2.add(9, 0x42);
        b2.add(10, 0x42);
        b2.add(11, 0x42);
        q.push(b1, vec![7]);
        q.push(b2, vec![7]);
        q
    }

    #[test]
    fn bunch_ordering_and_density() {
        let mut b = Bunch::new(1);
        b.add(9, 3);
        b.add(4, 1);
        b.add(5, 2);
        assert_eq!(b.dense_bytes(), vec![1, 2, 3]);
        assert_eq!(b.first_offset(), Some(4));
        assert!(!b.is_contiguous());
        let pairs: Vec<(u32, u8)> = b.iter().collect();
        assert_eq!(pairs, vec![(4, 1), (5, 2), (9, 3)]);
    }

    #[test]
    fn contiguous_detection() {
        let mut b = Bunch::new(1);
        b.add(4, 1);
        b.add(5, 2);
        b.add(6, 3);
        assert!(b.is_contiguous());
    }

    #[test]
    fn primitives_accumulate_entries() {
        let q = sample();
        assert_eq!(q.entry_count(), 2);
        assert_eq!(q.total_bytes(), 5);
        assert_eq!(q.all_offsets(), vec![4, 5, 9, 10, 11]);
        assert_eq!(q.args(0), Some(&[7u64][..]));
        assert_eq!(q.bunch(1).unwrap().seq, 2);
    }

    #[test]
    fn flatten_merges_bunches() {
        let q = sample();
        let flat = q.flatten();
        assert_eq!(flat.entry_count(), 1);
        assert_eq!(flat.total_bytes(), 5);
        assert_eq!(flat.bunch(0).unwrap().first_offset(), Some(4));
    }

    #[test]
    fn consistency_check_against_poc() {
        let q = sample();
        let mut bytes = vec![0u8; 12];
        for (o, v) in q.bunches().iter().flat_map(Bunch::iter) {
            bytes[o as usize] = v;
        }
        assert!(q.consistent_with(&PocFile::new(bytes.clone())));
        bytes[4] = 0xFF;
        assert!(!q.consistent_with(&PocFile::new(bytes)));
    }
}
