//! Property tests: format builders and decoders are inverse.

use octo_poc::decode::{
    decode_mini_avc, decode_mini_gif, decode_mini_j2k, decode_mini_jpeg, decode_mini_pdf,
    decode_mini_tiff,
};
use octo_poc::formats::{mini_avc, mini_gif, mini_j2k, mini_jpeg, mini_pdf, mini_tiff};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jpeg_builder_decoder_roundtrip(
        version in any::<u8>(),
        segments in prop::collection::vec((any::<u8>(), arb_payload()), 0..6),
    ) {
        let mut b = mini_jpeg::Builder::new().version(version);
        for (kind, payload) in &segments {
            b = b.segment(*kind, payload);
        }
        let file = b.build();
        let c = decode_mini_jpeg(&file).expect("roundtrip decodes");
        prop_assert_eq!(c.version, version);
        prop_assert_eq!(c.records, segments);
    }

    #[test]
    fn pdf_builder_decoder_roundtrip(
        version in any::<u8>(),
        objects in prop::collection::vec((any::<u8>(), arb_payload()), 0..6),
    ) {
        let mut b = mini_pdf::Builder::new().version(version);
        for (kind, payload) in &objects {
            b = b.object(*kind, payload);
        }
        let file = b.build();
        let c = decode_mini_pdf(&file).expect("roundtrip decodes");
        prop_assert_eq!(c.records, objects);
    }

    #[test]
    fn avc_builder_decoder_roundtrip(
        frames in prop::collection::vec((1u8..=255, arb_payload()), 0..6),
    ) {
        let mut b = mini_avc::Builder::new();
        for (kind, payload) in &frames {
            b = b.frame(*kind, payload);
        }
        let file = b.build();
        let c = decode_mini_avc(&file).expect("roundtrip decodes");
        prop_assert_eq!(c.records, frames);
    }

    #[test]
    fn gif_builder_decoder_roundtrip(
        version in prop::array::uniform3(any::<u8>()),
        dims in (any::<u16>(), any::<u16>()),
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..5),
    ) {
        let mut b = mini_gif::Builder::new().version(version).size(dims.0, dims.1);
        for data in &blocks {
            b = b.block(data);
        }
        let file = b.build();
        let g = decode_mini_gif(&file).expect("roundtrip decodes");
        prop_assert_eq!(g.version, version);
        prop_assert_eq!((g.width, g.height), dims);
        let expected: Vec<(u8, Vec<u8>)> =
            blocks.iter().map(|d| (d.len() as u8, d.clone())).collect();
        prop_assert_eq!(g.blocks, expected);
    }

    #[test]
    fn tiff_builder_decoder_roundtrip(
        entries in prop::collection::vec((any::<u16>(), any::<u32>()), 0..8),
    ) {
        let mut b = mini_tiff::Builder::new();
        for (tag, value) in &entries {
            b = b.entry(*tag, *value);
        }
        let file = b.build();
        let t = decode_mini_tiff(&file).expect("roundtrip decodes");
        prop_assert_eq!(t.entries, entries);
    }

    #[test]
    fn j2k_builder_decoder_roundtrip(
        ncomp in any::<u8>(),
        tile in (any::<u16>(), any::<u16>()),
        data in arb_payload(),
    ) {
        let file = mini_j2k::Builder::new()
            .components(ncomp)
            .tile(tile.0, tile.1)
            .data(&data)
            .build();
        let j = decode_mini_j2k(&file).expect("roundtrip decodes");
        prop_assert_eq!(j.ncomp, ncomp);
        prop_assert_eq!((j.tile_w, j.tile_h), tile);
        prop_assert_eq!(j.data, data);
    }

    /// Random byte strings never panic any decoder (they error instead).
    #[test]
    fn decoders_are_total(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_mini_jpeg(&data);
        let _ = decode_mini_pdf(&data);
        let _ = decode_mini_avc(&data);
        let _ = decode_mini_gif(&data);
        let _ = decode_mini_tiff(&data);
        let _ = decode_mini_j2k(&data);
    }
}
