//! Windowed rate tracking over a [`MetricsRegistry`].
//!
//! Process-lifetime totals answer "how much", never "how fast right
//! now". [`RateRecorder`] closes that gap without touching the record
//! path: a sampler thread calls [`RateRecorder::record`] on an
//! interval, each call takes one [`MetricsRegistry::snapshot`] and
//! pushes it into a fixed-capacity ring. Consecutive snapshots define
//! *windows*; counter deltas over the last N windows yield throughput
//! (jobs/s, solves/s) and ratios (cache hit-rate) for `/metrics/rates`
//! and `octopocs top` — all derived data, recomputed on read, nothing
//! accumulated that could drift from the registry.
//!
//! The ring never blocks recorders of the underlying metrics (sampling
//! reads relaxed atomics under the registry's registration lock) and
//! is bounded: once `capacity` samples exist, the oldest is dropped.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::registry::{MetricsRegistry, MetricsSnapshot};

/// One ring entry: a metrics snapshot stamped with the sampler's
/// monotonic elapsed-time clock.
#[derive(Debug, Clone)]
pub struct RateSample {
    /// Microseconds since the sampler's epoch (process start).
    pub elapsed_micros: u64,
    /// The registry capture at that instant.
    pub snapshot: MetricsSnapshot,
}

/// The delta between two consecutive samples.
#[derive(Debug, Clone)]
pub struct RateWindow {
    /// Window start, microseconds since the sampler's epoch.
    pub start_micros: u64,
    /// Window end, microseconds since the sampler's epoch.
    pub end_micros: u64,
    /// Counter increments inside the window (zero-delta counters are
    /// omitted; a missing key means "no change").
    pub counter_deltas: Vec<(String, u64)>,
    /// Gauge values at the window's end (gauges are levels, not flows —
    /// the end value is the meaningful one).
    pub gauges: Vec<(String, u64)>,
}

/// A fixed-capacity ring of registry snapshots (see the module docs).
#[derive(Debug)]
pub struct RateRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RateSample>>,
}

impl RateRecorder {
    /// A recorder keeping at most `capacity` snapshots (clamped to ≥ 2,
    /// the minimum that defines one window).
    pub fn new(capacity: usize) -> RateRecorder {
        RateRecorder {
            capacity: capacity.max(2),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshots `registry` at `elapsed_micros` on the caller's
    /// monotonic clock and pushes it into the ring, evicting the oldest
    /// sample when full. A sample not strictly after the previous one
    /// is dropped (a stalled clock must not create zero-width windows).
    pub fn record(&self, registry: &MetricsRegistry, elapsed_micros: u64) {
        let snapshot = registry.snapshot();
        let mut ring = self.ring.lock().unwrap();
        if let Some(last) = ring.back() {
            if elapsed_micros <= last.elapsed_micros {
                return;
            }
        }
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(RateSample {
            elapsed_micros,
            snapshot,
        });
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All currently-defined windows, oldest first (`len() - 1` of
    /// them; empty until two samples exist).
    pub fn windows(&self) -> Vec<RateWindow> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .zip(ring.iter().skip(1))
            .map(|(a, b)| RateWindow {
                start_micros: a.elapsed_micros,
                end_micros: b.elapsed_micros,
                counter_deltas: b
                    .snapshot
                    .counters
                    .iter()
                    .filter_map(|(name, &after)| {
                        let before = a.snapshot.counters.get(name).copied().unwrap_or(0);
                        let delta = after.saturating_sub(before);
                        (delta > 0).then(|| (name.clone(), delta))
                    })
                    .collect(),
                gauges: b
                    .snapshot
                    .gauges
                    .iter()
                    .map(|(name, &v)| (name.clone(), v))
                    .collect(),
            })
            .collect()
    }

    /// The increase of counter `name` per second over (at most) the
    /// last `windows` windows. `None` until two samples exist or when
    /// the counter is absent from the covered samples.
    pub fn rate_per_sec(&self, name: &str, windows: usize) -> Option<f64> {
        let (delta, micros) = self.span_delta(name, windows)?;
        Some(delta as f64 / (micros as f64 / 1e6))
    }

    /// `Δnum / Σ Δdenom` over (at most) the last `windows` windows —
    /// e.g. cache hit-rate as `hits / (hits + misses)`. `None` until
    /// two samples exist or while the denominator total is zero.
    pub fn ratio(&self, num: &str, denom: &[&str], windows: usize) -> Option<f64> {
        let (num_delta, _) = self.span_delta(num, windows)?;
        let mut denom_delta = 0u64;
        for name in denom {
            denom_delta += self.span_delta(name, windows)?.0;
        }
        (denom_delta > 0).then(|| num_delta as f64 / denom_delta as f64)
    }

    /// Counter delta and elapsed micros between the sample `windows`
    /// back (or the oldest held) and the newest sample. Counters are
    /// monotonic, so per-window deltas telescope to this difference.
    fn span_delta(&self, name: &str, windows: usize) -> Option<(u64, u64)> {
        let ring = self.ring.lock().unwrap();
        if ring.len() < 2 || windows == 0 {
            return None;
        }
        let first = &ring[ring.len() - 1 - windows.min(ring.len() - 1)];
        let last = ring.back().expect("len >= 2");
        let before = first.snapshot.counters.get(name)?;
        let after = last.snapshot.counters.get(name)?;
        Some((
            after.saturating_sub(*before),
            last.elapsed_micros - first.elapsed_micros,
        ))
    }

    /// Renders the ring as one JSON document:
    /// `{"capacity":…,"samples":…,"windows":[{"start_us":…,"end_us":…,
    /// "counters":{…},"gauges":{…}},…]}` — counters as deltas inside
    /// each window, gauges as end-of-window levels, windows oldest
    /// first. Deterministic: names sort, integers only.
    pub fn render_json(&self) -> String {
        let windows = self.windows();
        let mut out = format!(
            "{{\"capacity\":{},\"samples\":{},\"windows\":[",
            self.capacity,
            self.len()
        );
        for (i, w) in windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"start_us\":{},\"end_us\":{},\"counters\":{{",
                w.start_micros, w.end_micros
            ));
            for (j, (name, delta)) in w.counter_deltas.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{delta}"));
            }
            out.push_str("},\"gauges\":{");
            for (j, (name, value)) in w.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{value}"));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_samples_define_one_window_of_deltas() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total");
        let g = reg.gauge("depth");
        let rec = RateRecorder::new(8);

        c.add(2);
        g.set(5);
        rec.record(&reg, 1_000_000);
        c.add(3);
        g.set(1);
        rec.record(&reg, 2_000_000);

        let windows = rec.windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start_micros, 1_000_000);
        assert_eq!(windows[0].end_micros, 2_000_000);
        assert_eq!(
            windows[0].counter_deltas,
            vec![("jobs_total".to_string(), 3)]
        );
        assert_eq!(windows[0].gauges, vec![("depth".to_string(), 1)]);
        assert_eq!(rec.rate_per_sec("jobs_total", 1), Some(3.0));
    }

    #[test]
    fn ring_evicts_oldest_and_rates_cover_requested_span() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let rec = RateRecorder::new(3);
        for tick in 1..=5u64 {
            c.add(tick);
            rec.record(&reg, tick * 1_000_000);
        }
        assert_eq!(rec.len(), 3, "capacity bounds the ring");
        assert_eq!(rec.windows().len(), 2);
        // Last window: tick 4 -> 5 added 5 over one second.
        assert_eq!(rec.rate_per_sec("n", 1), Some(5.0));
        // Asking for more windows than held clamps to the ring.
        assert_eq!(rec.rate_per_sec("n", 100), Some(4.5));
    }

    #[test]
    fn ratio_computes_hit_rate_and_handles_empty_denominator() {
        let reg = MetricsRegistry::new();
        let hits = reg.counter("hits");
        let misses = reg.counter("misses");
        let rec = RateRecorder::new(4);
        rec.record(&reg, 1);
        hits.add(3);
        misses.add(1);
        rec.record(&reg, 2);
        assert_eq!(rec.ratio("hits", &["hits", "misses"], 1), Some(0.75));
        // No further traffic: the next window's denominator is zero.
        rec.record(&reg, 3);
        assert_eq!(rec.ratio("hits", &["hits", "misses"], 1), None);
    }

    #[test]
    fn non_monotonic_and_duplicate_stamps_are_dropped() {
        let reg = MetricsRegistry::new();
        let rec = RateRecorder::new(4);
        rec.record(&reg, 10);
        rec.record(&reg, 10);
        rec.record(&reg, 5);
        assert_eq!(rec.len(), 1, "stalled clock must not add windows");
        assert_eq!(rec.rate_per_sec("absent", 1), None);
    }

    #[test]
    fn render_json_is_integer_only_and_shaped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total");
        let rec = RateRecorder::new(4);
        rec.record(&reg, 1_000);
        c.add(7);
        rec.record(&reg, 2_000);
        let json = rec.render_json();
        assert!(json.contains("\"capacity\":4"), "{json}");
        assert!(json.contains("\"samples\":2"), "{json}");
        assert!(
            json.contains("\"start_us\":1000,\"end_us\":2000,\"counters\":{\"jobs_total\":7}"),
            "{json}"
        );
        assert!(!json.contains('.'), "no floats in the wire form: {json}");
    }
}
