//! octo-obs — observability primitives for the OctoPoCs pipeline.
//!
//! The paper reports per-pair wall time, memory, and step counts
//! (Tables IV–V); a production-scale verification service needs the
//! same numbers continuously. This crate provides the two pieces every
//! layer records into:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s. Registration hands out [`std::sync::Arc`]
//!   handles; the record path is lock-free relaxed atomics, so worker
//!   threads share one registry without contention. Registries (and
//!   histograms) merge, so per-thread collection also works.
//! * [`Span`] — an RAII phase timer that records elapsed microseconds
//!   into a histogram and/or notifies a [`SpanObserver`]. The batch
//!   layer bridges observers onto `octo_sched::EventSink`, keeping this
//!   crate dependency-free.
//!
//! Rendering is deterministic: metrics print sorted by name, as
//! single-line JSON objects ([`MetricsRegistry::render_json`]) or in
//! the Prometheus text format ([`MetricsRegistry::render_prometheus`]).
//! Empty histograms render zeroed statistics — no NaN can reach the
//! output.
//!
//! On top of the registry sits a thin time-series layer: a
//! [`RateRecorder`] ring of [`MetricsRegistry::snapshot`]s taken on a
//! sampling interval, from which windowed throughput and ratios (jobs
//! per second, cache hit-rate over the last N windows) are derived on
//! read — the basis of the daemon's `/metrics/rates` endpoint and
//! `octopocs top`.

#![warn(missing_docs)]

mod rate;
mod registry;
mod span;

pub use rate::{RateRecorder, RateSample, RateWindow};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{NullObserver, Span, SpanObserver};
