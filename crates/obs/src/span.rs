//! Phase-scoped timers.
//!
//! A [`Span`] measures one phase of the pipeline (P1 taint, P2+P3
//! directed symex, P4 replay). Spans nest by construction order —
//! starting a span inside another simply times the inner region — and
//! on finish they can record the elapsed microseconds into a
//! [`Histogram`] and/or notify a [`SpanObserver`]. The observer hook is
//! how phase timings reach `octo_sched::EventSink` without this crate
//! depending on the scheduler: the bridge lives with the caller.

use std::time::Instant;

use crate::registry::Histogram;

/// Receives finished-span notifications.
///
/// Implementors bridge spans into other event systems; the batch layer
/// adapts this to `octo_sched::Event::PhaseFinished`.
pub trait SpanObserver: Sync {
    /// Called when a span attaches via [`Span::with_observer`], before
    /// the region runs. Default: ignored. Observers that bridge spans
    /// into a trace (paired begin/end events) override this.
    fn span_started(&self, _name: &'static str) {}

    /// Called exactly once per span when it finishes (or is dropped).
    fn span_finished(&self, name: &'static str, seconds: f64);
}

/// An observer that discards every notification.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SpanObserver for NullObserver {
    fn span_finished(&self, _name: &'static str, _seconds: f64) {}
}

/// An RAII phase timer.
///
/// ```
/// use octo_obs::{MetricsRegistry, Span};
/// let reg = MetricsRegistry::new();
/// let hist = reg.histogram("phase_p1_micros", &[100, 10_000]);
/// let span = Span::start("p1").with_histogram(&hist);
/// // ... do the phase work ...
/// let seconds = span.finish();
/// assert!(seconds >= 0.0);
/// assert_eq!(hist.count(), 1);
/// ```
#[must_use = "a span measures the region it is alive for"]
pub struct Span<'a> {
    name: &'static str,
    start: Instant,
    histogram: Option<&'a Histogram>,
    observer: Option<&'a dyn SpanObserver>,
    finished: bool,
}

impl<'a> Span<'a> {
    /// Starts the clock.
    pub fn start(name: &'static str) -> Span<'a> {
        Span {
            name,
            start: Instant::now(),
            histogram: None,
            observer: None,
            finished: false,
        }
    }

    /// Also record the elapsed time (in microseconds) into `h` on finish.
    pub fn with_histogram(mut self, h: &'a Histogram) -> Span<'a> {
        self.histogram = Some(h);
        self
    }

    /// Also notify `obs`: [`SpanObserver::span_started`] now,
    /// [`SpanObserver::span_finished`] on finish.
    pub fn with_observer(mut self, obs: &'a dyn SpanObserver) -> Span<'a> {
        obs.span_started(self.name);
        self.observer = Some(obs);
        self
    }

    /// Stops the clock, records, and returns the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        if self.finished {
            return 0.0;
        }
        self.finished = true;
        let elapsed = self.start.elapsed();
        if let Some(h) = self.histogram {
            h.observe(elapsed.as_micros() as u64);
        }
        if let Some(obs) = self.observer {
            obs.span_finished(self.name, elapsed.as_secs_f64());
        }
        elapsed.as_secs_f64()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::sync::Mutex;

    struct Recorder(Mutex<Vec<(&'static str, f64)>>);

    impl SpanObserver for Recorder {
        fn span_finished(&self, name: &'static str, seconds: f64) {
            self.0.lock().unwrap().push((name, seconds));
        }
    }

    #[test]
    fn finish_records_once_into_histogram_and_observer() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t", &[1_000_000]);
        let rec = Recorder(Mutex::new(Vec::new()));
        let span = Span::start("p2").with_histogram(&h).with_observer(&rec);
        let secs = span.finish();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1);
        let seen = rec.0.lock().unwrap();
        assert_eq!(seen.len(), 1, "finish + drop must not double-record");
        assert_eq!(seen[0].0, "p2");
        assert!(seen[0].1 >= 0.0);
    }

    #[test]
    fn dropping_an_unfinished_span_still_records() {
        let rec = Recorder(Mutex::new(Vec::new()));
        {
            let _span = Span::start("p4").with_observer(&rec);
        }
        assert_eq!(rec.0.lock().unwrap().len(), 1);
    }

    #[test]
    fn span_started_fires_at_attach() {
        struct Starts(Mutex<Vec<&'static str>>);
        impl SpanObserver for Starts {
            fn span_started(&self, name: &'static str) {
                self.0.lock().unwrap().push(name);
            }
            fn span_finished(&self, _name: &'static str, _seconds: f64) {}
        }
        let obs = Starts(Mutex::new(Vec::new()));
        let span = Span::start("symex").with_observer(&obs);
        assert_eq!(*obs.0.lock().unwrap(), vec!["symex"], "fires before finish");
        span.finish();
        assert_eq!(obs.0.lock().unwrap().len(), 1, "finish adds no start");
    }

    #[test]
    fn spans_nest_by_scope() {
        let reg = MetricsRegistry::new();
        let outer_h = reg.histogram("outer", &[]);
        let inner_h = reg.histogram("inner", &[]);
        let outer = Span::start("outer").with_histogram(&outer_h);
        let inner = Span::start("inner").with_histogram(&inner_h);
        let inner_secs = inner.finish();
        let outer_secs = outer.finish();
        assert!(outer_secs >= inner_secs, "outer span covers the inner one");
        assert_eq!(outer_h.count(), 1);
        assert_eq!(inner_h.count(), 1);
    }
}
