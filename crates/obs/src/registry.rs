//! Lock-free metric primitives and the registry that names them.
//!
//! The hot path never takes a lock: [`MetricsRegistry`] hands out
//! [`Arc`] handles once (registration locks a `Mutex` around a
//! `BTreeMap`), and every subsequent `inc`/`observe` is a relaxed
//! atomic operation. Worker threads can share one registry directly,
//! or keep private registries and [`MetricsRegistry::merge_from`] them
//! at the end of a batch.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / high-watermark gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (peak tracking).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by their inclusive upper bounds plus an implicit
/// `+Inf` bucket, Prometheus-style. Observation is two relaxed
/// `fetch_add`s plus min/max maintenance — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last one is `+Inf`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation.
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive bucket upper bounds.
    /// Bounds must be strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The configured bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, or `None` if the histogram is empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest observation, or `None` if the histogram is empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Per-bucket counts including the final `+Inf` bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The q-th quantile (q clamped to `[0, 1]`; NaN treated as 0),
    /// reported as the upper bound of the bucket holding the q-th
    /// observation — or the observed maximum for the `+Inf` bucket.
    ///
    /// Returns `None` when the histogram is empty, so an empty batch
    /// never produces a NaN or a division by zero downstream.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Rank of the wanted observation, in [1, count].
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(match self.bounds.get(idx) {
                    Some(&bound) => bound,
                    None => self.max.load(Ordering::Relaxed),
                });
            }
        }
        // Unreachable while count() is consistent with the buckets, but
        // a racing observer should degrade gracefully, not panic.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Folds another histogram with identical bounds into this one.
    ///
    /// The merged histogram is exactly the histogram of the concatenated
    /// observation streams (bucket counts, count, and sum add; min/max
    /// combine).
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A point-in-time value capture of every registered metric, taken
/// under a single registry lock so the name set is consistent (the
/// values themselves are relaxed loads, like any other read).
///
/// Histograms collapse to their `(count, sum)` pair — enough for rate
/// and mean-latency deltas without copying bucket vectors on every
/// sampling tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram `(count, sum)` by name.
    pub histograms: BTreeMap<String, (u64, u64)>,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short lock and
/// returns an [`Arc`] handle; recording through the handle is lock-free.
/// Names render in sorted order, so JSON and Prometheus output are
/// deterministic for a fixed registration set.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Info-style labels attached to gauges (e.g. a build-info metric's
    /// `version`). Kept out of [`Metric`] so the hot path stays a plain
    /// atomic; renderers consult this map when printing.
    info_labels: Mutex<BTreeMap<String, Vec<(String, String)>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// the given bucket bounds on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind or with
    /// different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => {
                assert_eq!(
                    h.bounds(),
                    bounds,
                    "metric `{name}` re-registered with different bounds"
                );
                Arc::clone(h)
            }
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Registers an info-style metric: a gauge pinned at `1` whose
    /// payload is its labels (Prometheus `foo_info{version="…"} 1`
    /// convention). Re-registration overwrites the labels.
    ///
    /// # Panics
    /// If `name` is already registered as a non-gauge kind.
    pub fn info(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let gauge = self.gauge(name);
        gauge.set(1);
        self.info_labels.lock().unwrap().insert(
            name.to_string(),
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        gauge
    }

    /// The info labels registered for `name`, if any.
    pub fn info_labels(&self, name: &str) -> Option<Vec<(String, String)>> {
        self.info_labels.lock().unwrap().get(name).cloned()
    }

    /// Captures every metric's current value under one lock (see
    /// [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), (h.count(), h.sum()));
                }
            }
        }
        snap
    }

    /// Looks up a counter without creating it.
    pub fn get_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// Looks up a gauge without creating it.
    pub fn get_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Gauge(g)) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    /// Looks up a histogram without creating it.
    pub fn get_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().unwrap().keys().cloned().collect()
    }

    /// Folds `other` into this registry: counters add, gauges keep the
    /// maximum (they track peaks), histograms merge bucket-wise. Metrics
    /// only present in `other` are created here.
    ///
    /// # Panics
    /// If a name is registered with different kinds (or histogram
    /// bounds) in the two registries.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.metrics.lock().unwrap().clone();
        for (name, metric) in theirs {
            match metric {
                Metric::Counter(c) => self.counter(&name).add(c.get()),
                Metric::Gauge(g) => self.gauge(&name).record_max(g.get()),
                Metric::Histogram(h) => self.histogram(&name, h.bounds()).merge_from(&h),
            }
        }
        let their_labels = other.info_labels.lock().unwrap().clone();
        let mut mine = self.info_labels.lock().unwrap();
        for (name, labels) in their_labels {
            mine.entry(name).or_insert(labels);
        }
    }

    /// Renders every metric as JSON: `{"metrics":[...]}` with one object
    /// per line, sorted by name. Empty histograms render with zeroed
    /// statistics — never NaN and never a division by zero.
    pub fn render_json(&self) -> String {
        let map = self.metrics.lock().unwrap();
        let labels = self.info_labels.lock().unwrap();
        let mut out = String::from("{\"metrics\":[\n");
        let mut first = true;
        for (name, metric) in map.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{}}}",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{}",
                        g.get()
                    ));
                    if let Some(pairs) = labels.get(name) {
                        out.push_str(",\"labels\":{");
                        for (i, (k, v)) in pairs.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!(
                                "\"{}\":\"{}\"",
                                label_escape(k),
                                label_escape(v)
                            ));
                        }
                        out.push('}');
                    }
                    out.push('}');
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.quantile(0.50).unwrap_or(0),
                        h.quantile(0.90).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                    ));
                    let counts = h.bucket_counts();
                    for (i, count) in counts.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match h.bounds().get(i) {
                            Some(b) => out.push_str(&format!("{{\"le\":{b},\"count\":{count}}}")),
                            None => out.push_str(&format!("{{\"le\":\"+Inf\",\"count\":{count}}}")),
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (histogram buckets cumulative, with the standard `_bucket`,
    /// `_sum`, `_count` series).
    pub fn render_prometheus(&self) -> String {
        let map = self.metrics.lock().unwrap();
        let labels = self.info_labels.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => match labels.get(name) {
                    Some(pairs) => {
                        let rendered: Vec<String> = pairs
                            .iter()
                            .map(|(k, v)| format!("{}=\"{}\"", label_escape(k), label_escape(v)))
                            .collect();
                        out.push_str(&format!(
                            "# TYPE {name} gauge\n{name}{{{}}} {}\n",
                            rendered.join(","),
                            g.get()
                        ));
                    }
                    None => {
                        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                    }
                },
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    let counts = h.bucket_counts();
                    for (i, count) in counts.iter().enumerate() {
                        cumulative += count;
                        match h.bounds().get(i) {
                            Some(b) => {
                                out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n"))
                            }
                            None => out
                                .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n")),
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// Escapes a label key/value for both JSON and the Prometheus text
/// format (quotes, backslashes, newlines — the characters the two
/// grammars share as specials).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("jobs_total").get(), 5, "same handle by name");

        let g = reg.gauge("peak_bytes");
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10, "record_max keeps the peak");
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_count_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5126);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5000));
        assert_eq!(h.bucket_counts(), vec![3, 2, 0, 1]);
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.75), Some(100));
        // The top observation lives in +Inf: quantile reports the max.
        assert_eq!(h.quantile(1.0), Some(5000));
    }

    #[test]
    fn empty_histogram_yields_none_not_nan() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);

        let reg = MetricsRegistry::new();
        reg.histogram("empty_micros", &[10]);
        let json = reg.render_json();
        assert!(!json.contains("NaN"), "{json}");
        assert!(json.contains("\"count\":0"));
        assert!(json.contains("\"p50\":0"));
    }

    #[test]
    fn quantile_handles_weird_q_values() {
        let h = Histogram::new(&[10]);
        h.observe(3);
        assert_eq!(h.quantile(-1.0), Some(10));
        assert_eq!(h.quantile(2.0), Some(10));
        assert_eq!(h.quantile(f64::NAN), Some(10));
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("steps").add(3);
        b.counter("steps").add(4);
        a.gauge("peak").record_max(10);
        b.gauge("peak").record_max(25);
        b.counter("only_in_b").add(1);
        a.merge_from(&b);
        assert_eq!(a.counter("steps").get(), 7);
        assert_eq!(a.gauge("peak").get(), 25);
        assert_eq!(a.counter("only_in_b").get(), 1);
    }

    #[test]
    fn renderers_are_sorted_and_parseable_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("zzz_total").inc();
        reg.gauge("aaa_gauge").set(2);
        let h = reg.histogram("mmm_micros", &[10, 100]);
        h.observe(7);

        let json = reg.render_json();
        let a = json.find("aaa_gauge").unwrap();
        let m = json.find("mmm_micros").unwrap();
        let z = json.find("zzz_total").unwrap();
        assert!(a < m && m < z, "sorted by name");
        assert!(json.contains("\"le\":\"+Inf\""));

        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE zzz_total counter\nzzz_total 1\n"));
        assert!(prom.contains("mmm_micros_bucket{le=\"10\"} 1"));
        assert!(
            prom.contains("mmm_micros_bucket{le=\"+Inf\"} 1"),
            "cumulative"
        );
        assert!(prom.contains("mmm_micros_count 1"));
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.histogram("lat", &[8, 64]);
        let c = reg.counter("n");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let (h, c) = (Arc::clone(&h), Arc::clone(&c));
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe(t * 31 + i % 100);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn info_metric_renders_labels_in_both_formats() {
        let reg = MetricsRegistry::new();
        reg.info("octopocs_build_info", &[("version", "1.2.3")]);
        assert_eq!(reg.gauge("octopocs_build_info").get(), 1);
        assert_eq!(
            reg.info_labels("octopocs_build_info").unwrap(),
            vec![("version".to_string(), "1.2.3".to_string())]
        );

        let prom = reg.render_prometheus();
        assert!(
            prom.contains("octopocs_build_info{version=\"1.2.3\"} 1"),
            "{prom}"
        );
        let json = reg.render_json();
        assert!(json.contains("\"name\":\"octopocs_build_info\""), "{json}");
        assert!(
            json.contains("\"labels\":{\"version\":\"1.2.3\"}"),
            "{json}"
        );
    }

    #[test]
    fn info_labels_survive_merge_and_escape_specials() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        b.info("build_info", &[("version", "a\"b\\c")]);
        a.merge_from(&b);
        assert_eq!(a.gauge("build_info").get(), 1);
        let prom = a.render_prometheus();
        assert!(
            prom.contains("build_info{version=\"a\\\"b\\\\c\"} 1"),
            "{prom}"
        );
    }

    #[test]
    fn snapshot_captures_all_three_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(3);
        reg.gauge("g_depth").set(7);
        let h = reg.histogram("h_micros", &[10]);
        h.observe(4);
        h.observe(40);

        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c_total"), Some(&3));
        assert_eq!(snap.gauges.get("g_depth"), Some(&7));
        assert_eq!(snap.histograms.get("h_micros"), Some(&(2, 44)));
    }
}
