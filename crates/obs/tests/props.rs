//! Property tests for the histogram math (ISSUE 3 satellite): merging
//! two histograms must be indistinguishable from observing the
//! concatenated stream, and the quantile/render paths must stay total
//! (no NaN, no division by zero) for every input — including empty.

use octo_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Strictly increasing bucket bounds drawn from a small universe.
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000, 0..6).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merged_histograms_equal_histogram_of_concatenation(
        bounds in bounds_strategy(),
        xs in prop::collection::vec(0u64..20_000, 0..64),
        ys in prop::collection::vec(0u64..20_000, 0..64),
    ) {
        let a = Histogram::new(&bounds);
        let b = Histogram::new(&bounds);
        let whole = Histogram::new(&bounds);
        for &x in &xs {
            a.observe(x);
            whole.observe(x);
        }
        for &y in &ys {
            b.observe(y);
            whole.observe(y);
        }
        a.merge_from(&b);

        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.sum(), whole.sum());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert_eq!(a.bucket_counts(), whole.bucket_counts());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn quantile_is_total_and_within_observed_range(
        bounds in bounds_strategy(),
        xs in prop::collection::vec(0u64..20_000, 0..64),
        q_milli in -1000i64..2000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let h = Histogram::new(&bounds);
        for &x in &xs {
            h.observe(x);
        }
        match h.quantile(q) {
            None => prop_assert_eq!(h.count(), 0, "None only for the empty histogram"),
            Some(v) => {
                // The answer is a bucket upper bound or the observed max;
                // either way it never exceeds max(bounds.last, max obs).
                let cap = bounds.last().copied().unwrap_or(0).max(h.max().unwrap());
                prop_assert!(v <= cap, "quantile {v} above cap {cap}");
            }
        }
    }

    #[test]
    fn registry_merge_matches_single_registry_recording(
        xs in prop::collection::vec(0u64..1_000, 0..32),
        ys in prop::collection::vec(0u64..1_000, 0..32),
    ) {
        // Two worker-local registries merged into one must agree with a
        // single shared registry — the two collection modes the batch
        // layer may use.
        let merged = MetricsRegistry::new();
        let shared = MetricsRegistry::new();
        let worker_a = MetricsRegistry::new();
        let worker_b = MetricsRegistry::new();
        for (reg_pair, stream) in [((&worker_a, &shared), &xs), ((&worker_b, &shared), &ys)] {
            let (local, global) = reg_pair;
            for &v in stream {
                local.counter("steps_total").add(v);
                global.counter("steps_total").add(v);
                local.gauge("peak").record_max(v);
                global.gauge("peak").record_max(v);
                local.histogram("lat", &[10, 100]).observe(v);
                global.histogram("lat", &[10, 100]).observe(v);
            }
        }
        merged.merge_from(&worker_a);
        merged.merge_from(&worker_b);
        prop_assert_eq!(merged.render_json(), shared.render_json());
        prop_assert_eq!(merged.render_prometheus(), shared.render_prometheus());
    }
}
