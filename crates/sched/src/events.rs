//! The structured progress-event stream.
//!
//! Batch runs emit one [`Event`] per interesting transition: a job
//! starting, a pipeline phase finishing (with its wall time), an artifact
//! cache hit, a job finishing with its outcome. Consumers choose the
//! representation: [`Event::render_human`] for log lines,
//! [`Event::render_json`] for JSON-lines machine consumption.
//!
//! Emission goes through the [`EventSink`] trait so producers do not care
//! where events land. Any `Fn(Event) + Sync` closure is a sink;
//! [`EventLog`] buffers events in memory (tests, post-hoc rendering) and
//! [`NullSink`] drops them.

use std::sync::Mutex;

/// One progress event in a batch run.
///
/// `job` is the submission index of the job the event belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A worker picked the job up.
    JobStarted {
        /// Submission index.
        job: usize,
        /// Display name.
        name: String,
    },
    /// One pipeline phase of the job completed.
    PhaseFinished {
        /// Submission index.
        job: usize,
        /// Phase label (e.g. `"prepare"`, `"verify"`).
        phase: &'static str,
        /// Wall-clock seconds spent in the phase.
        seconds: f64,
    },
    /// The job's cacheable prefix was answered from the artifact cache.
    CacheHit {
        /// Submission index.
        job: usize,
        /// The content-address that hit.
        key: u64,
    },
    /// The job finished with a verdict.
    JobFinished {
        /// Submission index.
        job: usize,
        /// Outcome label (e.g. `"Type-I"`).
        outcome: String,
        /// Total wall-clock seconds for the job.
        seconds: f64,
    },
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Event {
    /// The submission index of the job this event belongs to.
    pub fn job(&self) -> usize {
        match self {
            Event::JobStarted { job, .. }
            | Event::PhaseFinished { job, .. }
            | Event::CacheHit { job, .. }
            | Event::JobFinished { job, .. } => *job,
        }
    }

    /// One human-readable log line (no trailing newline).
    pub fn render_human(&self) -> String {
        match self {
            Event::JobStarted { job, name } => format!("[{job:>3}] start    {name}"),
            Event::PhaseFinished {
                job,
                phase,
                seconds,
            } => format!("[{job:>3}] phase    {phase} ({seconds:.3}s)"),
            Event::CacheHit { job, key } => format!("[{job:>3}] cache    hit {key:016x}"),
            Event::JobFinished {
                job,
                outcome,
                seconds,
            } => format!("[{job:>3}] done     {outcome} ({seconds:.3}s)"),
        }
    }

    /// One JSON-lines object (no trailing newline).
    pub fn render_json(&self) -> String {
        match self {
            Event::JobStarted { job, name } => format!(
                "{{\"event\":\"job_started\",\"job\":{job},\"name\":\"{}\"}}",
                json_escape(name)
            ),
            Event::PhaseFinished {
                job,
                phase,
                seconds,
            } => format!(
                "{{\"event\":\"phase_finished\",\"job\":{job},\"phase\":\"{phase}\",\
                 \"seconds\":{seconds:.6}}}"
            ),
            Event::CacheHit { job, key } => {
                format!("{{\"event\":\"cache_hit\",\"job\":{job},\"key\":\"{key:016x}\"}}")
            }
            Event::JobFinished {
                job,
                outcome,
                seconds,
            } => format!(
                "{{\"event\":\"job_finished\",\"job\":{job},\"outcome\":\"{}\",\
                 \"seconds\":{seconds:.6}}}",
                json_escape(outcome)
            ),
        }
    }
}

/// A consumer of progress events. Sinks are shared across worker threads,
/// so implementations must be `Sync`.
pub trait EventSink: Sync {
    /// Receives one event.
    fn emit(&self, event: Event);
}

/// Every `Sync` closure over [`Event`] is a sink.
impl<F: Fn(Event) + Sync> EventSink for F {
    fn emit(&self, event: Event) {
        self(event)
    }
}

/// Drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: Event) {}
}

/// Buffers events in memory, in emission order.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A snapshot of all events emitted so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events matching a predicate.
    pub fn filtered(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.snapshot().into_iter().filter(|e| pred(e)).collect()
    }
}

impl EventSink for EventLog {
    fn emit(&self, event: Event) {
        self.events.lock().expect("event log poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_in_order() {
        let log = EventLog::new();
        log.emit(Event::JobStarted {
            job: 0,
            name: "a".into(),
        });
        log.emit(Event::JobFinished {
            job: 0,
            outcome: "Type-I".into(),
            seconds: 0.25,
        });
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.snapshot()[1].job(), 0);
        assert_eq!(
            log.filtered(|e| matches!(e, Event::JobFinished { .. }))
                .len(),
            1
        );
    }

    #[test]
    fn json_rendering_escapes_names() {
        let e = Event::JobStarted {
            job: 3,
            name: "a\"b\\c\nd".into(),
        };
        assert_eq!(
            e.render_json(),
            "{\"event\":\"job_started\",\"job\":3,\"name\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn human_rendering_mentions_phase_and_outcome() {
        let p = Event::PhaseFinished {
            job: 1,
            phase: "prepare",
            seconds: 0.5,
        };
        assert!(p.render_human().contains("prepare"));
        let h = Event::CacheHit { job: 1, key: 0xAB };
        assert!(h.render_human().contains("00000000000000ab"));
    }

    #[test]
    fn closures_are_sinks() {
        let count = std::sync::atomic::AtomicUsize::new(0);
        let sink = |_e: Event| {
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        let dyn_sink: &dyn EventSink = &sink;
        dyn_sink.emit(Event::CacheHit { job: 0, key: 1 });
        NullSink.emit(Event::CacheHit { job: 0, key: 2 });
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
