//! The structured progress-event stream.
//!
//! Batch runs emit one [`Event`] per interesting transition: a job
//! starting, a pipeline phase finishing (with its wall time), an artifact
//! cache hit, a job finishing with its outcome. Each event carries the
//! emitting worker's lane and a per-worker monotonic timestamp from an
//! [`EventClock`] — under work stealing, wall-clock reads from different
//! threads can otherwise land out of order in the JSON-lines sink.
//! Consumers choose the representation: [`Event::render_human`] for log
//! lines, [`Event::render_json`] for JSON-lines machine consumption.
//!
//! Emission goes through the [`EventSink`] trait so producers do not care
//! where events land. Any `Fn(Event) + Sync` closure is a sink;
//! [`EventLog`] buffers events in memory (tests, post-hoc rendering) and
//! [`NullSink`] drops them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened (the variant payload of an [`Event`]).
///
/// `job` is the submission index of the job the event belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A worker picked the job up.
    JobStarted {
        /// Submission index.
        job: usize,
        /// Display name.
        name: String,
    },
    /// One pipeline phase of the job completed.
    PhaseFinished {
        /// Submission index.
        job: usize,
        /// Phase label (e.g. `"prepare"`, `"verify"`).
        phase: &'static str,
        /// Wall-clock seconds spent in the phase.
        seconds: f64,
    },
    /// The job's cacheable prefix was answered from the artifact cache.
    CacheHit {
        /// Submission index.
        job: usize,
        /// The content-address that hit.
        key: u64,
    },
    /// The job finished with a verdict.
    JobFinished {
        /// Submission index.
        job: usize,
        /// Outcome label (e.g. `"Type-I"`).
        outcome: String,
        /// Total wall-clock seconds for the job.
        seconds: f64,
    },
    /// An attempt failed transiently and a retry was scheduled. The
    /// event closes attempt `attempt` (1-based): `beats` is the number
    /// of watchdog heartbeats the cancelled attempt token recorded, so
    /// a timeline can show liveness per attempt, not just per job.
    RetryScheduled {
        /// Submission index.
        job: usize,
        /// The attempt that just failed (the retry will be `attempt + 1`).
        attempt: u32,
        /// Backoff before the retry, microseconds.
        backoff_micros: u64,
        /// Watchdog heartbeats observed during the failed attempt.
        beats: u64,
    },
}

/// One progress event in a batch run: a kind, the worker lane that
/// emitted it, and a timestamp that is strictly increasing per worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the run's [`EventClock`] origin, adjusted so
    /// consecutive stamps from the same worker strictly increase.
    pub ts_micros: u64,
    /// The scheduler worker that emitted the event.
    pub worker: usize,
    /// What happened.
    pub kind: EventKind,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Event {
    /// Builds an event. Producers normally stamp `ts_micros` with
    /// [`EventClock::stamp`] for the emitting worker.
    pub fn new(ts_micros: u64, worker: usize, kind: EventKind) -> Event {
        Event {
            ts_micros,
            worker,
            kind,
        }
    }

    /// The submission index of the job this event belongs to.
    pub fn job(&self) -> usize {
        match &self.kind {
            EventKind::JobStarted { job, .. }
            | EventKind::PhaseFinished { job, .. }
            | EventKind::CacheHit { job, .. }
            | EventKind::JobFinished { job, .. }
            | EventKind::RetryScheduled { job, .. } => *job,
        }
    }

    /// One human-readable log line (no trailing newline).
    pub fn render_human(&self) -> String {
        match &self.kind {
            EventKind::JobStarted { job, name } => format!("[{job:>3}] start    {name}"),
            EventKind::PhaseFinished {
                job,
                phase,
                seconds,
            } => format!("[{job:>3}] phase    {phase} ({seconds:.3}s)"),
            EventKind::CacheHit { job, key } => format!("[{job:>3}] cache    hit {key:016x}"),
            EventKind::JobFinished {
                job,
                outcome,
                seconds,
            } => format!("[{job:>3}] done     {outcome} ({seconds:.3}s)"),
            EventKind::RetryScheduled {
                job,
                attempt,
                backoff_micros,
                beats,
            } => format!(
                "[{job:>3}] retry    attempt {attempt} failed ({beats} beats), \
                 backoff {backoff_micros}us"
            ),
        }
    }

    /// One JSON-lines object (no trailing newline). The leading keys
    /// (`event`, `ts_us`, `worker`) are shared with the octo-trace
    /// JSON-lines stream so one consumer can merge both.
    pub fn render_json(&self) -> String {
        let head = format!("\"ts_us\":{},\"worker\":{}", self.ts_micros, self.worker);
        match &self.kind {
            EventKind::JobStarted { job, name } => format!(
                "{{\"event\":\"job_started\",{head},\"job\":{job},\"name\":\"{}\"}}",
                json_escape(name)
            ),
            EventKind::PhaseFinished {
                job,
                phase,
                seconds,
            } => format!(
                "{{\"event\":\"phase_finished\",{head},\"job\":{job},\"phase\":\"{phase}\",\
                 \"seconds\":{seconds:.6}}}"
            ),
            EventKind::CacheHit { job, key } => {
                format!("{{\"event\":\"cache_hit\",{head},\"job\":{job},\"key\":\"{key:016x}\"}}")
            }
            EventKind::JobFinished {
                job,
                outcome,
                seconds,
            } => format!(
                "{{\"event\":\"job_finished\",{head},\"job\":{job},\"outcome\":\"{}\",\
                 \"seconds\":{seconds:.6}}}",
                json_escape(outcome)
            ),
            EventKind::RetryScheduled {
                job,
                attempt,
                backoff_micros,
                beats,
            } => format!(
                "{{\"event\":\"retry_scheduled\",{head},\"job\":{job},\"attempt\":{attempt},\
                 \"backoff_us\":{backoff_micros},\"beats\":{beats}}}"
            ),
        }
    }
}

/// Stamps events with per-worker strictly-monotonic microsecond ticks.
///
/// A plain `Instant::elapsed` read is monotonic per call but coarse: two
/// events emitted back-to-back on one worker (or a stolen job resuming
/// on another) can read the same microsecond, and the JSON-lines stream
/// then shows ties or — when rendered after a steal — apparent
/// reordering. [`EventClock::stamp`] clamps each worker's stamp to at
/// least one past that worker's previous stamp, so per-worker order is
/// recoverable from timestamps alone.
#[derive(Debug)]
pub struct EventClock {
    origin: Instant,
    last: Vec<AtomicU64>,
}

impl EventClock {
    /// A clock for `workers` lanes (at least one), starting now.
    pub fn new(workers: usize) -> EventClock {
        EventClock {
            origin: Instant::now(),
            last: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Microseconds since the clock started, strictly greater than any
    /// stamp previously returned for `worker`.
    pub fn stamp(&self, worker: usize) -> u64 {
        let lane = &self.last[worker % self.last.len()];
        let now = self.origin.elapsed().as_micros() as u64;
        // Each lane is only stamped from the thread running that worker,
        // so a relaxed read-modify-write cycle is race-free.
        let ts = now.max(lane.load(Ordering::Relaxed) + 1);
        lane.store(ts, Ordering::Relaxed);
        ts
    }
}

/// A consumer of progress events. Sinks are shared across worker threads,
/// so implementations must be `Sync`.
pub trait EventSink: Sync {
    /// Receives one event.
    fn emit(&self, event: Event);
}

/// Every `Sync` closure over [`Event`] is a sink.
impl<F: Fn(Event) + Sync> EventSink for F {
    fn emit(&self, event: Event) {
        self(event)
    }
}

/// Drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: Event) {}
}

/// Fans one event stream out to any number of dynamically attached
/// subscribers.
///
/// A batch run takes a single `&dyn EventSink`; a long-running service
/// has many short-lived consumers — each `watch` connection wants the
/// live stream while it is attached, a logger may want all of it. A
/// `FanoutSink` is the bridge: it *is* an [`EventSink`], and every
/// [`FanoutSink::subscribe`]d sink receives a clone of every event
/// emitted while its subscription is live. Subscriptions are identified
/// by the returned id and detached with [`FanoutSink::unsubscribe`]
/// (dropping the fanout detaches everything).
///
/// Emission takes a short lock to snapshot the subscriber list; the
/// subscriber sinks themselves run outside any fanout-internal state,
/// so a slow subscriber delays delivery but cannot deadlock
/// subscription management... as long as it does not call back into
/// `subscribe`/`unsubscribe` from inside `emit`.
#[derive(Default)]
pub struct FanoutSink {
    subscribers: Mutex<Vec<(u64, std::sync::Arc<dyn EventSink + Send + Sync>)>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl FanoutSink {
    /// A fanout with no subscribers (events are dropped until one
    /// attaches).
    pub fn new() -> FanoutSink {
        FanoutSink::default()
    }

    /// Attaches a subscriber; every subsequent event is delivered to it
    /// until the returned id is [`FanoutSink::unsubscribe`]d.
    pub fn subscribe(&self, sink: std::sync::Arc<dyn EventSink + Send + Sync>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers
            .lock()
            .expect("fanout poisoned")
            .push((id, sink));
        id
    }

    /// Detaches a subscriber. Unknown ids are ignored (the subscriber
    /// may already have been detached).
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers
            .lock()
            .expect("fanout poisoned")
            .retain(|(sid, _)| *sid != id);
    }

    /// Currently attached subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("fanout poisoned").len()
    }
}

impl EventSink for FanoutSink {
    fn emit(&self, event: Event) {
        // Snapshot under the lock, deliver outside it: a subscriber that
        // blocks (a full channel, a slow socket) must not hold up
        // subscribe/unsubscribe from other threads.
        let snapshot: Vec<_> = self
            .subscribers
            .lock()
            .expect("fanout poisoned")
            .iter()
            .map(|(_, s)| std::sync::Arc::clone(s))
            .collect();
        for sink in snapshot {
            sink.emit(event.clone());
        }
    }
}

/// Buffers events in memory, in emission order.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// A snapshot of all events emitted so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events matching a predicate.
    pub fn filtered(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.snapshot().into_iter().filter(|e| pred(e)).collect()
    }
}

impl EventSink for EventLog {
    fn emit(&self, event: Event) {
        self.events.lock().expect("event log poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(kind: EventKind) -> Event {
        Event::new(0, 0, kind)
    }

    #[test]
    fn log_collects_in_order() {
        let log = EventLog::new();
        log.emit(at(EventKind::JobStarted {
            job: 0,
            name: "a".into(),
        }));
        log.emit(at(EventKind::JobFinished {
            job: 0,
            outcome: "Type-I".into(),
            seconds: 0.25,
        }));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.snapshot()[1].job(), 0);
        assert_eq!(
            log.filtered(|e| matches!(e.kind, EventKind::JobFinished { .. }))
                .len(),
            1
        );
    }

    #[test]
    fn json_rendering_escapes_names() {
        let e = Event::new(
            41,
            2,
            EventKind::JobStarted {
                job: 3,
                name: "a\"b\\c\nd".into(),
            },
        );
        assert_eq!(
            e.render_json(),
            "{\"event\":\"job_started\",\"ts_us\":41,\"worker\":2,\"job\":3,\
             \"name\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn retry_scheduled_renders_and_reports_its_job() {
        let e = Event::new(
            9,
            1,
            EventKind::RetryScheduled {
                job: 4,
                attempt: 2,
                backoff_micros: 1500,
                beats: 11,
            },
        );
        assert_eq!(e.job(), 4);
        assert_eq!(
            e.render_json(),
            "{\"event\":\"retry_scheduled\",\"ts_us\":9,\"worker\":1,\"job\":4,\
             \"attempt\":2,\"backoff_us\":1500,\"beats\":11}"
        );
        let human = e.render_human();
        assert!(human.contains("attempt 2"), "{human}");
        assert!(human.contains("1500us"), "{human}");
    }

    #[test]
    fn human_rendering_mentions_phase_and_outcome() {
        let p = at(EventKind::PhaseFinished {
            job: 1,
            phase: "prepare",
            seconds: 0.5,
        });
        assert!(p.render_human().contains("prepare"));
        let h = at(EventKind::CacheHit { job: 1, key: 0xAB });
        assert!(h.render_human().contains("00000000000000ab"));
    }

    #[test]
    fn closures_are_sinks() {
        let count = std::sync::atomic::AtomicUsize::new(0);
        let sink = |_e: Event| {
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        let dyn_sink: &dyn EventSink = &sink;
        dyn_sink.emit(at(EventKind::CacheHit { job: 0, key: 1 }));
        NullSink.emit(at(EventKind::CacheHit { job: 0, key: 2 }));
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn clock_stamps_strictly_increase_per_worker() {
        // Regression: back-to-back emissions within one microsecond used
        // to produce tied (and, across a steal, reordered) timestamps.
        let clock = EventClock::new(2);
        let mut prev = 0;
        for _ in 0..10_000 {
            let ts = clock.stamp(0);
            assert!(ts > prev, "stamp {ts} not after {prev}");
            prev = ts;
        }
        // The other lane is independent and also strictly increases.
        let a = clock.stamp(1);
        let b = clock.stamp(1);
        assert!(b > a);
    }

    #[test]
    fn clock_stamps_from_worker_threads_stay_monotonic() {
        use std::sync::Arc;
        let clock = Arc::new(EventClock::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    let mut stamps = Vec::with_capacity(1000);
                    for _ in 0..1000 {
                        stamps.push(clock.stamp(w));
                    }
                    stamps
                })
            })
            .collect();
        for h in handles {
            let stamps = h.join().unwrap();
            assert!(stamps.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn clock_tolerates_out_of_range_worker_index() {
        let clock = EventClock::new(1);
        let a = clock.stamp(0);
        let b = clock.stamp(7); // folds onto lane 0
        assert!(b > a);
    }

    #[test]
    fn fanout_delivers_to_every_live_subscriber() {
        use std::sync::Arc;
        let fanout = FanoutSink::new();
        // No subscribers: events are dropped, not an error.
        fanout.emit(at(EventKind::CacheHit { job: 0, key: 1 }));
        let a = Arc::new(EventLog::new());
        let b = Arc::new(EventLog::new());
        let ida = fanout.subscribe(a.clone());
        let _idb = fanout.subscribe(b.clone());
        assert_eq!(fanout.subscriber_count(), 2);
        fanout.emit(at(EventKind::JobStarted {
            job: 1,
            name: "x".into(),
        }));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        fanout.unsubscribe(ida);
        fanout.unsubscribe(ida); // double-detach is a no-op
        fanout.emit(at(EventKind::JobFinished {
            job: 1,
            outcome: "Type-I".into(),
            seconds: 0.1,
        }));
        assert_eq!(a.len(), 1, "detached subscriber sees nothing new");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fanout_is_usable_as_a_dyn_sink() {
        use std::sync::Arc;
        let fanout = FanoutSink::new();
        let log = Arc::new(EventLog::new());
        fanout.subscribe(log.clone());
        let dyn_sink: &dyn EventSink = &fanout;
        dyn_sink.emit(at(EventKind::CacheHit { job: 2, key: 7 }));
        assert_eq!(log.snapshot()[0].job(), 2);
    }
}
