//! The work-stealing job scheduler.
//!
//! Static chunking (split the job list into `threads` contiguous chunks,
//! one thread each) has a bad worst case that batch verification hits
//! constantly: job costs are wildly skewed — a directed-symbolic-execution
//! job can cost 100× a prescreen-decided one — so the chunk containing the
//! slow job stalls while other workers idle. [`run_jobs`] instead gives
//! every worker a deque of job indices; a worker that drains its own deque
//! steals *half* of a victim's remaining jobs (from the tail, away from
//! the victim's pop end), which rebalances in O(log n) steals without a
//! central queue bottleneck.
//!
//! Results are written into per-index slots, so the returned vector is in
//! **submission order** no matter how many workers ran or how the steals
//! interleaved; with a deterministic job function the output is therefore
//! fully deterministic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the scheduler observed while running one batch.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Workers actually spawned (≤ requested; never more than jobs).
    pub workers: usize,
    /// Jobs executed by each worker (sums to the job count).
    pub executed: Vec<u64>,
    /// Successful steal operations (each moves ≥ 1 job).
    pub steals: u64,
    /// Total jobs moved by steals.
    pub jobs_stolen: u64,
}

/// Runs every job on a pool of `workers` work-stealing workers and
/// returns the results **in submission order**, plus scheduling stats.
///
/// `run` is called as `run(worker_index, job)`. Ordering of the result
/// vector is independent of `workers` and of steal interleavings; if
/// `run` is deterministic, so is the entire result.
///
/// # Panics
/// Propagates panics from `run` (the batch is aborted).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, run: F) -> (Vec<R>, SchedStats)
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return (
            Vec::new(),
            SchedStats {
                workers: 0,
                ..SchedStats::default()
            },
        );
    }
    let workers = workers.clamp(1, n);

    // Job payloads and result slots live in per-index cells; each index is
    // executed exactly once, by whichever worker holds it.
    let payloads: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Initial distribution: round-robin, so even without any steal every
    // worker starts with an interleaved (not contiguous) share.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals = AtomicU64::new(0);
    let jobs_stolen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let payloads = &payloads;
            let results = &results;
            let deques = &deques;
            let executed = &executed;
            let steals = &steals;
            let jobs_stolen = &jobs_stolen;
            let run = &run;
            scope.spawn(move || loop {
                // 1. Pop from the front of the own deque.
                let mut next = deques[w].lock().expect("deque poisoned").pop_front();
                // 2. Otherwise steal the back half of the first non-empty
                //    victim deque.
                if next.is_none() {
                    for off in 1..workers {
                        let victim = (w + off) % workers;
                        let stolen = {
                            let mut vd = deques[victim].lock().expect("deque poisoned");
                            let len = vd.len();
                            if len == 0 {
                                continue;
                            }
                            vd.split_off(len - len.div_ceil(2))
                        };
                        steals.fetch_add(1, Ordering::Relaxed);
                        jobs_stolen.fetch_add(stolen.len() as u64, Ordering::Relaxed);
                        let mut own = deques[w].lock().expect("deque poisoned");
                        own.extend(stolen);
                        next = own.pop_front();
                        break;
                    }
                }
                // 3. Nothing anywhere: this worker is done. (Jobs never
                //    spawn jobs, so emptiness only ever advances.)
                let Some(idx) = next else { break };
                let job = payloads[idx]
                    .lock()
                    .expect("payload poisoned")
                    .take()
                    .expect("job executed twice");
                let out = run(w, job);
                *results[idx].lock().expect("result poisoned") = Some(out);
                executed[w].fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    let out = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("every job produced a result")
        })
        .collect();
    let stats = SchedStats {
        workers,
        executed: executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        steals: steals.load(Ordering::Relaxed),
        jobs_stolen: jobs_stolen.load(Ordering::Relaxed),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately skewed cost function (job 0 dominates).
    fn cost_of(i: usize) -> u64 {
        if i == 0 {
            200_000
        } else {
            500
        }
    }

    /// Deterministic busywork returning a value derived from the input.
    fn spin(seed: u64, iters: u64) -> u64 {
        let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
        for i in 0..iters {
            h ^= i;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    #[test]
    fn empty_batch() {
        let (out, stats) = run_jobs(Vec::<u64>::new(), 4, |_, j| j);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn results_keep_submission_order_for_any_worker_count() {
        let jobs: Vec<usize> = (0..37).collect();
        let reference: Vec<u64> = jobs.iter().map(|&i| spin(i as u64, cost_of(i))).collect();
        for workers in [1, 2, 3, 8, 64] {
            let (out, stats) = run_jobs(jobs.clone(), workers, |_, i| spin(i as u64, cost_of(i)));
            assert_eq!(out, reference, "workers={workers}");
            assert_eq!(stats.workers, workers.min(jobs.len()));
            assert_eq!(stats.executed.iter().sum::<u64>(), jobs.len() as u64);
        }
    }

    #[test]
    fn skewed_batches_actually_steal() {
        // One worker gets pinned on the heavy job; the other must steal
        // the rest of its deque. With round-robin distribution and two
        // workers, worker 0 holds jobs {0, 2, 4, ...}: job 0 is heavy, so
        // worker 1 finishing its odd jobs steals the remaining evens.
        let jobs: Vec<usize> = (0..64).collect();
        let (out, stats) = run_jobs(jobs, 2, |_, i| spin(i as u64, cost_of(i) * 20));
        assert_eq!(out.len(), 64);
        assert!(stats.steals > 0, "expected at least one steal: {stats:?}");
        assert_eq!(stats.jobs_stolen > 0, stats.steals > 0);
    }

    #[test]
    fn single_job_runs_on_one_worker() {
        let (out, stats) = run_jobs(vec![9u64], 16, |w, j| {
            assert_eq!(w, 0);
            j * 2
        });
        assert_eq!(out, vec![18]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn worker_index_is_in_range() {
        let jobs: Vec<usize> = (0..100).collect();
        let (out, _) = run_jobs(jobs, 5, |w, i| {
            assert!(w < 5);
            i
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
