//! The work-stealing job scheduler.
//!
//! Static chunking (split the job list into `threads` contiguous chunks,
//! one thread each) has a bad worst case that batch verification hits
//! constantly: job costs are wildly skewed — a directed-symbolic-execution
//! job can cost 100× a prescreen-decided one — so the chunk containing the
//! slow job stalls while other workers idle. [`run_jobs`] instead gives
//! every worker a deque of job indices; a worker that drains its own deque
//! steals *half* of a victim's remaining jobs (from the tail, away from
//! the victim's pop end), which rebalances in O(log n) steals without a
//! central queue bottleneck.
//!
//! Results are written into per-index slots, so the returned vector is in
//! **submission order** no matter how many workers ran or how the steals
//! interleaved; with a deterministic job function the output is therefore
//! fully deterministic.
//!
//! Jobs are **panic-isolated**: a `run` call that unwinds is caught and
//! surfaces as `Err(`[`JobPanic`]`)` in its result slot while every other
//! job keeps running — one misbehaving verification pair cannot take down
//! a corpus batch.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the scheduler observed while running one batch.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Workers actually spawned (≤ requested; never more than jobs).
    pub workers: usize,
    /// Jobs executed by each worker. Sums to the job count: a job that
    /// panics mid-run still counts exactly once, on the worker that ran
    /// it.
    pub executed: Vec<u64>,
    /// Successful steal operations (each moves ≥ 1 job).
    pub steals: u64,
    /// Total jobs moved by steals.
    pub jobs_stolen: u64,
}

/// The captured payload of a job whose `run` call panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message, when the payload was a `&str` or `String`
    /// (the overwhelmingly common case); a placeholder otherwise.
    pub message: String,
}

impl JobPanic {
    /// Extracts a human-readable message from a caught panic payload.
    pub fn from_payload(payload: &(dyn std::any::Any + Send)) -> JobPanic {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        JobPanic { message }
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

/// Runs every job on a pool of `workers` work-stealing workers and
/// returns the results **in submission order**, plus scheduling stats.
///
/// `run` is called as `run(worker_index, job)`. Ordering of the result
/// vector is independent of `workers` and of steal interleavings; if
/// `run` is deterministic, so is the entire result.
///
/// # Panics
/// Never propagates panics from `run`: each call runs inside
/// [`std::panic::catch_unwind`], and a panicking job yields
/// `Err(`[`JobPanic`]`)` in its slot while the remaining jobs (on every
/// worker, including the one that caught the panic) run to completion.
/// No scheduler lock is held while `run` executes, so an unwind can
/// never poison a deque or a result slot.
pub fn run_jobs<J, R, F>(
    jobs: Vec<J>,
    workers: usize,
    run: F,
) -> (Vec<Result<R, JobPanic>>, SchedStats)
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return (
            Vec::new(),
            SchedStats {
                workers: 0,
                ..SchedStats::default()
            },
        );
    }
    let workers = workers.clamp(1, n);

    // Job payloads and result slots live in per-index cells; each index is
    // executed exactly once, by whichever worker holds it.
    let payloads: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<Result<R, JobPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // Initial distribution: round-robin, so even without any steal every
    // worker starts with an interleaved (not contiguous) share.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals = AtomicU64::new(0);
    let jobs_stolen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let payloads = &payloads;
            let results = &results;
            let deques = &deques;
            let executed = &executed;
            let steals = &steals;
            let jobs_stolen = &jobs_stolen;
            let run = &run;
            scope.spawn(move || loop {
                // 1. Pop from the front of the own deque.
                let mut next = deques[w].lock().expect("deque poisoned").pop_front();
                // 2. Otherwise steal the back half of the first non-empty
                //    victim deque.
                if next.is_none() {
                    for off in 1..workers {
                        let victim = (w + off) % workers;
                        let stolen = {
                            let mut vd = deques[victim].lock().expect("deque poisoned");
                            let len = vd.len();
                            if len == 0 {
                                continue;
                            }
                            vd.split_off(len - len.div_ceil(2))
                        };
                        steals.fetch_add(1, Ordering::Relaxed);
                        jobs_stolen.fetch_add(stolen.len() as u64, Ordering::Relaxed);
                        let mut own = deques[w].lock().expect("deque poisoned");
                        own.extend(stolen);
                        next = own.pop_front();
                        break;
                    }
                }
                // 3. Nothing anywhere: this worker is done. (Jobs never
                //    spawn jobs, so emptiness only ever advances.)
                let Some(idx) = next else { break };
                let job = payloads[idx]
                    .lock()
                    .expect("payload poisoned")
                    .take()
                    .expect("job executed twice");
                // The envelope is unwind-safe by construction: `job` was
                // already taken out of its slot (it is consumed either
                // way), and `run` is only ever observed through a shared
                // reference — any interior state it mutates is the
                // caller's contract, not the scheduler's.
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| run(w, job)))
                    .map_err(|payload| JobPanic::from_payload(payload.as_ref()));
                *results[idx].lock().expect("result poisoned") = Some(out);
                // Exactly once per completed-or-failed job, on the worker
                // that ran it — panicking jobs count too.
                executed[w].fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    let out = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("every job produced a result")
        })
        .collect();
    let stats = SchedStats {
        workers,
        executed: executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        steals: steals.load(Ordering::Relaxed),
        jobs_stolen: jobs_stolen.load(Ordering::Relaxed),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately skewed cost function (job 0 dominates).
    fn cost_of(i: usize) -> u64 {
        if i == 0 {
            200_000
        } else {
            500
        }
    }

    /// Deterministic busywork returning a value derived from the input.
    fn spin(seed: u64, iters: u64) -> u64 {
        let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
        for i in 0..iters {
            h ^= i;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Unwraps every slot of a batch that is expected to be panic-free.
    fn ok_all<R>(out: Vec<Result<R, JobPanic>>) -> Vec<R> {
        out.into_iter()
            .map(|r| r.expect("no job should have panicked"))
            .collect()
    }

    #[test]
    fn empty_batch() {
        let (out, stats) = run_jobs(Vec::<u64>::new(), 4, |_, j| j);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn results_keep_submission_order_for_any_worker_count() {
        let jobs: Vec<usize> = (0..37).collect();
        let reference: Vec<u64> = jobs.iter().map(|&i| spin(i as u64, cost_of(i))).collect();
        for workers in [1, 2, 3, 8, 64] {
            let (out, stats) = run_jobs(jobs.clone(), workers, |_, i| spin(i as u64, cost_of(i)));
            assert_eq!(ok_all(out), reference, "workers={workers}");
            assert_eq!(stats.workers, workers.min(jobs.len()));
            assert_eq!(stats.executed.iter().sum::<u64>(), jobs.len() as u64);
        }
    }

    #[test]
    fn skewed_batches_actually_steal() {
        // One worker gets pinned on the heavy job; the other must steal
        // the rest of its deque. With round-robin distribution and two
        // workers, worker 0 holds jobs {0, 2, 4, ...}: job 0 is heavy, so
        // worker 1 finishing its odd jobs steals the remaining evens.
        let jobs: Vec<usize> = (0..64).collect();
        let (out, stats) = run_jobs(jobs, 2, |_, i| spin(i as u64, cost_of(i) * 20));
        assert_eq!(out.len(), 64);
        assert!(stats.steals > 0, "expected at least one steal: {stats:?}");
        assert_eq!(stats.jobs_stolen > 0, stats.steals > 0);
    }

    #[test]
    fn single_job_runs_on_one_worker() {
        let (out, stats) = run_jobs(vec![9u64], 16, |w, j| {
            assert_eq!(w, 0);
            j * 2
        });
        assert_eq!(ok_all(out), vec![18]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn worker_index_is_in_range() {
        let jobs: Vec<usize> = (0..100).collect();
        let (out, _) = run_jobs(jobs, 5, |w, i| {
            assert!(w < 5);
            i
        });
        assert_eq!(ok_all(out), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_is_isolated_and_the_rest_complete() {
        let jobs: Vec<usize> = (0..20).collect();
        for workers in [1, 2, 4, 16] {
            let (out, stats) = run_jobs(jobs.clone(), workers, |_, i| {
                assert!(i != 7, "injected failure in job {i}");
                i * 10
            });
            assert_eq!(out.len(), 20, "workers={workers}");
            for (i, slot) in out.iter().enumerate() {
                if i == 7 {
                    let p = slot.as_ref().expect_err("job 7 must surface its panic");
                    assert!(
                        p.message.contains("injected failure in job 7"),
                        "captured message: {:?}",
                        p.message
                    );
                } else {
                    assert_eq!(slot.as_ref().expect("healthy job"), &(i * 10));
                }
            }
            assert_eq!(stats.executed.iter().sum::<u64>(), 20, "workers={workers}");
        }
    }

    /// Regression: `executed` must count a panicking job exactly once on
    /// the worker that ran it, so per-worker counts still sum to the job
    /// count.
    #[test]
    fn executed_counts_panicked_jobs_exactly_once() {
        let jobs: Vec<usize> = (0..32).collect();
        for workers in [1, 3, 8] {
            let (out, stats) = run_jobs(jobs.clone(), workers, |_, i| {
                assert!(i % 5 != 0, "boom {i}");
                i
            });
            assert_eq!(
                out.iter().filter(|r| r.is_err()).count(),
                7,
                "workers={workers}"
            );
            assert_eq!(
                stats.executed.iter().sum::<u64>(),
                jobs.len() as u64,
                "workers={workers}: {stats:?}"
            );
        }
    }

    #[test]
    fn non_string_panic_payload_gets_a_placeholder_message() {
        let (out, _) = run_jobs(vec![0u64], 1, |_, _| -> u64 {
            std::panic::panic_any(42i32);
        });
        let p = out[0].as_ref().expect_err("payload must surface");
        assert_eq!(p.message, "<non-string panic payload>");
        assert!(p.to_string().contains("job panicked"));
    }
}
