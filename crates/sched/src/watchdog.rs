//! Heartbeat watchdog: escalates silent jobs before the global deadline.
//!
//! A per-job deadline catches jobs that are *slow*; it says nothing about
//! jobs that are *wedged* — an engine stuck in a loop that still polls
//! its cancel token would only be collected when the (possibly much
//! later, possibly absent) deadline fires, holding a worker hostage the
//! whole time. The [`Watchdog`] closes that gap: each watched job shares
//! its [`CancelToken`]'s heartbeat counter with a monitor thread, and a
//! job whose counter stops advancing for longer than the quiet budget is
//! **escalated** — its token is cancelled with the escalation mark set,
//! so the owner reports `Hung` (not `Deadline`) and the worker moves on.
//!
//! The monitor never touches job state directly; escalation is entirely
//! cooperative, riding the same poll the engines already do for
//! deadlines. Tuning guidance lives in `docs/robustness.md`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;

/// Tuning for a [`Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long a watched job may go without a heartbeat before it is
    /// escalated. Must comfortably exceed the longest legitimate gap
    /// between beats (e.g. one slow solver call or the whole prepare
    /// phase, which beats only on entry to the engine).
    pub quiet: Duration,
    /// How often the monitor thread rescans the watched jobs.
    pub poll: Duration,
}

impl WatchdogConfig {
    /// A config with the given quiet budget and a poll interval of one
    /// quarter of it (but at least 5 ms).
    pub fn with_quiet(quiet: Duration) -> WatchdogConfig {
        WatchdogConfig {
            quiet,
            poll: (quiet / 4).max(Duration::from_millis(5)),
        }
    }
}

struct Watched {
    token: CancelToken,
    last_beats: u64,
    last_progress: Instant,
}

struct Inner {
    quiet: Duration,
    stop: AtomicBool,
    fired: AtomicU64,
    watched: Mutex<HashMap<u64, Watched>>,
}

impl Inner {
    fn scan(&self) {
        let now = Instant::now();
        let mut watched = self.watched.lock().expect("watchdog registry poisoned");
        watched.retain(|_, entry| {
            let beats = entry.token.beats();
            if beats != entry.last_beats {
                entry.last_beats = beats;
                entry.last_progress = now;
                return true;
            }
            if entry.token.is_cancelled() {
                // Already winding down (deadline or explicit cancel);
                // nothing for the watchdog to add.
                return true;
            }
            if now.duration_since(entry.last_progress) >= self.quiet {
                entry.token.escalate();
                self.fired.fetch_add(1, Ordering::Relaxed);
                // Drop the entry: one escalation per registration.
                return false;
            }
            true
        });
    }
}

/// A monitor thread escalating watched jobs that stop heartbeating.
///
/// Create one per batch with [`Watchdog::spawn`], register each job
/// attempt with [`Watchdog::watch`], and let the returned guard
/// deregister the job when the attempt finishes. Dropping the `Watchdog`
/// stops and joins the monitor.
#[derive(Debug)]
pub struct Watchdog {
    inner: Arc<Inner>,
    next_id: AtomicU64,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the monitor thread.
    pub fn spawn(config: WatchdogConfig) -> Watchdog {
        let inner = Arc::new(Inner {
            quiet: config.quiet,
            stop: AtomicBool::new(false),
            fired: AtomicU64::new(0),
            watched: Mutex::new(HashMap::new()),
        });
        let monitor = Arc::clone(&inner);
        let poll = config.poll.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("octo-watchdog".to_string())
            .spawn(move || {
                while !monitor.stop.load(Ordering::Acquire) {
                    std::thread::sleep(poll);
                    monitor.scan();
                }
            })
            .expect("spawning the watchdog thread");
        Watchdog {
            inner,
            next_id: AtomicU64::new(0),
            handle: Some(handle),
        }
    }

    /// Registers one job attempt. The job counts as having just made
    /// progress; it is escalated if `token`'s heartbeat counter then
    /// stays unchanged for the quiet budget. Dropping the guard
    /// deregisters the attempt.
    pub fn watch(&self, token: &CancelToken) -> WatchGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Watched {
            token: token.clone(),
            last_beats: token.beats(),
            last_progress: Instant::now(),
        };
        self.inner
            .watched
            .lock()
            .expect("watchdog registry poisoned")
            .insert(id, entry);
        WatchGuard {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// How many escalations this watchdog has fired.
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Deregisters a watched job attempt on drop.
#[must_use = "dropping the guard stops watching the job"]
#[derive(Debug)]
pub struct WatchGuard {
    inner: Arc<Inner>,
    id: u64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("quiet", &self.quiet)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.inner
            .watched
            .lock()
            .expect("watchdog registry poisoned")
            .remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> WatchdogConfig {
        WatchdogConfig {
            quiet: Duration::from_millis(40),
            poll: Duration::from_millis(5),
        }
    }

    /// Polls `cond` for up to `budget`, returning whether it came true.
    fn eventually(budget: Duration, cond: impl Fn() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < budget {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn silent_job_is_escalated() {
        let dog = Watchdog::spawn(fast_config());
        let token = CancelToken::new();
        let _watch = dog.watch(&token);
        assert!(
            eventually(Duration::from_secs(5), || token.is_cancelled()),
            "watchdog never escalated a silent job"
        );
        assert!(token.was_escalated());
        assert_eq!(dog.fired(), 1);
    }

    #[test]
    fn beating_job_survives() {
        let dog = Watchdog::spawn(fast_config());
        let token = CancelToken::new();
        let _watch = dog.watch(&token);
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            token.beat();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            !token.is_cancelled(),
            "a heartbeating job must not be escalated"
        );
        assert_eq!(dog.fired(), 0);
    }

    #[test]
    fn dropped_guard_deregisters() {
        let dog = Watchdog::spawn(fast_config());
        let token = CancelToken::new();
        drop(dog.watch(&token));
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            !token.is_cancelled(),
            "deregistered jobs must not be escalated"
        );
    }

    #[test]
    fn already_cancelled_job_is_not_double_counted() {
        let dog = Watchdog::spawn(fast_config());
        let token = CancelToken::new();
        token.cancel();
        let _watch = dog.watch(&token);
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(dog.fired(), 0);
        assert!(!token.was_escalated());
    }

    #[test]
    fn with_quiet_derives_a_sane_poll() {
        let c = WatchdogConfig::with_quiet(Duration::from_secs(2));
        assert_eq!(c.poll, Duration::from_millis(500));
        let tiny = WatchdogConfig::with_quiet(Duration::from_millis(4));
        assert_eq!(tiny.poll, Duration::from_millis(5));
    }
}
