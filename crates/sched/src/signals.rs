//! Drain-on-signal wiring for long-running processes.
//!
//! `octopocs batch` and `octopocsd` both want the same Ctrl-C contract:
//! the **first** SIGINT/SIGTERM requests a graceful drain (fire a
//! [`CancelToken`] so in-flight work winds down cooperatively, partial
//! results are flushed, journals stay consistent), and a **second**
//! signal forces the process out immediately with the conventional
//! `128 + SIGINT` exit status.
//!
//! The handler body is async-signal-safe by construction: it performs
//! two atomic operations (bump a counter, store the cancel flag) and —
//! on the second signal only — calls `_exit`. No allocation, no locks,
//! no formatting. The token to fire is parked in a process-global
//! `OnceLock` *before* the handler is installed, so the handler never
//! races its own setup.
//!
//! Implemented directly over the C `signal(2)` entry point (the libc
//! the Rust runtime already links) — this crate stays dependency-free.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use crate::cancel::CancelToken;

/// Signals observed since [`install_drain_signals`]. Exposed so a drain
/// loop can distinguish "user asked once, keep draining" from "never
/// asked".
static SIGNAL_COUNT: AtomicU32 = AtomicU32::new(0);

/// The token the first signal fires. Set exactly once, before the
/// handler is installed.
static DRAIN_TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        pub fn _exit(status: i32) -> !;
    }

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
}

/// The actual handler: drain on the first signal, die on the second.
#[cfg(unix)]
extern "C" fn on_drain_signal(_signum: i32) {
    // `fetch_add` and `CancelToken::cancel` (an atomic store) are both
    // async-signal-safe; nothing below allocates or locks.
    let seen = SIGNAL_COUNT.fetch_add(1, Ordering::AcqRel);
    if seen == 0 {
        if let Some(token) = DRAIN_TOKEN.get() {
            token.cancel();
        }
    } else {
        unsafe { ffi::_exit(130) };
    }
}

/// Installs the two-stage SIGINT/SIGTERM drain handler: the first
/// signal cancels `token` (and every [`CancelToken::child`] derived
/// from it), the second terminates the process with exit status 130.
///
/// Returns `false` without touching signal dispositions when a handler
/// was already installed for a *different* token (the handler is
/// process-global and installs at most once), or on non-Unix targets.
pub fn install_drain_signals(token: &CancelToken) -> bool {
    if DRAIN_TOKEN.set(token.clone()).is_err() {
        return false;
    }
    #[cfg(unix)]
    unsafe {
        ffi::signal(ffi::SIGINT, on_drain_signal);
        ffi::signal(ffi::SIGTERM, on_drain_signal);
    }
    cfg!(unix)
}

/// How many drain signals have been observed since install (0 = none).
pub fn drain_signal_count() -> u32 {
    SIGNAL_COUNT.load(Ordering::Acquire)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn first_signal_cancels_the_installed_token() {
        // One process-global handler, so this is the single test that
        // raises; it deliberately raises only once (a second raise
        // would _exit the test runner).
        let token = CancelToken::new();
        assert!(install_drain_signals(&token), "first install wins");
        // A second install (different token) is refused.
        assert!(!install_drain_signals(&CancelToken::new()));
        assert!(!token.is_cancelled());
        unsafe { raise(ffi::SIGINT) };
        // `raise` returns after the handler ran on this thread.
        assert!(token.is_cancelled(), "drain token fired");
        assert!(!token.was_escalated(), "a drain is not a hang");
        assert_eq!(drain_signal_count(), 1);
        // Children derived before or after the signal observe it.
        assert!(token.child().is_cancelled());
    }
}
