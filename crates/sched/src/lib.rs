//! # octo-sched — batch-verification scheduling substrate.
//!
//! The paper's §VII use case is a developer triaging *many* propagated
//! clones of one CVE: one vulnerable source `S` fans out to dozens of
//! targets `T`. Verifying such a batch well needs three things the
//! pipeline itself does not provide, and this crate supplies all three as
//! a dependency-free bottom layer of the workspace:
//!
//! * [`run_jobs`] — a **work-stealing scheduler**: per-worker deques with
//!   steal-half balancing instead of static chunking, so one slow
//!   symbolic-execution job no longer stalls every job that was chunked
//!   behind it. Results are returned in submission order regardless of
//!   worker count or steal interleavings.
//! * [`ArtifactCache`] — a **content-addressed artifact cache** with
//!   single-flight semantics: the first worker to need an artifact
//!   computes it exactly once, concurrent requesters block and then hit.
//!   Hit/miss/byte statistics are tracked for reporting. Keys are plain
//!   `u64` content hashes; [`KeyHasher`] provides the FNV-1a derivation.
//! * [`CancelToken`] — **cooperative cancellation** with optional
//!   deadlines. Long-running engines poll the token and wind down instead
//!   of stalling the batch. The token doubles as a per-job **heartbeat**
//!   channel, which the [`Watchdog`] monitor thread reads to escalate a
//!   wedged job (cancel it with the escalation mark set) before any
//!   global deadline would.
//!
//! [`run_jobs`] is additionally **panic-isolated**: a job whose closure
//! unwinds surfaces as `Err(`[`JobPanic`]`)` in its result slot while the
//! batch keeps running, and the [`ArtifactCache`] hit path carries an
//! `octo-faults` injection hook so cache-miss storms are reproducible in
//! tests (see `docs/robustness.md`).
//!
//! A structured [`Event`] stream (job started / phase finished / cache
//! hit / job done, with per-phase wall times) makes batch progress
//! observable either as human log lines or as JSON lines; any
//! `Fn(Event) + Sync` closure is an [`EventSink`], and [`EventLog`]
//! collects events for later inspection.
#![warn(missing_docs)]

pub mod cache;
pub mod cancel;
pub mod events;
pub mod scheduler;
pub mod signals;
pub mod watchdog;

pub use cache::{ArtifactCache, CacheStats, KeyHasher};
pub use cancel::CancelToken;
pub use events::{Event, EventClock, EventKind, EventLog, EventSink, FanoutSink, NullSink};
pub use scheduler::{run_jobs, JobPanic, SchedStats};
pub use signals::{drain_signal_count, install_drain_signals};
pub use watchdog::{WatchGuard, Watchdog, WatchdogConfig};
