//! A content-addressed artifact cache with single-flight semantics.
//!
//! Batch verification repeats work whenever jobs share inputs: N targets
//! cloned from one vulnerable source `S` all need the same preprocessing
//! and P1 crash-primitive extraction. [`ArtifactCache`] memoizes such
//! artifacts under a content hash of *everything the computation depends
//! on* — callers derive the key with [`KeyHasher`] from the input bytes
//! and configuration, so any change to any ingredient produces a
//! different key and an honest miss.
//!
//! The cache is **single-flight**: when several workers request the same
//! missing key concurrently, exactly one runs the compute closure; the
//! others block on the per-key slot and then score a hit. This is what
//! makes "P1 ran exactly once for this `(S, poc)` group" a guarantee
//! rather than a fast-path heuristic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a (64-bit) content hasher for cache-key derivation.
///
/// Deliberately not `std::hash::Hasher`: keys must be stable across runs
/// and platforms (they appear in reports and golden files), which rules
/// out `RandomState` and friends.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> KeyHasher {
        KeyHasher::new()
    }
}

impl KeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> KeyHasher {
        KeyHasher {
            state: Self::OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut KeyHasher {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Feeds a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_field(&mut self, bytes: &[u8]) -> &mut KeyHasher {
        self.write_u64(bytes.len() as u64);
        self.write(bytes)
    }

    /// Feeds one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut KeyHasher {
        self.write(&v.to_le_bytes())
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A point-in-time snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a stored artifact.
    pub hits: u64,
    /// Requests that had to run the compute closure.
    pub misses: u64,
    /// Distinct artifacts currently stored.
    pub entries: u64,
    /// Total approximate bytes of stored artifacts, as reported by the
    /// compute closures.
    pub bytes: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One per-key slot: `None` until the first (and only) compute fills it.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// A thread-safe content-addressed memo table.
///
/// Values are stored behind [`Arc`] and returned by handle; the cache
/// never evicts (batch lifetimes are short and bounded by the job set).
pub struct ArtifactCache<V> {
    map: Mutex<HashMap<u64, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl<V> Default for ArtifactCache<V> {
    fn default() -> ArtifactCache<V> {
        ArtifactCache::new()
    }
}

impl<V> ArtifactCache<V> {
    /// An empty cache.
    pub fn new() -> ArtifactCache<V> {
        ArtifactCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Returns the artifact stored under `key`, computing it on first
    /// request. `compute` returns the value and its approximate size in
    /// bytes (for the [`CacheStats::bytes`] gauge).
    ///
    /// The boolean is `true` on a hit. Concurrent misses on one key are
    /// serialised: exactly one caller computes, the rest hit.
    pub fn get_or_compute<F>(&self, key: u64, compute: F) -> (Arc<V>, bool)
    where
        F: FnOnce() -> (V, u64),
    {
        let slot: Slot<V> = {
            let mut map = self.map.lock().expect("cache map poisoned");
            map.entry(key).or_default().clone()
        };
        // The map lock is released before the slot lock is taken, so a
        // slow compute on one key never blocks lookups of other keys.
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(v) = guard.as_ref() {
            // Fault-injection site: an active fault plan can force the
            // hit path to behave like a miss (discard and recompute), to
            // exercise callers' miss paths under a plan-controlled
            // schedule. Inert without an installed fault context.
            if !octo_faults::should_inject(octo_faults::FaultSite::CacheMiss) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(v), true);
            }
            guard.take();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (value, size) = compute();
        let value = Arc::new(value);
        *guard = Some(Arc::clone(&value));
        self.bytes.fetch_add(size, Ordering::Relaxed);
        (value, false)
    }

    /// The artifact under `key`, if already computed.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let slot = self
            .map
            .lock()
            .expect("cache map poisoned")
            .get(&key)?
            .clone();
        let found = slot.lock().expect("cache slot poisoned").clone();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache map poisoned").len() as u64,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl<V> std::fmt::Debug for ArtifactCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn key_hasher_is_stable_and_field_sensitive() {
        let mut a = KeyHasher::new();
        a.write_field(b"ab").write_field(b"c");
        let mut b = KeyHasher::new();
        b.write_field(b"a").write_field(b"bc");
        assert_ne!(a.finish(), b.finish());
        // Stable across runs: FNV-1a of "a" is a fixed constant.
        let mut c = KeyHasher::new();
        c.write(b"a");
        assert_eq!(c.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn second_request_hits_and_skips_compute() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let (v1, hit1) = cache.get_or_compute(7, || (41, 4));
        let (v2, hit2) = cache.get_or_compute(7, || panic!("must not recompute"));
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(*v1, 41);
        assert_eq!(*v2, 41);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 4);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unconsulted_cache_hit_ratio_is_zero_not_nan() {
        // Regression guard for the metrics exports: an empty batch
        // renders CacheStats without ever consulting the cache, and the
        // ratio must stay a plain 0.0 (no 0/0 NaN leaking into JSON).
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.hit_ratio(), 0.0);
        assert!(stats.hit_ratio().is_finite());
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let (a, _) = cache.get_or_compute(1, || (10, 1));
        let (b, _) = cache.get_or_compute(2, || (20, 1));
        assert_eq!((*a, *b), (10, 20));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let computed = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache.get_or_compute(99, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        (123, 8)
                    });
                    assert_eq!(*v, 123);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single-flight");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn injected_miss_forces_recompute_and_counts_as_miss() {
        use std::sync::Arc;

        // The hit path consults the fault plan once per *stored-value
        // lookup*, so occurrence 1 is the first would-be hit.
        let plan = Arc::new(octo_faults::FaultPlan::new(0).nth(
            octo_faults::FaultSite::CacheMiss,
            None,
            1,
        ));
        let ctx = Arc::new(octo_faults::JobFaults::new(&plan, 0));
        let _g = octo_faults::install(&ctx);

        let cache: ArtifactCache<u32> = ArtifactCache::new();
        let computed = AtomicU32::new(0);
        let compute = || {
            computed.fetch_add(1, Ordering::SeqCst);
            (55, 4)
        };
        let (_, hit1) = cache.get_or_compute(3, compute); // genuine miss
        let (v2, hit2) = cache.get_or_compute(3, compute); // injected miss
        let (v3, hit3) = cache.get_or_compute(3, compute); // clean hit
        assert_eq!((hit1, hit2, hit3), (false, false, true));
        assert_eq!((*v2, *v3), (55, 55));
        assert_eq!(
            computed.load(Ordering::SeqCst),
            2,
            "injected miss must recompute"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn get_without_compute() {
        let cache: ArtifactCache<u32> = ArtifactCache::new();
        assert!(cache.get(5).is_none());
        cache.get_or_compute(5, || (1, 1));
        assert_eq!(*cache.get(5).unwrap(), 1);
    }
}
