//! Cooperative cancellation tokens with optional deadlines.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between the
//! scheduler (or any supervisor) and a long-running engine. The engine
//! polls [`CancelToken::is_cancelled`] at a coarse cadence and winds down
//! when it fires — either because a supervisor called
//! [`CancelToken::cancel`], or because the token's deadline passed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag plus an optional deadline.
///
/// Clones share the flag: cancelling any clone cancels all of them. The
/// deadline is fixed at construction and also observed by every clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally fires once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Requests cancellation (on this token and every clone of it).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired — explicitly or by deadline.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time left until the deadline (`None` when no deadline is set).
    /// Returns [`Duration::ZERO`] once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_immediately_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_is_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3500));
    }
}
