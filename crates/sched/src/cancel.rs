//! Cooperative cancellation tokens with optional deadlines.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between the
//! scheduler (or any supervisor) and a long-running engine. The engine
//! polls [`CancelToken::is_cancelled`] at a coarse cadence and winds down
//! when it fires — either because a supervisor called
//! [`CancelToken::cancel`], or because the token's deadline passed.
//!
//! The token also carries a **heartbeat counter**: engines call
//! [`CancelToken::beat`] at the same coarse cadence as the cancel poll,
//! and the [`crate::watchdog::Watchdog`] reads [`CancelToken::beats`] to
//! tell a slow-but-alive job from a wedged one. A watchdog that gives up
//! on a silent job calls [`CancelToken::escalate`], which cancels the
//! token *and* marks it so the engine's owner can report the failure as a
//! hang rather than an ordinary deadline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag plus an optional deadline.
///
/// Clones share the flag: cancelling any clone cancels all of them. The
/// deadline is fixed at construction and also observed by every clone;
/// the heartbeat counter and escalation mark are likewise shared.
///
/// A token can also be **derived** from a parent via
/// [`CancelToken::child`]: the child observes the parent's cancellation
/// (a drained batch cancels every in-flight attempt) but cancelling or
/// escalating the child never propagates upward (one hung job's watchdog
/// escalation must not kill its siblings).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    escalated: Arc<AtomicBool>,
    beats: Arc<AtomicU64>,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally fires once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            deadline: Some(Instant::now() + budget),
            ..CancelToken::default()
        }
    }

    /// A fresh token that also fires when `self` (or any of `self`'s
    /// ancestors) fires. The link is one-way: cancelling or escalating
    /// the child leaves the parent untouched, and the child's heartbeat
    /// and escalation mark are its own.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            parent: Some(Arc::new(self.clone())),
            ..CancelToken::default()
        }
    }

    /// A [`CancelToken::child`] that additionally fires once `budget`
    /// has elapsed from now.
    pub fn child_with_deadline(&self, budget: Duration) -> CancelToken {
        CancelToken {
            deadline: Some(Instant::now() + budget),
            parent: Some(Arc::new(self.clone())),
            ..CancelToken::default()
        }
    }

    /// Records one unit of engine progress. Cheap enough to call at the
    /// cancel-poll cadence.
    pub fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Heartbeats recorded so far (shared by every clone).
    pub fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    /// Cancels the token *and* marks the cancellation as a watchdog
    /// escalation, so the owner reports a hang instead of a deadline.
    pub fn escalate(&self) {
        self.escalated.store(true, Ordering::Release);
        self.cancel();
    }

    /// Whether the cancellation came from [`CancelToken::escalate`].
    pub fn was_escalated(&self) -> bool {
        self.escalated.load(Ordering::Acquire)
    }

    /// Requests cancellation (on this token and every clone of it).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired — explicitly, by deadline, or because
    /// a parent token fired.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }

    /// Time left until the deadline (`None` when no deadline is set).
    /// Returns [`Duration::ZERO`] once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.was_escalated());
        assert_eq!(t.beats(), 0);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn beats_and_escalation_are_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.beat();
        t.beat();
        assert_eq!(clone.beats(), 2);
        clone.escalate();
        assert!(t.is_cancelled());
        assert!(t.was_escalated());
    }

    #[test]
    fn plain_cancel_is_not_an_escalation() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.was_escalated());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_immediately_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_is_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn parent_cancellation_reaches_the_child() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        // The child observes the parent's flag, not its escalation mark.
        assert!(!child.was_escalated());
    }

    #[test]
    fn child_cancellation_does_not_propagate_up() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.escalate();
        assert!(child.is_cancelled());
        assert!(child.was_escalated());
        assert!(!parent.is_cancelled());
        assert!(!parent.was_escalated());
    }

    #[test]
    fn child_deadline_is_independent_of_the_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::ZERO);
        assert!(child.is_cancelled(), "child deadline expired");
        assert!(!parent.is_cancelled());
        let live = parent.child_with_deadline(Duration::from_secs(3600));
        assert!(!live.is_cancelled());
        assert!(live.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn grandparent_cancellation_reaches_grandchildren() {
        let root = CancelToken::new();
        let mid = root.child();
        let leaf = mid.child();
        root.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn child_heartbeats_are_its_own() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.beat();
        assert_eq!(child.beats(), 1);
        assert_eq!(parent.beats(), 0);
    }
}
