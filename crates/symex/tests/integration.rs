//! Integration tests for the symbolic executors on richer program shapes.

use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_ir::parse::parse_program;
use octo_poc::{Bunch, CrashPrimitives};
use octo_symex::{
    DirectedConfig, DirectedEngine, DirectedOutcome, NaiveConfig, NaiveExplorer, NaiveOutcome,
};

/// One recorded `ep` entry: `(poc bytes consumed, argument values)`.
type EpEntry<'a> = (&'a [(u32, u8)], &'a [u64]);

fn primitives(entries: &[EpEntry<'_>]) -> CrashPrimitives {
    let mut q = CrashPrimitives::new();
    for (i, (bytes, args)) in entries.iter().enumerate() {
        let mut b = Bunch::new(i as u32 + 1);
        for (o, v) in bytes.iter() {
            b.add(*o, *v);
        }
        q.push(b, args.to_vec());
    }
    q
}

fn run_directed(
    src: &str,
    ep_name: &str,
    q: &CrashPrimitives,
    config: DirectedConfig,
) -> DirectedOutcome {
    let p = parse_program(src).unwrap();
    let ep = p.func_by_name(ep_name).unwrap();
    let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
    let map = DistanceMap::compute(&p, &cfg, ep);
    let engine = DirectedEngine::new(&p, ep, &map, q, config);
    engine.run().0
}

/// A program that must iterate a skip-loop a *specific* number of times
/// before ep: `count` records of 1 byte each precede the call.
fn skip_n_program(n: u8) -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    i = 0
    jmp loop
loop:
    done = uge i, {n}
    br done, after, body
body:
    junk = getc fd
    i = add i, 1
    jmp loop
after:
    call shared(fd)
    halt 0
}}
func shared(fd) {{
entry:
    v = getc fd
    ret
}}
"#
    )
}

#[test]
fn theta_bounds_loop_unrolling() {
    // 10 concrete iterations: fine with the default θ=120; with θ=4 the
    // loop state exceeds its budget and the run fails (the paper's
    // declared §III-D failure mode).
    let q = primitives(&[(&[(10, 0x7F)], &[3])]);
    let src = skip_n_program(10);

    let ok = run_directed(
        &src,
        "shared",
        &q,
        DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        },
    );
    assert!(ok.generated(), "{ok:?}");

    // NOTE: the loop here is concrete (the bound is a constant), so the
    // executor just runs it; a θ failure needs a *symbolic* loop bound.
    let src_sym = r#"
func main() {
entry:
    fd = open
    nbuf = alloc 1
    n0 = read fd, nbuf, 1
    n = load.1 nbuf
    i = 0
    jmp loop
loop:
    done = uge i, n
    br done, after, body
body:
    junk = getc fd
    i = add i, 1
    jmp loop
after:
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
    let ok = run_directed(
        src_sym,
        "shared",
        &q,
        DirectedConfig {
            file_len: 300,
            theta: 120,
            ..DirectedConfig::default()
        },
    );
    assert!(ok.generated(), "symbolic loop with generous θ: {ok:?}");
}

#[test]
fn extra_ep_entries_beyond_bunches_are_tolerated() {
    // T enters ep twice but S recorded only one bunch: the second entry
    // carries no constraints and the run still completes.
    let src = r#"
func main() {
entry:
    fd = open
    call shared(fd)
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
    let q = primitives(&[(&[(0, 0xAA)], &[3])]);
    let outcome = run_directed(
        src,
        "shared",
        &q,
        DirectedConfig {
            file_len: 8,
            ..DirectedConfig::default()
        },
    );
    // One bunch → break at the first entry.
    let DirectedOutcome::PocGenerated { poc, entries, .. } = outcome else {
        panic!("expected generation");
    };
    assert_eq!(entries, 1);
    assert_eq!(poc.byte(0), 0xAA);
}

#[test]
fn naive_respects_custom_budgets() {
    // A modest fork chain with a tight state cap → MemError via max_states.
    let mut src = String::from("func main() {\nentry:\n fd = open\n jmp b0\n");
    for i in 0..8 {
        src.push_str(&format!(
            "b{i}:\n x{i} = getc fd\n c{i} = eq x{i}, {i}\n br c{i}, t{i}, f{i}\nt{i}:\n jmp b{}\nf{i}:\n jmp b{}\n",
            i + 1,
            i + 1
        ));
    }
    src.push_str("b8:\n call target()\n halt 0\n}\nfunc target() {\nentry:\n trap 1\n}\n");
    let p = parse_program(&src).unwrap();
    let t = p.func_by_name("target").unwrap();
    let cfg = NaiveConfig {
        mem_budget: u64::MAX,
        step_budget: 10_000_000,
        max_states: 16,
    };
    let (outcome, stats) = NaiveExplorer::new(&p, 16, t).with_config(cfg).run();
    assert!(matches!(outcome, NaiveOutcome::MemError), "{outcome:?}");
    assert!(stats.peak_states >= 16);
}

#[test]
fn symbolic_seek_target_is_concretized() {
    // The seek position is derived from an input byte. Concretisation
    // pins the byte to its model value (0 with an empty path condition),
    // so the seek lands at offset 0 and ep consumes byte 0 — which is the
    // *same byte* that encodes the offset.
    let src = r#"
func main() {
entry:
    fd = open
    off = getc fd
    seek fd, off
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
    // Case 1: the bunch agrees with the concretised value (0) — a PoC is
    // generated and replays cleanly.
    let q_ok = primitives(&[(&[(4, 0x00)], &[3])]);
    let outcome = run_directed(
        src,
        "shared",
        &q_ok,
        DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        },
    );
    let DirectedOutcome::PocGenerated { poc, .. } = outcome else {
        panic!("expected generation: {outcome:?}");
    };
    let p = parse_program(src).unwrap();
    let out = octo_vm::Vm::new(&p, poc.bytes()).run();
    assert!(matches!(out, octo_vm::RunOutcome::Exit(0)), "{out:?}");

    // Case 2: the bunch demands 0x5A at the very byte the concretised
    // seek pinned to 0 — the conflict is detected as unsatisfiable
    // instead of silently producing a broken PoC.
    let q_conflict = primitives(&[(&[(4, 0x5A)], &[3])]);
    let outcome = run_directed(
        src,
        "shared",
        &q_conflict,
        DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        },
    );
    assert!(matches!(outcome, DirectedOutcome::Unsat), "{outcome:?}");
}

#[test]
fn crash_before_ep_forces_other_path() {
    // The shortest path to ep crosses a null-deref trap when byte0 == 0;
    // the engine must backtrack to the feasible byte0 != 0 side.
    let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 0
    br c, crashy, safe
crashy:
    v = load.4 0
    call shared(fd)
    halt 0
safe:
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
    let q = primitives(&[(&[(1, 0x77)], &[3])]);
    let outcome = run_directed(
        src,
        "shared",
        &q,
        DirectedConfig {
            file_len: 8,
            ..DirectedConfig::default()
        },
    );
    let DirectedOutcome::PocGenerated { poc, .. } = outcome else {
        panic!("expected generation: {outcome:?}");
    };
    assert_ne!(poc.byte(0), 0, "must avoid the crashing pre-ep path");
    assert_eq!(poc.byte(1), 0x77);
}

#[test]
fn loop_acceleration_verifies_beyond_theta() {
    // ℓ copies `size` bytes; the crash needs size=200 iterations — beyond
    // θ=120. Without acceleration the ModelFollow loop state dies at θ;
    // with acceleration the copy loop's forced branches are free.
    let src = r#"
func main() {
entry:
    fd = open
    m = getc fd
    ok = eq m, 0x4D
    br ok, go, rej
go:
    call shared(fd)
    call shared(fd)
    halt 0
rej:
    halt 1
}
func shared(fd) {
entry:
    size = getc fd
    buf = alloc 255
    i = 0
    jmp copy
copy:
    done = uge i, size
    br done, fin, body
body:
    v = getc fd
    p = add buf, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    ret size
}
"#;
    // S's bunch: two entries — the 200-byte record then a second ep entry
    // whose placement requires surviving the first copy loop.
    let mut bytes: Vec<(u32, u8)> = vec![(1, 200)];
    for j in 0..200u32 {
        bytes.push((2 + j, (j % 251) as u8));
    }
    // Second entry: a 1-byte record (size=1, one payload byte).
    let q = primitives(&[(&bytes, &[3]), (&[(202, 1), (203, 9)], &[3])]);

    let base = DirectedConfig {
        file_len: 260,
        theta: 120,
        ..DirectedConfig::default()
    };
    let plain = run_directed(src, "shared", &q, base);
    assert!(
        !plain.generated(),
        "θ=120 must not cover a 200-iteration copy loop: {plain:?}"
    );

    let accel = DirectedConfig {
        loop_acceleration: true,
        ..base
    };
    let outcome = run_directed(src, "shared", &q, accel);
    let DirectedOutcome::PocGenerated { poc, entries, .. } = outcome else {
        panic!("acceleration must verify: {outcome:?}");
    };
    assert_eq!(entries, 2);
    assert_eq!(poc.byte(1), 200);
    assert_eq!(poc.byte(202), 1);
    // The generated PoC replays: the program exits cleanly (no planted
    // crash here — the test isolates loop handling, not the crash).
    let p = octo_ir::parse::parse_program(src).unwrap();
    let out = octo_vm::Vm::new(&p, poc.bytes()).run();
    assert!(matches!(out, octo_vm::RunOutcome::Exit(0)), "{out:?}");
}
