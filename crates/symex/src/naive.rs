//! Naive (undirected) symbolic exploration — the Table IV baseline.
//!
//! Forks at every symbolic branch and explores breadth-first, with only an
//! address of the target to stop at — exactly how the paper ran angr's
//! default exploration ("the naive symbolic execution proceeded with only
//! an address of the vulnerable location"). The goal is a *crashing state
//! inside the target function* — the vulnerable location — not merely the
//! function's entry, which is usually trivial to reach. Every live state's
//! memory is accounted; exceeding [`NaiveConfig::mem_budget`] aborts with
//! [`NaiveOutcome::MemError`], reproducing angr's `MemoryError` on MuPDF
//! and gif2png in Table IV.

use std::collections::VecDeque;
use std::time::Instant;

use octo_ir::{FuncId, Program};

use crate::exec::{StepEvent, SymExecutor};
use crate::state::SymState;

/// Budgets for a naive exploration run.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Simulated memory budget in bytes across all live states.
    pub mem_budget: u64,
    /// Total instruction budget across all states.
    pub step_budget: u64,
    /// Maximum live states (secondary guard).
    pub max_states: usize,
}

impl Default for NaiveConfig {
    fn default() -> NaiveConfig {
        NaiveConfig {
            // 512 MiB of simulated state memory — calibrated to the
            // paper's 32 GB testbed scaled by our much smaller programs.
            mem_budget: 512 << 20,
            step_budget: 5_000_000,
            max_states: 100_000,
        }
    }
}

/// Statistics of a naive run.
#[derive(Debug, Clone, Default)]
pub struct NaiveStats {
    /// Wall-clock seconds spent.
    pub wall_seconds: f64,
    /// Peak simulated memory across live states (bytes).
    pub peak_mem_bytes: u64,
    /// Total instructions stepped.
    pub total_steps: u64,
    /// States forked over the whole run.
    pub states_created: u64,
    /// Peak simultaneous live states.
    pub peak_states: usize,
}

/// Result of a naive exploration.
#[derive(Debug, Clone)]
pub enum NaiveOutcome {
    /// A state crashed inside the target function — the vulnerable
    /// location is reachable; the state's path condition describes a
    /// triggering input.
    ReachedTarget {
        /// The crashing state (with its path condition).
        state: Box<SymState>,
    },
    /// The memory budget was exhausted — the path-explosion failure mode.
    MemError,
    /// The step/state budgets ran out before reaching the target.
    BudgetExhausted,
    /// Every path terminated without reaching the target.
    Exhausted,
}

/// Breadth-first explorer.
#[derive(Debug)]
pub struct NaiveExplorer<'p> {
    executor: SymExecutor<'p>,
    target: FuncId,
    config: NaiveConfig,
}

impl<'p> NaiveExplorer<'p> {
    /// Creates an explorer over `program` with a symbolic file of
    /// `file_len` bytes, searching for an entry into `target`.
    pub fn new(program: &'p Program, file_len: u64, target: FuncId) -> NaiveExplorer<'p> {
        NaiveExplorer {
            executor: SymExecutor::new(program, file_len).with_ep(target),
            target,
            config: NaiveConfig::default(),
        }
    }

    /// Replaces the default budgets.
    pub fn with_config(mut self, config: NaiveConfig) -> NaiveExplorer<'p> {
        self.config = config;
        self
    }

    /// Runs the exploration to a verdict, returning statistics alongside.
    pub fn run(&self) -> (NaiveOutcome, NaiveStats) {
        let start = Instant::now();
        let mut stats = NaiveStats::default();
        // The queue carries each state's memory estimate so the running
        // total is maintained incrementally (computing it from scratch
        // after every fork would be quadratic in the state count).
        let mut queue: VecDeque<(SymState, u64)> = VecDeque::new();
        let initial = SymState::initial(self.executor.program());
        let mut queued_mem: u64 = initial.approx_bytes();
        queue.push_back((initial, queued_mem));
        stats.states_created = 1;
        let mut total_steps = 0u64;

        let outcome = 'outer: loop {
            let Some((mut state, mem_estimate)) = queue.pop_front() else {
                break NaiveOutcome::Exhausted;
            };
            queued_mem = queued_mem.saturating_sub(mem_estimate);
            loop {
                if total_steps >= self.config.step_budget {
                    break 'outer NaiveOutcome::BudgetExhausted;
                }
                total_steps += 1;
                match self.executor.step(&mut state) {
                    StepEvent::Continue | StepEvent::EnteredEp { .. } => {}
                    StepEvent::Crashed(_) if state.frames.iter().any(|f| f.func == self.target) => {
                        // Crash at the vulnerable location.
                        stats.total_steps = total_steps;
                        stats.wall_seconds = start.elapsed().as_secs_f64();
                        stats.peak_mem_bytes =
                            stats.peak_mem_bytes.max(queued_mem + state.approx_bytes());
                        return (
                            NaiveOutcome::ReachedTarget {
                                state: Box::new(state),
                            },
                            stats,
                        );
                    }
                    StepEvent::Exited | StepEvent::Crashed(_) | StepEvent::Dead(_) => {
                        break; // path over; take next from queue
                    }
                    StepEvent::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        // Fork: enqueue both feasible directions.
                        let mut then_state = state.clone();
                        self.executor
                            .take_branch(&mut then_state, &cond, true, then_bb, else_bb);
                        let mut else_state = state;
                        self.executor
                            .take_branch(&mut else_state, &cond, false, then_bb, else_bb);
                        for s in [then_state, else_state] {
                            if s.constraints.quick_feasible() {
                                let m = s.approx_bytes();
                                queued_mem += m;
                                queue.push_back((s, m));
                                stats.states_created += 1;
                            }
                        }
                        break;
                    }
                    StepEvent::Switch {
                        scrut,
                        cases,
                        default,
                    } => {
                        let mut choices: Vec<Option<u64>> =
                            cases.iter().map(|(v, _)| Some(*v)).collect();
                        choices.push(None);
                        for choice in choices {
                            let mut s = state.clone();
                            self.executor
                                .take_switch(&mut s, &scrut, &cases, default, choice);
                            if s.constraints.quick_feasible() {
                                let m = s.approx_bytes();
                                queued_mem += m;
                                queue.push_back((s, m));
                                stats.states_created += 1;
                            }
                        }
                        break;
                    }
                }
            }
            // Accounting after each path segment.
            stats.peak_states = stats.peak_states.max(queue.len());
            stats.peak_mem_bytes = stats.peak_mem_bytes.max(queued_mem);
            if queued_mem > self.config.mem_budget {
                break NaiveOutcome::MemError;
            }
            if queue.len() > self.config.max_states {
                break NaiveOutcome::MemError;
            }
        };
        stats.total_steps = total_steps;
        stats.wall_seconds = start.elapsed().as_secs_f64();
        (outcome, stats)
    }
}

/// Naive exploration over a statically pruned copy of `program`.
///
/// Runs `octo-lint`'s CFG-prune transform (constant-decided branches are
/// folded, statically unreachable blocks neutralised) and explores the
/// result. The transform is semantics-preserving for every executable
/// path, so the verdict is the same as exploring `program` directly — but
/// states are never forked into branches a constant already decides, which
/// shrinks the frontier on programs with configuration-style dead code.
pub fn explore_pruned(
    program: &Program,
    file_len: u64,
    target: FuncId,
    config: NaiveConfig,
) -> (NaiveOutcome, NaiveStats) {
    let (pruned, _) = octo_lint::prune_program(program);
    let (outcome, stats) = NaiveExplorer::new(&pruned, file_len, target)
        .with_config(config)
        .run();
    // `ReachedTarget` carries a state borrowing nothing from `pruned` —
    // `SymState` owns its data — so returning it is sound; the path
    // condition speaks only about input bytes, which the prune preserves.
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    #[test]
    fn finds_shallow_target() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 0x42
    br c, go, skip
go:
    call target()
    halt 0
skip:
    halt 1
}
func target() {
entry:
    trap 1
}
"#;
        let p = parse_program(src).unwrap();
        let t = p.func_by_name("target").unwrap();
        let (outcome, stats) = NaiveExplorer::new(&p, 4, t).run();
        match outcome {
            NaiveOutcome::ReachedTarget { mut state } => {
                let m = state.model().expect("sat");
                assert_eq!(m.byte(0), 0x42);
            }
            other => panic!("expected reach, got {other:?}"),
        }
        assert!(stats.states_created >= 2);
    }

    #[test]
    fn exhausts_when_target_unreachable() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 1
    br c, a, z
a:
    halt 0
z:
    halt 1
}
func target() {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let t = p.func_by_name("target").unwrap();
        let (outcome, _) = NaiveExplorer::new(&p, 2, t).run();
        assert!(matches!(outcome, NaiveOutcome::Exhausted));
    }

    #[test]
    fn pruned_exploration_is_equivalent_and_no_more_work() {
        // `mode` is a compile-time constant, so the `slow` arm (and the
        // branch bomb inside it) is statically dead; the prune folds the
        // branch and neutralises the bomb. Exploration of the pruned
        // program must reach the same verdict with the same model, doing
        // no more work than the unpruned run.
        let src = r#"
func main() {
entry:
    fd = open
    mode = 1
    c = eq mode, 1
    br c, fast, slow
fast:
    b = getc fd
    d = eq b, 0x42
    br d, go, skip
go:
    call target()
    halt 0
skip:
    halt 1
slow:
    x = getc fd
    y = getc fd
    cx = eq x, 1
    br cx, s1, s2
s1:
    cy = eq y, 2
    br cy, go, skip
s2:
    jmp skip
}
func target() {
entry:
    trap 1
}
"#;
        let p = parse_program(src).unwrap();
        let t = p.func_by_name("target").unwrap();
        let config = NaiveConfig::default();
        let (base_out, base_stats) = NaiveExplorer::new(&p, 4, t).with_config(config).run();
        let (pruned_out, pruned_stats) = explore_pruned(&p, 4, t, config);
        let model_byte = |o: NaiveOutcome| match o {
            NaiveOutcome::ReachedTarget { mut state } => state.model().expect("sat").byte(0),
            other => panic!("expected reach, got {other:?}"),
        };
        assert_eq!(model_byte(base_out), 0x42);
        assert_eq!(model_byte(pruned_out), 0x42);
        assert!(
            pruned_stats.states_created <= base_stats.states_created,
            "prune created more states: {} > {}",
            pruned_stats.states_created,
            base_stats.states_created
        );
        assert!(pruned_stats.total_steps <= base_stats.total_steps);
    }

    #[test]
    fn branch_bomb_triggers_mem_error() {
        // 24 sequential symbolic branches → up to 2^24 states; the memory
        // budget must trip long before that.
        let mut src = String::from("func main() {\nentry:\n fd = open\n jmp b0\n");
        for i in 0..24 {
            src.push_str(&format!(
                "b{i}:\n x{i} = getc fd\n c{i} = eq x{i}, {i}\n br c{i}, t{i}, f{i}\nt{i}:\n jmp b{}\nf{i}:\n jmp b{}\n",
                i + 1,
                i + 1
            ));
        }
        src.push_str("b24:\n call target()\n halt 0\n}\nfunc target() {\nentry:\n trap 1\n}\n");
        let p = parse_program(&src).unwrap();
        let t = p.func_by_name("target").unwrap();
        let cfg = NaiveConfig {
            mem_budget: 2 << 20, // tiny budget: 2 MiB
            step_budget: 10_000_000,
            max_states: 1_000_000,
        };
        let (outcome, stats) = NaiveExplorer::new(&p, 32, t).with_config(cfg).run();
        assert!(
            matches!(outcome, NaiveOutcome::MemError),
            "expected MemError, got {outcome:?} ({stats:?})"
        );
        assert!(stats.peak_mem_bytes > 2 << 20);
    }
}
