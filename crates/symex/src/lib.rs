//! # octo-symex — symbolic execution of MicroIR (the angr substitute).
//!
//! OctoPoCs uses angr for phase P2 (guiding-input generation) and P3
//! (combining), §IV-B. This crate reimplements the needed slice of a
//! symbolic execution engine over [`octo_ir`] programs:
//!
//! * **Symbolic input file.** "Initially, the input file given to T is a
//!   file in which all bytes are designated as symbols" — the state's file
//!   model hands out [`octo_solver::Expr::Byte`] terms; the *file position
//!   indicator* stays concrete, because P3 places bunches at the concrete
//!   position where `T` enters `ℓ`.
//! * **Concolic concretisation.** Values that must be concrete to make
//!   progress (memory addresses, read lengths, seek targets, indirect
//!   branch targets) are concretised against the current path condition
//!   and pinned with an equality constraint, the standard angr practice.
//! * **Two exploration strategies.**
//!   [`naive::NaiveExplorer`] forks at every symbolic branch (breadth
//!   first) and accounts for state memory; exceeding the memory budget
//!   reproduces angr's `MemoryError` path explosion from Table IV.
//!   [`directed::DirectedEngine`] implements the paper's directed symbolic
//!   execution: a backward-path [`octo_cfg::DistanceMap`] chooses branch
//!   directions, loop states are bounded by θ, and the four state kinds —
//!   *active*, *loop*, *loop-dead*, *program-dead* — map onto the verdicts
//!   of §III-B. The directed engine also performs P3: at every `ep` entry
//!   it asserts the corresponding bunch at the current file position and
//!   replays the `ep` arguments recorded in `S`, and after the last entry
//!   it solves everything into `poc'`.

//!
//! ```
//! use octo_cfg::{build_cfg, CfgMode, DistanceMap};
//! use octo_ir::parse::parse_program;
//! use octo_poc::{Bunch, CrashPrimitives};
//! use octo_symex::{DirectedConfig, DirectedEngine, DirectedOutcome};
//!
//! let t = parse_program(
//!     "func main() {\nentry:\n fd = open\n m = getc fd\n c = eq m, 0x4D\n \
//!      br c, go, rej\ngo:\n call shared(fd)\n halt 0\nrej:\n halt 1\n}\n\
//!      func shared(fd) {\nentry:\n v = getc fd\n ret\n}\n",
//! )?;
//! let ep = t.func_by_name("shared").expect("exists");
//! let cfg = build_cfg(&t, CfgMode::Dynamic).expect("cfg");
//! let map = DistanceMap::compute(&t, &cfg, ep);
//! // One bunch: the byte ℓ consumes must be 0x7F.
//! let mut q = CrashPrimitives::new();
//! let mut bunch = Bunch::new(1);
//! bunch.add(0, 0x7F);
//! q.push(bunch, vec![3]);
//! let config = DirectedConfig { file_len: 8, ..DirectedConfig::default() };
//! let engine = DirectedEngine::new(&t, ep, &map, &q, config);
//! let (outcome, _stats) = engine.run();
//! let DirectedOutcome::PocGenerated { poc, .. } = outcome else { panic!() };
//! assert_eq!(poc.byte(0), 0x4D); // guiding magic
//! assert_eq!(poc.byte(1), 0x7F); // crash primitive
//! # Ok::<(), octo_ir::parse::ParseError>(())
//! ```
#![warn(missing_docs)]

pub mod directed;
pub mod exec;
pub mod memory;
pub mod naive;
pub mod state;
pub mod value;

pub use directed::{
    DirectedConfig, DirectedEngine, DirectedOutcome, DirectedStats, CANCEL_POLL_STEPS,
};
pub use exec::{StepEvent, SymExecutor};
pub use naive::{NaiveConfig, NaiveExplorer, NaiveOutcome, NaiveStats};
pub use state::SymState;
pub use value::{SymByte, SymVal};
