//! Symbolic values: concrete-or-expression registers and memory bytes.

use octo_ir::{BinOp, UnOp, Width};
use octo_solver::{simplify::simplify, Expr, ExprRef};

/// A register value: concrete or symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVal {
    /// Concrete 64-bit value.
    C(u64),
    /// Symbolic term.
    S(ExprRef),
}

impl SymVal {
    /// The concrete value, if this is one (also recognises symbolic terms
    /// that simplify to a constant).
    pub fn as_concrete(&self) -> Option<u64> {
        match self {
            SymVal::C(v) => Some(*v),
            SymVal::S(e) => e.as_const(),
        }
    }

    /// Whether the value is symbolic (not a constant).
    pub fn is_symbolic(&self) -> bool {
        self.as_concrete().is_none()
    }

    /// Converts to an expression (constants become [`Expr::Const`]).
    pub fn to_expr(&self) -> ExprRef {
        match self {
            SymVal::C(v) => Expr::val(*v),
            SymVal::S(e) => e.clone(),
        }
    }

    /// Applies a binary operation, staying concrete when possible.
    ///
    /// Division/remainder by a concrete zero returns `None` (a crash).
    pub fn bin(op: BinOp, a: &SymVal, b: &SymVal) -> Option<SymVal> {
        if let (Some(x), Some(y)) = (a.as_concrete(), b.as_concrete()) {
            return op.eval(x, y).map(SymVal::C);
        }
        let e = simplify(&Expr::bin(op, a.to_expr(), b.to_expr()));
        Some(SymVal::from_expr(e))
    }

    /// Applies a unary operation.
    pub fn un(op: UnOp, a: &SymVal) -> SymVal {
        if let Some(x) = a.as_concrete() {
            return SymVal::C(op.eval(x));
        }
        SymVal::from_expr(simplify(&Expr::un(op, a.to_expr())))
    }

    /// Wraps an expression, collapsing constants.
    pub fn from_expr(e: ExprRef) -> SymVal {
        match e.as_const() {
            Some(v) => SymVal::C(v),
            None => SymVal::S(e),
        }
    }

    /// Approximate node count (memory accounting).
    pub fn size(&self) -> usize {
        match self {
            SymVal::C(_) => 1,
            SymVal::S(e) => e.size(),
        }
    }
}

impl Default for SymVal {
    fn default() -> SymVal {
        SymVal::C(0)
    }
}

impl From<u64> for SymVal {
    fn from(v: u64) -> SymVal {
        SymVal::C(v)
    }
}

/// A memory byte: concrete or symbolic (8-bit term).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymByte {
    /// Concrete byte.
    C(u8),
    /// Symbolic 8-bit term.
    S(ExprRef),
}

impl SymByte {
    /// The byte as an 8-bit expression.
    pub fn to_expr(&self) -> ExprRef {
        match self {
            SymByte::C(v) => Expr::val(u64::from(*v)),
            SymByte::S(e) => e.clone(),
        }
    }

    /// The concrete value, if any.
    pub fn as_concrete(&self) -> Option<u8> {
        match self {
            SymByte::C(v) => Some(*v),
            SymByte::S(e) => e.as_const().map(|v| v as u8),
        }
    }

    /// Approximate node count.
    pub fn size(&self) -> usize {
        match self {
            SymByte::C(_) => 1,
            SymByte::S(e) => e.size(),
        }
    }
}

impl Default for SymByte {
    fn default() -> SymByte {
        SymByte::C(0)
    }
}

/// Assembles `width` bytes (little-endian) into one value.
pub fn assemble(bytes: &[SymByte]) -> SymVal {
    if let Some(concrete) = bytes
        .iter()
        .map(SymByte::as_concrete)
        .collect::<Option<Vec<u8>>>()
    {
        let mut v = 0u64;
        for (i, b) in concrete.iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        return SymVal::C(v);
    }
    if bytes.len() == 1 {
        return SymVal::from_expr(bytes[0].to_expr());
    }
    let parts: Vec<ExprRef> = bytes.iter().map(SymByte::to_expr).collect();
    SymVal::from_expr(simplify(&std::rc::Rc::new(Expr::Concat(parts))))
}

/// Splits a value into `width` bytes (little-endian).
pub fn disassemble(value: &SymVal, width: Width) -> Vec<SymByte> {
    let n = width.bytes() as usize;
    match value {
        SymVal::C(v) => (0..n).map(|i| SymByte::C((v >> (8 * i)) as u8)).collect(),
        SymVal::S(e) => {
            // Byte j = (e >> 8j) & 0xFF; simplification recovers concat
            // components when e is a byte concat.
            (0..n)
                .map(|i| {
                    let shifted = Expr::bin(BinOp::ShrL, e.clone(), Expr::val(8 * i as u64));
                    let masked = Expr::bin(BinOp::And, shifted, Expr::val(0xFF));
                    let s = simplify(&masked);
                    match s.as_const() {
                        Some(v) => SymByte::C(v as u8),
                        None => SymByte::S(s),
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_stay_concrete() {
        let a = SymVal::C(6);
        let b = SymVal::C(7);
        assert_eq!(SymVal::bin(BinOp::Mul, &a, &b), Some(SymVal::C(42)));
        assert_eq!(SymVal::bin(BinOp::DivU, &a, &SymVal::C(0)), None);
        assert_eq!(SymVal::un(UnOp::Neg, &SymVal::C(1)), SymVal::C(u64::MAX));
    }

    #[test]
    fn symbolic_ops_simplify() {
        let s = SymVal::S(Expr::byte(0));
        let r = SymVal::bin(BinOp::Add, &s, &SymVal::C(0)).unwrap();
        assert_eq!(r, SymVal::S(Expr::byte(0)));
    }

    #[test]
    fn assemble_concrete_bytes() {
        let bytes = vec![SymByte::C(0x78), SymByte::C(0x56)];
        assert_eq!(assemble(&bytes), SymVal::C(0x5678));
    }

    #[test]
    fn assemble_symbolic_builds_concat() {
        let bytes = vec![SymByte::S(Expr::byte(4)), SymByte::S(Expr::byte(5))];
        let v = assemble(&bytes);
        assert_eq!(v.to_expr(), Expr::concat_le(4, 2));
    }

    #[test]
    fn disassemble_concat_recovers_components() {
        let v = SymVal::S(Expr::concat_le(0, 4));
        let bytes = disassemble(&v, Width::W4);
        assert_eq!(bytes[0].to_expr(), Expr::byte(0));
        assert_eq!(bytes[3].to_expr(), Expr::byte(3));
    }

    #[test]
    fn disassemble_concrete() {
        let v = SymVal::C(0x1234_5678);
        let bytes = disassemble(&v, Width::W4);
        assert_eq!(
            bytes,
            vec![
                SymByte::C(0x78),
                SymByte::C(0x56),
                SymByte::C(0x34),
                SymByte::C(0x12)
            ]
        );
    }

    #[test]
    fn roundtrip_assemble_disassemble() {
        let v = SymVal::S(Expr::concat_le(8, 2));
        let bytes = disassemble(&v, Width::W2);
        assert_eq!(assemble(&bytes).to_expr(), v.to_expr());
    }
}
