//! The symbolic instruction stepper.
//!
//! [`SymExecutor::step`] advances one state by one instruction. Control
//! decisions on symbolic data are *not* made here: a symbolic branch or
//! switch is surfaced as a [`StepEvent`] and the exploration strategy
//! (naive or directed) decides, then re-enters via [`SymExecutor::take_branch`]
//! or [`SymExecutor::take_switch`].

use octo_ir::{
    decode_block_addr, decode_func_addr, encode_block_addr, encode_func_addr, BinOp, BlockId,
    FuncId, Inst, Operand, Program, Terminator,
};
use octo_solver::{Cond, Constraint, Expr, ExprRef};
use octo_vm::CrashKind;

use crate::memory::SymMemFault;
use crate::state::{SymFrame, SymState};
use crate::value::{assemble, disassemble, SymByte, SymVal};

/// Why a path cannot make further progress (distinct from a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadReason {
    /// Per-state instruction budget exhausted (runaway concrete loop).
    StepBudget,
    /// Call depth limit exceeded.
    DepthLimit,
    /// A required concretisation failed (constraints unsatisfiable or the
    /// solver budget was exhausted).
    ConcretizeFailed,
}

/// Result of advancing a state by one instruction.
#[derive(Debug, Clone)]
pub enum StepEvent {
    /// The state advanced; keep stepping.
    Continue,
    /// The program exited cleanly on this path.
    Exited,
    /// This path crashes (with the current path condition).
    Crashed(CrashKind),
    /// A two-way branch on a symbolic condition. The strategy must call
    /// [`SymExecutor::take_branch`] (possibly on a fork).
    Branch {
        /// The branch condition term.
        cond: ExprRef,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// A multi-way switch on a symbolic scrutinee. The strategy must call
    /// [`SymExecutor::take_switch`].
    Switch {
        /// The scrutinee term.
        scrut: ExprRef,
        /// `(value, target)` cases.
        cases: Vec<(u64, BlockId)>,
        /// Default target.
        default: BlockId,
    },
    /// Execution entered `ep` (the configured entry point of `ℓ`).
    /// `file_pos` is the file position indicator at entry — where the
    /// corresponding bunch is placed (paper P3.1).
    EnteredEp {
        /// 1-based entry count on this path.
        entry: u32,
        /// Arguments `ep` received.
        args: Vec<SymVal>,
        /// File position indicator at entry.
        file_pos: u64,
    },
    /// The path is stuck for a non-crash reason.
    Dead(DeadReason),
}

/// Stepper configuration plus shared program reference.
#[derive(Debug, Clone)]
pub struct SymExecutor<'p> {
    program: &'p Program,
    /// Length of the symbolic input file.
    pub file_len: u64,
    /// The entry point of `ℓ` whose entries are reported.
    pub ep: Option<FuncId>,
    /// Per-state instruction budget.
    pub max_steps: u64,
    /// Call depth limit.
    pub max_depth: usize,
}

impl<'p> SymExecutor<'p> {
    /// Creates a stepper for `program` with a symbolic file of `file_len`
    /// bytes.
    pub fn new(program: &'p Program, file_len: u64) -> SymExecutor<'p> {
        SymExecutor {
            program,
            file_len,
            ep: None,
            max_steps: 200_000,
            max_depth: 128,
        }
    }

    /// Sets the `ep` function whose entries produce [`StepEvent::EnteredEp`].
    pub fn with_ep(mut self, ep: FuncId) -> SymExecutor<'p> {
        self.ep = Some(ep);
        self
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    fn eval(&self, state: &SymState, op: Operand) -> SymVal {
        match op {
            Operand::Reg(r) => state.top().regs[r.0 as usize].clone(),
            Operand::Imm(v) => SymVal::C(v),
        }
    }

    /// Forces `v` concrete, pinning it with an equality constraint
    /// (angr-style concretisation).
    fn concretize(&self, state: &mut SymState, v: &SymVal) -> Result<u64, DeadReason> {
        if let Some(c) = v.as_concrete() {
            return Ok(c);
        }
        let model = state.model().ok_or(DeadReason::ConcretizeFailed)?;
        let expr = v.to_expr();
        let val = expr
            .eval(&|off| Some(model.byte(off)))
            .ok_or(DeadReason::ConcretizeFailed)?;
        state.add_constraint(Constraint::new(expr, Expr::val(val), Cond::Eq));
        Ok(val)
    }

    fn fault_to_crash(fault: SymMemFault) -> CrashKind {
        match fault {
            SymMemFault::Null { addr } => CrashKind::NullDeref { addr },
            SymMemFault::OutOfBounds { addr, nearest } => CrashKind::OutOfBounds {
                addr,
                region: nearest,
            },
        }
    }

    /// Moves the innermost frame to `block`; returns its visit count (for
    /// the strategy's θ loop policy).
    pub fn goto(&self, state: &mut SymState, block: BlockId) -> u32 {
        let n = state.visit(block);
        let frame = state.top_mut();
        frame.block = block;
        frame.idx = 0;
        n
    }

    /// Commits a direction at a symbolic branch: records the path
    /// constraint and transfers control. Returns the visit count of the
    /// target block.
    pub fn take_branch(
        &self,
        state: &mut SymState,
        cond: &ExprRef,
        take_then: bool,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> u32 {
        state.add_constraint(Constraint::from_bool(cond, take_then));
        self.goto(state, if take_then { then_bb } else { else_bb })
    }

    /// Commits a switch decision. `choice = Some(v)` takes the case with
    /// value `v`; `None` takes the default (constraining the scrutinee to
    /// differ from every case).
    pub fn take_switch(
        &self,
        state: &mut SymState,
        scrut: &ExprRef,
        cases: &[(u64, BlockId)],
        default: BlockId,
        choice: Option<u64>,
    ) -> u32 {
        match choice {
            Some(v) => {
                let target = cases
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(default);
                state.add_constraint(Constraint::new(scrut.clone(), Expr::val(v), Cond::Eq));
                self.goto(state, target)
            }
            None => {
                for (v, _) in cases {
                    state.add_constraint(Constraint::new(scrut.clone(), Expr::val(*v), Cond::Ne));
                }
                self.goto(state, default)
            }
        }
    }

    /// Advances `state` by one instruction or terminator.
    pub fn step(&self, state: &mut SymState) -> StepEvent {
        state.steps += 1;
        if state.steps > self.max_steps {
            return StepEvent::Dead(DeadReason::StepBudget);
        }
        let (func_id, block_id, idx) = {
            let f = state.top();
            (f.func, f.block, f.idx)
        };
        let func = self.program.func(func_id);
        let block = func.block(block_id);

        if idx < block.insts.len() {
            state.top_mut().idx += 1;
            // `block` borrows through `self.program` (lifetime 'p), so the
            // instruction reference outlives the `&mut state` uses below —
            // no per-step clone needed.
            let program = self.program;
            let inst = &program.func(func_id).block(block_id).insts[idx];
            return self.exec_inst(state, inst);
        }

        match block.term.clone() {
            Terminator::Jmp(b) => {
                self.goto(state, b);
                StepEvent::Continue
            }
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.eval(state, cond);
                match c.as_concrete() {
                    Some(v) => {
                        self.goto(state, if v != 0 { then_bb } else { else_bb });
                        StepEvent::Continue
                    }
                    None => StepEvent::Branch {
                        cond: c.to_expr(),
                        then_bb,
                        else_bb,
                    },
                }
            }
            Terminator::Switch {
                scrut,
                cases,
                default,
            } => {
                let s = self.eval(state, scrut);
                match s.as_concrete() {
                    Some(v) => {
                        let target = cases
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, b)| *b)
                            .unwrap_or(default);
                        self.goto(state, target);
                        StepEvent::Continue
                    }
                    None => StepEvent::Switch {
                        scrut: s.to_expr(),
                        cases,
                        default,
                    },
                }
            }
            Terminator::JmpIndirect { target } => {
                let t = self.eval(state, target);
                let value = match self.concretize(state, &t) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                match decode_block_addr(value) {
                    Some((f, b)) if f == func_id && (b.0 as usize) < func.blocks.len() => {
                        self.goto(state, b);
                        StepEvent::Continue
                    }
                    _ => StepEvent::Crashed(CrashKind::BadIndirect { value }),
                }
            }
            Terminator::Ret(value) => {
                let v = value.map(|op| self.eval(state, op));
                let frame = state.frames.pop().expect("live state");
                match state.frames.last_mut() {
                    None => StepEvent::Exited,
                    Some(caller) => {
                        if let Some(dst) = frame.ret_dst {
                            caller.regs[dst.0 as usize] = v.unwrap_or(SymVal::C(0));
                        }
                        StepEvent::Continue
                    }
                }
            }
            Terminator::Halt { .. } => StepEvent::Exited,
        }
    }

    fn do_call(
        &self,
        state: &mut SymState,
        callee: FuncId,
        args: &[Operand],
        dst: Option<octo_ir::Reg>,
    ) -> StepEvent {
        if state.depth() >= self.max_depth {
            return StepEvent::Dead(DeadReason::DepthLimit);
        }
        let f = self.program.func(callee);
        let mut regs = vec![SymVal::C(0); f.n_regs as usize];
        let mut arg_vals = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let v = self.eval(state, *a);
            if i < f.n_params as usize {
                regs[i] = v.clone();
            }
            arg_vals.push(v);
        }
        state.frames.push(SymFrame {
            func: callee,
            block: f.entry(),
            idx: 0,
            regs,
            ret_dst: dst,
            visits: std::collections::HashMap::new(),
        });
        if self.ep == Some(callee) {
            state.ep_entries += 1;
            return StepEvent::EnteredEp {
                entry: state.ep_entries,
                args: arg_vals,
                file_pos: state.file_pos,
            };
        }
        StepEvent::Continue
    }

    fn exec_inst(&self, state: &mut SymState, inst: &Inst) -> StepEvent {
        macro_rules! set {
            ($dst:expr, $val:expr) => {{
                let v = $val;
                state.top_mut().regs[$dst.0 as usize] = v;
            }};
        }
        match inst {
            Inst::Const { dst, value } => set!(dst, SymVal::C(*value)),
            Inst::Move { dst, src } => set!(dst, self.eval(state, *src)),
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = self.eval(state, *lhs);
                let mut b = self.eval(state, *rhs);
                if matches!(op, BinOp::DivU | BinOp::RemU) && b.as_concrete().is_none() {
                    // Concretise the divisor (division is not decomposable
                    // for the byte solver).
                    match self.concretize(state, &b) {
                        Ok(v) => b = SymVal::C(v),
                        Err(r) => return StepEvent::Dead(r),
                    }
                }
                match SymVal::bin(*op, &a, &b) {
                    Some(v) => set!(dst, v),
                    None => return StepEvent::Crashed(CrashKind::DivByZero),
                }
            }
            Inst::Un { dst, op, src } => {
                let v = SymVal::un(*op, &self.eval(state, *src));
                set!(dst, v);
            }
            Inst::CheckedBin {
                dst,
                op,
                width,
                lhs,
                rhs,
            } => {
                let a = self.eval(state, *lhs);
                let b = self.eval(state, *rhs);
                if let (Some(x), Some(y)) = (a.as_concrete(), b.as_concrete()) {
                    match op.eval(*width, x, y) {
                        Some(v) => set!(dst, SymVal::C(v)),
                        None => {
                            return StepEvent::Crashed(CrashKind::IntegerOverflow { width: *width })
                        }
                    }
                } else {
                    // Symbolic checked arithmetic: model the value with the
                    // plain operation; the overflow trap manifests in the
                    // concrete verification run (P4).
                    let plain = match op {
                        octo_ir::CheckedOp::Add => BinOp::Add,
                        octo_ir::CheckedOp::Sub => BinOp::Sub,
                        octo_ir::CheckedOp::Mul => BinOp::Mul,
                    };
                    match SymVal::bin(plain, &a, &b) {
                        Some(v) => set!(dst, v),
                        None => return StepEvent::Crashed(CrashKind::DivByZero),
                    }
                }
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let a = self.eval(state, *addr);
                let base = match self.concretize(state, &a) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                match state
                    .mem
                    .read_range(base.wrapping_add(*offset), width.bytes())
                {
                    Ok(bytes) => set!(dst, assemble(&bytes)),
                    Err(f) => return StepEvent::Crashed(Self::fault_to_crash(f)),
                }
            }
            Inst::Store {
                addr,
                offset,
                src,
                width,
            } => {
                let a = self.eval(state, *addr);
                let base = match self.concretize(state, &a) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                let v = self.eval(state, *src);
                let bytes = disassemble(&v, *width);
                if let Err(f) = state.mem.write_range(base.wrapping_add(*offset), &bytes) {
                    return StepEvent::Crashed(Self::fault_to_crash(f));
                }
            }
            Inst::Alloc { dst, size, region } => {
                let s = self.eval(state, *size);
                let sz = match self.concretize(state, &s) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                let base = state.mem.alloc(sz, *region);
                set!(dst, SymVal::C(base));
            }
            Inst::Call { dst, callee, args } => {
                return self.do_call(state, *callee, args, *dst);
            }
            Inst::CallIndirect { dst, target, args } => {
                let t = self.eval(state, *target);
                let value = match self.concretize(state, &t) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                match decode_func_addr(value)
                    .filter(|f| (f.0 as usize) < self.program.function_count())
                {
                    Some(callee) => return self.do_call(state, callee, args, *dst),
                    None => return StepEvent::Crashed(CrashKind::BadIndirect { value }),
                }
            }
            Inst::FuncAddr { dst, func } => set!(dst, SymVal::C(encode_func_addr(*func))),
            Inst::BlockAddr { dst, block } => {
                let func = state.top().func;
                set!(dst, SymVal::C(encode_block_addr(func, *block)));
            }
            Inst::FileOpen { dst } => {
                state.fd_opened = true;
                set!(dst, SymVal::C(octo_vm::vm::INPUT_FD));
            }
            Inst::FileRead { dst, fd, buf, len } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                let b = self.eval(state, *buf);
                let buf_addr = match self.concretize(state, &b) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                let l = self.eval(state, *len);
                let want = match self.concretize(state, &l) {
                    Ok(v) => v,
                    Err(r) => return StepEvent::Dead(r),
                };
                let pos = state.file_pos.min(self.file_len);
                let count = want.min(self.file_len - pos);
                let bytes: Vec<SymByte> = (0..count)
                    .map(|i| SymByte::S(Expr::byte((pos + i) as u32)))
                    .collect();
                if let Err(f) = state.mem.write_range(buf_addr, &bytes) {
                    return StepEvent::Crashed(Self::fault_to_crash(f));
                }
                state.file_pos = pos + count;
                set!(dst, SymVal::C(count));
            }
            Inst::FileGetc { dst, fd } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                if state.file_pos < self.file_len {
                    let off = state.file_pos as u32;
                    state.file_pos += 1;
                    set!(dst, SymVal::S(Expr::byte(off)));
                } else {
                    set!(dst, SymVal::C(u64::MAX));
                }
            }
            Inst::FileSeek { fd, pos } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                let p = self.eval(state, *pos);
                match self.concretize(state, &p) {
                    Ok(v) => state.file_pos = v,
                    Err(r) => return StepEvent::Dead(r),
                }
            }
            Inst::FileTell { dst, fd } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                let fp = state.file_pos;
                set!(dst, SymVal::C(fp));
            }
            Inst::FileSize { dst, fd } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                set!(dst, SymVal::C(self.file_len));
            }
            Inst::MemMap { dst, fd } => {
                if let Some(e) = self.check_fd(state, *fd) {
                    return e;
                }
                let base = state.mem.alloc(self.file_len, octo_ir::RegionKind::Heap);
                let bytes: Vec<SymByte> = (0..self.file_len)
                    .map(|i| SymByte::S(Expr::byte(i as u32)))
                    .collect();
                if let Err(f) = state.mem.write_range(base, &bytes) {
                    return StepEvent::Crashed(Self::fault_to_crash(f));
                }
                set!(dst, SymVal::C(base));
            }
            Inst::Trap { code } => return StepEvent::Crashed(CrashKind::Trap { code: *code }),
            Inst::Nop => {}
        }
        StepEvent::Continue
    }

    fn check_fd(&self, state: &mut SymState, fd: Operand) -> Option<StepEvent> {
        let v = self.eval(state, fd);
        match self.concretize(state, &v) {
            Ok(val) if state.fd_opened && val == octo_vm::vm::INPUT_FD => None,
            Ok(val) => Some(StepEvent::Crashed(CrashKind::BadFileDescriptor { fd: val })),
            Err(r) => Some(StepEvent::Dead(r)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_solver::SolveResult;

    fn run_until_event(src: &str, file_len: u64) -> (SymState, StepEvent) {
        let p = parse_program(src).unwrap();
        let p = Box::leak(Box::new(p));
        let ex = SymExecutor::new(p, file_len);
        let mut st = SymState::initial(p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => continue,
                e => return (st, e),
            }
        }
    }

    #[test]
    fn concrete_program_exits() {
        let (_, e) = run_until_event("func main() {\nentry:\n x = 1\n halt x\n}\n", 0);
        assert!(matches!(e, StepEvent::Exited));
    }

    #[test]
    fn symbolic_branch_surfaces() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 0x47
    br c, yes, no
yes:
    halt 0
no:
    halt 1
}
"#;
        let (st, e) = run_until_event(src, 4);
        match e {
            StepEvent::Branch { cond, .. } => {
                // cond is `eq in[0], 0x47`
                assert!(cond.vars().contains(&0));
            }
            other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(st.file_pos, 1);
    }

    #[test]
    fn take_branch_records_constraint() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 0x47
    br c, yes, no
yes:
    halt 0
no:
    halt 1
}
"#;
        let p = parse_program(src).unwrap();
        let ex = SymExecutor::new(&p, 4);
        let mut st = SymState::initial(&p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => {}
                StepEvent::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    ex.take_branch(&mut st, &cond, true, then_bb, else_bb);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match st.constraints.solve() {
            SolveResult::Sat(m) => assert_eq!(m.byte(0), 0x47),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_load_from_read_buffer() {
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 4
    v = load.4 buf
    c = eq v, 0x11223344
    br c, yes, no
yes:
    halt 0
no:
    halt 1
}
"#;
        let p = parse_program(src).unwrap();
        let ex = SymExecutor::new(&p, 8);
        let mut st = SymState::initial(&p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => {}
                StepEvent::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    ex.take_branch(&mut st, &cond, true, then_bb, else_bb);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let m = st.model().expect("sat");
        assert_eq!(m.byte(0), 0x44);
        assert_eq!(m.byte(3), 0x11);
    }

    #[test]
    fn ep_entry_event_reports_position_and_args() {
        let src = r#"
func main() {
entry:
    fd = open
    h = getc fd
    call shared(h, 9)
    halt 0
}
func shared(a, b) {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let ex = SymExecutor::new(&p, 4).with_ep(ep);
        let mut st = SymState::initial(&p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => {}
                StepEvent::EnteredEp {
                    entry,
                    args,
                    file_pos,
                } => {
                    assert_eq!(entry, 1);
                    assert_eq!(file_pos, 1); // one byte consumed before the call
                    assert_eq!(args.len(), 2);
                    assert!(args[0].is_symbolic());
                    assert_eq!(args[1], SymVal::C(9));
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn crash_paths_are_reported() {
        let (_, e) = run_until_event("func main() {\nentry:\n trap 3\n}\n", 0);
        assert!(matches!(e, StepEvent::Crashed(CrashKind::Trap { code: 3 })));
        let (_, e) = run_until_event("func main() {\nentry:\n v = load.1 0\n halt v\n}\n", 0);
        assert!(matches!(e, StepEvent::Crashed(CrashKind::NullDeref { .. })));
    }

    #[test]
    fn step_budget_kills_runaway_loops() {
        let src = "func main() {\nentry:\n jmp entry\n}\n";
        let p = parse_program(src).unwrap();
        let mut ex = SymExecutor::new(&p, 0);
        ex.max_steps = 100;
        let mut st = SymState::initial(&p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => {}
                StepEvent::Dead(DeadReason::StepBudget) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn getc_past_eof_is_concrete_eof() {
        let src = r#"
func main() {
entry:
    fd = open
    a = getc fd
    b = getc fd
    c = eq b, -1
    br c, eof, data
eof:
    halt 0
data:
    halt 1
}
"#;
        // file_len = 1: second getc is concretely EOF, branch is concrete.
        let (_, e) = run_until_event(src, 1);
        assert!(matches!(e, StepEvent::Exited));
    }

    #[test]
    fn switch_on_symbolic_scrutinee_surfaces() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    switch b { 1 -> one, 2 -> two, _ -> other }
one:
    halt 1
two:
    halt 2
other:
    halt 3
}
"#;
        let p = parse_program(src).unwrap();
        let ex = SymExecutor::new(&p, 2);
        let mut st = SymState::initial(&p);
        loop {
            match ex.step(&mut st) {
                StepEvent::Continue => {}
                StepEvent::Switch {
                    scrut,
                    cases,
                    default,
                } => {
                    // take the default: b != 1 && b != 2
                    ex.take_switch(&mut st, &scrut, &cases, default, None);
                    let m = st.model().expect("sat");
                    assert!(m.byte(0) != 1 && m.byte(0) != 2);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
