//! Symbolic process memory: the VM's region model with symbolic bytes.

use octo_ir::RegionKind;
use octo_vm::mem::{GUARD_GAP, HEAP_BASE, NULL_PAGE_END};

use crate::value::SymByte;

/// Why a symbolic memory access failed (mirrors [`octo_vm::mem::MemFault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymMemFault {
    /// Address in the null page.
    Null {
        /// Faulting address.
        addr: u64,
    },
    /// Address outside every region.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Kind of the nearest lower region, if any.
        nearest: Option<RegionKind>,
    },
}

#[derive(Debug, Clone)]
struct SymRegion {
    base: u64,
    size: u64,
    kind: RegionKind,
    data: Vec<SymByte>,
}

/// Region-based memory over [`SymByte`] cells. The allocation layout is
/// identical to the concrete VM's, so addresses observed symbolically match
/// the addresses a concrete replay will produce.
#[derive(Debug, Clone, Default)]
pub struct SymMemory {
    regions: Vec<SymRegion>,
    next_base: u64,
}

impl SymMemory {
    /// An empty memory.
    pub fn new() -> SymMemory {
        SymMemory {
            regions: Vec::new(),
            next_base: HEAP_BASE,
        }
    }

    /// Allocates `size` zeroed bytes; returns the base address.
    pub fn alloc(&mut self, size: u64, kind: RegionKind) -> u64 {
        let base = self.next_base;
        self.next_base = base + size.max(1) + GUARD_GAP;
        self.next_base = (self.next_base + 15) & !15;
        self.regions.push(SymRegion {
            base,
            size,
            kind,
            data: vec![SymByte::C(0); size as usize],
        });
        base
    }

    fn locate(&self, addr: u64) -> Result<(usize, usize), SymMemFault> {
        match self.regions.binary_search_by(|r| {
            use std::cmp::Ordering;
            if addr < r.base {
                Ordering::Greater
            } else if addr >= r.base + r.size {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }) {
            Ok(i) => Ok((i, (addr - self.regions[i].base) as usize)),
            Err(_) => {
                if addr < NULL_PAGE_END {
                    Err(SymMemFault::Null { addr })
                } else {
                    let nearest = self
                        .regions
                        .iter()
                        .rfind(|r| r.base <= addr)
                        .map(|r| r.kind);
                    Err(SymMemFault::OutOfBounds { addr, nearest })
                }
            }
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Faults if `addr` is unmapped.
    pub fn read_byte(&self, addr: u64) -> Result<SymByte, SymMemFault> {
        let (ri, off) = self.locate(addr)?;
        Ok(self.regions[ri].data[off].clone())
    }

    /// Writes one byte.
    ///
    /// # Errors
    /// Faults if `addr` is unmapped.
    pub fn write_byte(&mut self, addr: u64, value: SymByte) -> Result<(), SymMemFault> {
        let (ri, off) = self.locate(addr)?;
        self.regions[ri].data[off] = value;
        Ok(())
    }

    /// Reads `len` consecutive bytes.
    ///
    /// # Errors
    /// Faults on the first unmapped byte.
    pub fn read_range(&self, addr: u64, len: u64) -> Result<Vec<SymByte>, SymMemFault> {
        (0..len)
            .map(|i| self.read_byte(addr.wrapping_add(i)))
            .collect()
    }

    /// Writes a run of bytes.
    ///
    /// # Errors
    /// Faults on the first unmapped byte (earlier bytes stay written).
    pub fn write_range(&mut self, addr: u64, bytes: &[SymByte]) -> Result<(), SymMemFault> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u64), b.clone())?;
        }
        Ok(())
    }

    /// Approximate node count across all cells (memory accounting for the
    /// path-explosion budget).
    pub fn size_nodes(&self) -> usize {
        self.regions
            .iter()
            .map(|r| r.data.iter().map(SymByte::size).sum::<usize>())
            .sum()
    }

    /// Number of allocated regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_solver::Expr;

    #[test]
    fn layout_matches_concrete_vm() {
        // Allocations in the same order produce the same base addresses as
        // the concrete VM — required so concretised pointers replay.
        let mut s = SymMemory::new();
        let mut c = octo_vm::Memory::new();
        for size in [16u64, 1, 100, 0, 7] {
            assert_eq!(
                s.alloc(size, RegionKind::Heap),
                c.alloc(size, RegionKind::Heap)
            );
        }
    }

    #[test]
    fn rw_roundtrip_symbolic() {
        let mut m = SymMemory::new();
        let a = m.alloc(4, RegionKind::Heap);
        m.write_byte(a + 1, SymByte::S(Expr::byte(9))).unwrap();
        assert_eq!(m.read_byte(a + 1).unwrap(), SymByte::S(Expr::byte(9)));
        assert_eq!(m.read_byte(a).unwrap(), SymByte::C(0));
    }

    #[test]
    fn oob_and_null_faults() {
        let mut m = SymMemory::new();
        let a = m.alloc(2, RegionKind::Stack);
        assert!(matches!(
            m.read_byte(a + 2),
            Err(SymMemFault::OutOfBounds {
                nearest: Some(RegionKind::Stack),
                ..
            })
        ));
        assert!(matches!(m.read_byte(5), Err(SymMemFault::Null { addr: 5 })));
    }

    #[test]
    fn size_nodes_counts_symbolic_cells() {
        let mut m = SymMemory::new();
        let a = m.alloc(2, RegionKind::Heap);
        let base = m.size_nodes();
        m.write_byte(a, SymByte::S(Expr::byte(0))).unwrap();
        assert!(m.size_nodes() >= base);
    }
}
