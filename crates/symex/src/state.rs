//! Symbolic execution state.

use std::collections::HashMap;

use octo_ir::{BlockId, FuncId, Program, Reg};
use octo_solver::{ConstraintSet, Model, SolveResult};

use crate::memory::SymMemory;
use crate::value::SymVal;

/// One call frame of a symbolic state.
#[derive(Debug, Clone)]
pub struct SymFrame {
    /// Function executing in this frame.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block.
    pub idx: usize,
    /// Register file.
    pub regs: Vec<SymVal>,
    /// Caller register receiving the return value.
    pub ret_dst: Option<Reg>,
    /// Visit counts per block within this activation — the loop-state
    /// detector (paper §III-B: *loop* states are bounded by θ).
    pub visits: HashMap<BlockId, u32>,
}

/// A complete symbolic execution state: one path through `T`.
#[derive(Debug, Clone)]
pub struct SymState {
    /// Call stack (last = innermost).
    pub frames: Vec<SymFrame>,
    /// Symbolic memory.
    pub mem: SymMemory,
    /// Concrete file position indicator.
    pub file_pos: u64,
    /// Whether `open` has run.
    pub fd_opened: bool,
    /// Path condition plus combine-phase constraints collected so far.
    pub constraints: ConstraintSet,
    /// Instructions executed on this path.
    pub steps: u64,
    /// Number of `ep` entries observed on this path.
    pub ep_entries: u32,
    /// Cached model of `constraints` (invalidated on every push).
    model_cache: Option<(usize, Model)>,
}

impl SymState {
    /// The initial state at the entry of `program`.
    pub fn initial(program: &Program) -> SymState {
        let entry = program.entry();
        let f = program.func(entry);
        SymState {
            frames: vec![SymFrame {
                func: entry,
                block: f.entry(),
                idx: 0,
                regs: vec![SymVal::C(0); f.n_regs as usize],
                ret_dst: None,
                visits: HashMap::new(),
            }],
            mem: SymMemory::new(),
            file_pos: 0,
            fd_opened: false,
            constraints: ConstraintSet::new(),
            steps: 0,
            ep_entries: 0,
            model_cache: None,
        }
    }

    /// The innermost frame.
    ///
    /// # Panics
    /// Panics if the state has terminated (no frames).
    pub fn top(&self) -> &SymFrame {
        self.frames.last().expect("live state")
    }

    /// The innermost frame, mutably.
    ///
    /// # Panics
    /// Panics if the state has terminated.
    pub fn top_mut(&mut self) -> &mut SymFrame {
        self.frames.last_mut().expect("live state")
    }

    /// Call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Adds a constraint, invalidating the model cache.
    pub fn add_constraint(&mut self, c: octo_solver::Constraint) {
        self.constraints.push(c);
        self.model_cache = None;
    }

    /// Solves the current constraints, caching the model.
    ///
    /// Returns `None` when the set is unsatisfiable or the solver budget is
    /// exhausted.
    pub fn model(&mut self) -> Option<Model> {
        let version = self.constraints.len();
        if let Some((v, m)) = &self.model_cache {
            if *v == version {
                return Some(m.clone());
            }
        }
        match self.constraints.solve() {
            SolveResult::Sat(m) => {
                self.model_cache = Some((version, m.clone()));
                Some(m)
            }
            _ => None,
        }
    }

    /// Records a visit to `block` in the innermost frame; returns the new
    /// visit count.
    pub fn visit(&mut self, block: BlockId) -> u32 {
        let frame = self.top_mut();
        let n = frame.visits.entry(block).or_insert(0);
        *n += 1;
        *n
    }

    /// Approximate memory footprint in *simulated bytes* — the accounting
    /// behind the Table IV `MemError` reproduction. Each expression node,
    /// register, and memory cell is charged a fixed cost.
    pub fn approx_bytes(&self) -> u64 {
        const NODE_COST: u64 = 48;
        const STATE_BASE: u64 = 4096;
        let reg_nodes: usize = self
            .frames
            .iter()
            .map(|f| f.regs.iter().map(SymVal::size).sum::<usize>())
            .sum();
        let mem_nodes = self.mem.size_nodes();
        let cons_nodes = self.constraints.size();
        STATE_BASE + NODE_COST * (reg_nodes + mem_nodes + cons_nodes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_solver::Constraint;

    fn program() -> Program {
        parse_program("func main() {\nentry:\n ret 0\n}\n").unwrap()
    }

    #[test]
    fn initial_state_shape() {
        let p = program();
        let s = SymState::initial(&p);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.top().func, p.entry());
        assert_eq!(s.file_pos, 0);
        assert!(!s.fd_opened);
    }

    #[test]
    fn visits_count_up() {
        let p = program();
        let mut s = SymState::initial(&p);
        assert_eq!(s.visit(BlockId(0)), 1);
        assert_eq!(s.visit(BlockId(0)), 2);
        assert_eq!(s.visit(BlockId(1)), 1);
    }

    #[test]
    fn model_cache_invalidation() {
        let p = program();
        let mut s = SymState::initial(&p);
        s.add_constraint(Constraint::byte_eq(0, 7));
        let m1 = s.model().unwrap();
        assert_eq!(m1.byte(0), 7);
        s.add_constraint(Constraint::byte_eq(1, 9));
        let m2 = s.model().unwrap();
        assert_eq!(m2.byte(1), 9);
    }

    #[test]
    fn unsat_constraints_have_no_model() {
        let p = program();
        let mut s = SymState::initial(&p);
        s.add_constraint(Constraint::byte_eq(0, 1));
        s.add_constraint(Constraint::byte_eq(0, 2));
        assert!(s.model().is_none());
    }

    #[test]
    fn approx_bytes_grows_with_constraints() {
        let p = program();
        let mut s = SymState::initial(&p);
        let before = s.approx_bytes();
        for i in 0..32 {
            s.add_constraint(Constraint::byte_eq(i, i as u8));
        }
        assert!(s.approx_bytes() > before);
    }
}
