//! Directed symbolic execution plus the combining phase (paper Algorithm 2).
//!
//! The engine drives one state from the entry of `T` toward `ep`, using a
//! backward-path [`DistanceMap`] as the direction oracle at every symbolic
//! branch (phase P2). Whenever execution enters `ep`, the corresponding
//! crash-primitive bunch is asserted at the current file position and the
//! recorded `ep` arguments are replayed (phase P3); after the last entry
//! the accumulated constraints are solved into `poc'`.
//!
//! The paper's four state kinds map as follows:
//!
//! * **active** — the state steps normally;
//! * **loop** — a block is revisited within one activation; revisits are
//!   allowed up to θ;
//! * **loop-dead** — the constraints for exiting the loop at the current
//!   iteration count are unsatisfiable; the engine keeps iterating (the
//!   fallback stack holds the "loop once more" state) until θ;
//! * **program-dead** — no feasible continuation anywhere: `ℓ` is not
//!   reachable, so the vulnerability cannot be triggered in `T`
//!   ([`DirectedOutcome::ProgramDead`], verdict case iii).

use std::time::Instant;

use octo_cfg::DistanceMap;
use octo_ir::{BlockId, FuncId, Program};
use octo_poc::{CrashPrimitives, PocFile};
use octo_sched::CancelToken;
use octo_solver::{Cond, Constraint, Expr, ExprRef, SolveResult, SolverCounters};
use octo_trace::{emit, TraceKind};

use crate::exec::{DeadReason, StepEvent, SymExecutor};
use crate::state::SymState;
use crate::value::SymVal;

/// Tunables for one directed run.
#[derive(Debug, Clone, Copy)]
pub struct DirectedConfig {
    /// Length of the symbolic input file (the eventual `poc'` length).
    pub file_len: u64,
    /// θ — the maximum number of iterations tried for a loop state
    /// (the paper sets 120, §IV-B).
    pub theta: u32,
    /// Bound on the fallback stack (alternate directions kept for
    /// backtracking).
    pub max_fallbacks: usize,
    /// Total instruction budget across the run.
    pub step_budget: u64,
    /// How many infeasible bunch placements to tolerate before concluding
    /// the combine constraints are unsatisfiable. The paper follows the
    /// single backward-found correct path, so the first failures are on
    /// the most direct paths; alternates only re-derive the same conflict
    /// at shifted file positions.
    pub max_stitch_failures: u32,
    /// Loop acceleration (the paper's §III-D future work). When a branch
    /// inside `ℓ` is *forced* — its negation is already refuted by the
    /// collected constraints, which happens on every iteration of a copy
    /// loop over bunch-pinned bytes — the engine takes it without adding a
    /// redundant constraint and without charging the θ loop budget. With
    /// this on, vulnerabilities that need more than θ loop iterations
    /// inside `ℓ` still verify. Off by default (paper semantics).
    pub loop_acceleration: bool,
}

impl Default for DirectedConfig {
    fn default() -> DirectedConfig {
        DirectedConfig {
            file_len: 256,
            theta: 120,
            max_fallbacks: 4096,
            step_budget: 2_000_000,
            max_stitch_failures: 16,
            loop_acceleration: false,
        }
    }
}

/// Statistics of a directed run (Table IV columns plus the
/// observability counters threaded through P2+P3).
///
/// Every field is stamped through the single finish point in
/// [`DirectedEngine::run`], so no early-exit path can return stale
/// zeros, and the memory peak is maintained event-driven (fallback
/// push/pop and constraint-growth points), so spikes between the coarse
/// polls are observed too.
#[derive(Debug, Clone, Default)]
pub struct DirectedStats {
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Peak simulated memory (live state + fallbacks), bytes.
    pub peak_mem_bytes: u64,
    /// Instructions stepped.
    pub total_steps: u64,
    /// Fallback states consumed (backtracks).
    pub backtracks: u64,
    /// High-watermark of the fallback stack.
    pub peak_fallback_depth: u64,
    /// Branch candidates abandoned because a block's visit count
    /// exceeded θ (loop-state retries).
    pub loop_retries: u64,
    /// Forced branches taken via loop acceleration (no constraint
    /// added, no θ charge).
    pub forced_branches: u64,
    /// Solver entries during the run (full solves plus `quick_feasible`
    /// pre-checks and model queries).
    pub solver_calls: u64,
    /// Constraint-set refutations proven by interval reasoning alone.
    pub interval_refutations: u64,
    /// Simplifier rewrite rules fired while building expressions.
    pub simplify_rewrites: u64,
    /// Where and why the most recent state died. On a not-triggerable
    /// or deadline outcome this describes the dying state the verdict
    /// was decided on; the pipeline turns it into a post-mortem.
    pub death: Option<DeathNote>,
}

/// A snapshot of the state that most recently died, taken at the point
/// of death (the state itself is dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct DeathNote {
    /// Why the state died: `"branch-dead"`, `"stitch-infeasible"`,
    /// `"loop-retry"`, `"exited"`, `"crashed"`, `"concretize-failed"`,
    /// `"dead"`, `"deadline"`, `"hung"` (watchdog escalation),
    /// `"step-budget"`, `"final-unsat"`, `"model-unavailable"`, or
    /// `"fault-injected"` (an `octo-faults` plan forced the death).
    pub reason: &'static str,
    /// Bunches the state had stitched (`ep` entries) when it died.
    pub ep_entries: u32,
    /// Path-condition size at death.
    pub constraints: u64,
    /// The most recent constraint on the dying path, if any.
    pub last_constraint: Option<String>,
    /// Fallback-stack depth at death (alternates still pending).
    pub fallback_depth: u64,
}

/// Result of the directed P2+P3 run.
#[derive(Debug, Clone)]
pub enum DirectedOutcome {
    /// `poc'` was generated.
    PocGenerated {
        /// The reformed PoC.
        poc: PocFile,
        /// Number of `ep` entries stitched (bunch count).
        entries: u32,
        /// Constraints that make up the guiding input, kept so the caller
        /// can classify Type-I vs Type-II (does the *original* poc already
        /// satisfy them?).
        guiding: octo_solver::ConstraintSet,
    },
    /// `ep` is unreachable from the entry of `T` (verdict case ii — the
    /// shared code is never called).
    EpUnreachable,
    /// Every path died before stitching all bunches (verdict case iii).
    ProgramDead,
    /// The combine-phase constraints are unsatisfiable (e.g. `ep` argument
    /// mismatch, or a patch-added check conflicts with the primitive
    /// bytes) — the vulnerability cannot be triggered.
    Unsat,
    /// A loop state exceeded θ on every candidate path — the failure mode
    /// §III-D declares out of scope.
    LoopBudget,
    /// Step or solver budget exhausted without a verdict.
    Budget,
    /// The run's [`CancelToken`] fired (per-job deadline, an explicit
    /// cancel from the batch scheduler, or a watchdog escalation — the
    /// token's `was_escalated` flag tells the caller which) before a
    /// verdict was reached.
    Cancelled,
    /// An `octo-faults` plan injected a fault the engine could not step
    /// around (currently: the final combine-phase solve was abandoned).
    /// A transient, retryable outcome by construction.
    Injected,
}

impl DirectedOutcome {
    /// Whether a `poc'` was produced.
    pub fn generated(&self) -> bool {
        matches!(self, DirectedOutcome::PocGenerated { .. })
    }

    /// A stable kebab-case label for the trace stream and post-mortems.
    pub fn label(&self) -> &'static str {
        match self {
            DirectedOutcome::PocGenerated { .. } => "poc-generated",
            DirectedOutcome::EpUnreachable => "ep-unreachable",
            DirectedOutcome::ProgramDead => "program-dead",
            DirectedOutcome::Unsat => "unsat",
            DirectedOutcome::LoopBudget => "loop-dead",
            DirectedOutcome::Budget => "step-budget",
            DirectedOutcome::Cancelled => "deadline",
            DirectedOutcome::Injected => "fault-injected",
        }
    }
}

/// How many engine steps pass between two cancellation polls.
pub const CANCEL_POLL_STEPS: u64 = 512;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Guided by the distance oracle (outside `ℓ`).
    Directed,
    /// Inside `ℓ` at the given entry depth: branches follow the current
    /// model (the primitive bytes are already pinned, so `ℓ`'s own parsing
    /// is determined).
    ModelFollow { ep_depth: usize },
}

struct PathState {
    state: SymState,
    mode: Mode,
}

/// Mutable per-run context shared by the step loop and the branch
/// handlers: the fallback stack (with per-entry size so memory
/// accounting is O(1)) and the flags that select the exit verdict.
#[derive(Default)]
struct RunCtx {
    /// Alternate-direction states kept for backtracking, each with its
    /// `approx_bytes` at push time.
    fallbacks: Vec<(PathState, u64)>,
    /// Sum of the stored fallback sizes.
    fallback_bytes: u64,
    loop_budget_hit: bool,
    unsat_seen: bool,
    stitch_failures: u32,
}

impl RunCtx {
    /// Pops the most recent fallback, keeping `fallback_bytes` and the
    /// backtrack count in sync.
    fn pop(&mut self, stats: &mut DirectedStats) -> Option<PathState> {
        let (p, bytes) = self.fallbacks.pop()?;
        self.fallback_bytes -= bytes;
        stats.backtracks += 1;
        emit(TraceKind::FallbackPop {
            depth: self.fallbacks.len() as u64,
        });
        Some(p)
    }
}

/// The directed engine.
pub struct DirectedEngine<'p> {
    executor: SymExecutor<'p>,
    program: &'p Program,
    map: &'p DistanceMap,
    q: &'p CrashPrimitives,
    config: DirectedConfig,
    cancel: Option<CancelToken>,
}

impl<'p> DirectedEngine<'p> {
    /// Creates an engine for target program `T`.
    ///
    /// `map` must have been computed for `ep` over a CFG of `T`.
    pub fn new(
        program: &'p Program,
        ep: FuncId,
        map: &'p DistanceMap,
        q: &'p CrashPrimitives,
        config: DirectedConfig,
    ) -> DirectedEngine<'p> {
        let mut executor = SymExecutor::new(program, config.file_len).with_ep(ep);
        executor.max_steps = config.step_budget;
        DirectedEngine {
            executor,
            program,
            map,
            q,
            config,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token. The run loop polls it
    /// every [`CANCEL_POLL_STEPS`] steps and winds down with
    /// [`DirectedOutcome::Cancelled`] once it fires, so a runaway job
    /// yields to its batch instead of stalling it.
    pub fn with_cancel(mut self, token: CancelToken) -> DirectedEngine<'p> {
        self.cancel = Some(token);
        self
    }

    /// Runs P2+P3 to a verdict.
    ///
    /// All bookkeeping funnels through this single finish point: the
    /// inner engine loop accumulates steps, backtracks, and
    /// memory in place, and the wall clock plus the solver-counter
    /// deltas are stamped exactly once here — no early-exit path can
    /// return stale zeros.
    pub fn run(&self) -> (DirectedOutcome, DirectedStats) {
        let start = Instant::now();
        let solver_before = SolverCounters::snapshot();
        let mut stats = DirectedStats::default();
        let outcome = self.run_inner(&mut stats);
        let solver = SolverCounters::snapshot().since(&solver_before);
        stats.solver_calls = solver.solves;
        stats.interval_refutations = solver.interval_refutations;
        stats.simplify_rewrites = solver.simplify_rewrites;
        stats.wall_seconds = start.elapsed().as_secs_f64();
        emit(TraceKind::EngineOutcome {
            outcome: outcome.label(),
            steps: stats.total_steps,
        });
        (outcome, stats)
    }

    fn run_inner(&self, stats: &mut DirectedStats) -> DirectedOutcome {
        let entry_func = self.program.entry();
        let entry_block = self.program.func(entry_func).entry();
        if !self.map.reaches(entry_func, entry_block) {
            return DirectedOutcome::EpUnreachable;
        }
        if self.q.is_empty() {
            return DirectedOutcome::Unsat;
        }

        let mut ctx = RunCtx::default();
        let mut cur = PathState {
            state: SymState::initial(self.program),
            mode: Mode::Directed,
        };

        // Fault-injection sites (inert without an installed `octo-faults`
        // context), checked once per run so a retry attempt sees the next
        // occurrence number.
        if octo_faults::should_inject(octo_faults::FaultSite::DirectedPanic) {
            panic!("injected panic: directed engine (fault plan)");
        }
        if octo_faults::should_inject(octo_faults::FaultSite::DirectedLoopDead) {
            self.note_death(&cur.state, "fault-injected", &ctx, stats);
            return DirectedOutcome::LoopBudget;
        }
        if let Some(token) = self.cancel.as_ref() {
            if octo_faults::should_inject(octo_faults::FaultSite::DirectedHang) {
                // A simulated wedge: responsive to cancellation but never
                // heartbeating, so only a watchdog escalation or the
                // deadline frees the worker. Armed only when a token
                // exists — without one the hang would be unrecoverable.
                while !token.is_cancelled() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                return self.cancelled_outcome(&cur, &ctx, stats);
            }
        }

        let final_state = loop {
            // Deadline / cancellation poll, at a coarse cadence so the
            // Instant read stays off the hot path. Step 0 is included:
            // an already-expired deadline never starts executing. The
            // heartbeat rides the same cadence, so the watchdog can tell
            // a slow-but-stepping engine from a wedged one.
            if stats.total_steps.is_multiple_of(CANCEL_POLL_STEPS) {
                if let Some(token) = self.cancel.as_ref() {
                    token.beat();
                    if token.is_cancelled() {
                        return self.cancelled_outcome(&cur, &ctx, stats);
                    }
                }
            }
            if stats.total_steps >= self.config.step_budget {
                self.note_death(&cur.state, "step-budget", &ctx, stats);
                // Unsat evidence outweighs a bare budget verdict: every
                // path that reached ep contradicted the crash primitives.
                return if ctx.unsat_seen {
                    DirectedOutcome::Unsat
                } else {
                    DirectedOutcome::Budget
                };
            }
            stats.total_steps += 1;

            // Returning from `ℓ` switches back to directed mode.
            if let Mode::ModelFollow { ep_depth } = cur.mode {
                if cur.state.depth() < ep_depth {
                    cur.mode = Mode::Directed;
                }
            }

            let event = self.executor.step(&mut cur.state);
            let next: Option<PathState> = match event {
                StepEvent::Continue => Some(cur),
                StepEvent::EnteredEp {
                    entry,
                    args,
                    file_pos,
                } => match self.stitch_bunch(&mut cur, entry, &args, file_pos) {
                    Stitch::Done => break cur.state,
                    Stitch::More => {
                        // Stitching appended bunch constraints — a
                        // growth point for the memory watermark.
                        self.note_mem(&cur, &ctx, stats);
                        Some(cur)
                    }
                    Stitch::Infeasible => {
                        ctx.unsat_seen = true;
                        ctx.stitch_failures += 1;
                        emit(TraceKind::StitchInfeasible { entry });
                        self.note_death(&cur.state, "stitch-infeasible", &ctx, stats);
                        if ctx.stitch_failures >= self.config.max_stitch_failures {
                            return DirectedOutcome::Unsat;
                        }
                        None
                    }
                },
                StepEvent::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => self.handle_branch(cur, &cond, then_bb, else_bb, &mut ctx, stats),
                StepEvent::Switch {
                    scrut,
                    cases,
                    default,
                } => self.handle_switch(cur, &scrut, &cases, default, &mut ctx, stats),
                StepEvent::Exited => {
                    self.note_death(&cur.state, "exited", &ctx, stats);
                    None
                }
                StepEvent::Crashed(_) => {
                    self.note_death(&cur.state, "crashed", &ctx, stats);
                    None
                }
                StepEvent::Dead(DeadReason::ConcretizeFailed) => {
                    ctx.unsat_seen = true;
                    self.note_death(&cur.state, "concretize-failed", &ctx, stats);
                    None
                }
                StepEvent::Dead(_) => {
                    self.note_death(&cur.state, "dead", &ctx, stats);
                    None
                }
            };

            // Steady-state memory poll (Table IV RAM column). Spikes are
            // caught event-driven at fallback pushes and stitch points;
            // this cadence covers gradual constraint growth and is O(1)
            // thanks to the running `fallback_bytes` sum.
            if stats.total_steps.is_multiple_of(64) {
                if let Some(p) = next.as_ref() {
                    self.note_mem(p, &ctx, stats);
                }
            }

            cur = match next {
                Some(p) => p,
                None => match ctx.pop(stats) {
                    Some(p) => p,
                    None => {
                        return if ctx.unsat_seen {
                            DirectedOutcome::Unsat
                        } else if ctx.loop_budget_hit {
                            DirectedOutcome::LoopBudget
                        } else {
                            DirectedOutcome::ProgramDead
                        };
                    }
                },
            };
        };

        let final_path = PathState {
            state: final_state,
            mode: Mode::Directed,
        };
        self.note_mem(&final_path, &ctx, stats);
        // P3.3: solve everything; the model becomes poc'.
        let entries = final_path.state.ep_entries;
        let guiding = final_path.state.constraints.clone();
        match final_path.state.constraints.solve() {
            SolveResult::Sat(model) => {
                let len = (self.config.file_len as usize).max(model.required_len());
                DirectedOutcome::PocGenerated {
                    poc: PocFile::new(model.to_file(len)),
                    entries,
                    guiding,
                }
            }
            SolveResult::Unsat => {
                self.note_death(&final_path.state, "final-unsat", &ctx, stats);
                DirectedOutcome::Unsat
            }
            SolveResult::Unknown => DirectedOutcome::Budget,
            SolveResult::Injected => {
                self.note_death(&final_path.state, "fault-injected", &ctx, stats);
                DirectedOutcome::Injected
            }
        }
    }

    /// The single wind-down point for a fired cancel token: records the
    /// trace events and the death note, distinguishing a watchdog
    /// escalation (`"hung"`) from an ordinary deadline.
    fn cancelled_outcome(
        &self,
        cur: &PathState,
        ctx: &RunCtx,
        stats: &mut DirectedStats,
    ) -> DirectedOutcome {
        let token = self
            .cancel
            .as_ref()
            .expect("cancelled_outcome needs a token");
        let escalated = token.was_escalated();
        if escalated {
            emit(TraceKind::WatchdogFired {
                beats: token.beats(),
            });
        }
        emit(TraceKind::CancelFired {
            step: stats.total_steps,
        });
        self.note_death(
            &cur.state,
            if escalated { "hung" } else { "deadline" },
            ctx,
            stats,
        );
        DirectedOutcome::Cancelled
    }

    /// Raises the memory watermark to the current live state plus the
    /// fallback stack.
    fn note_mem(&self, cur: &PathState, ctx: &RunCtx, stats: &mut DirectedStats) {
        stats.peak_mem_bytes = stats
            .peak_mem_bytes
            .max(cur.state.approx_bytes() + ctx.fallback_bytes);
    }

    /// Snapshots a dying state into `stats.death` (the verdict is decided
    /// on the *last* death) and mirrors it into the flight record.
    fn note_death(
        &self,
        state: &SymState,
        reason: &'static str,
        ctx: &RunCtx,
        stats: &mut DirectedStats,
    ) {
        let note = DeathNote {
            reason,
            ep_entries: state.ep_entries,
            constraints: state.constraints.len() as u64,
            last_constraint: state.constraints.items().last().map(ToString::to_string),
            fallback_depth: ctx.fallbacks.len() as u64,
        };
        emit(TraceKind::StateDead {
            reason,
            ep_entries: note.ep_entries,
            constraints: note.constraints,
        });
        stats.death = Some(note);
    }

    /// Stores an alternate direction for backtracking (bounded by
    /// `max_fallbacks`) and keeps the stack-depth watermark current.
    /// Returns whether the state was kept.
    fn push_fallback(&self, cand: PathState, ctx: &mut RunCtx, stats: &mut DirectedStats) -> bool {
        if ctx.fallbacks.len() >= self.config.max_fallbacks {
            return false;
        }
        let bytes = cand.state.approx_bytes();
        ctx.fallback_bytes += bytes;
        ctx.fallbacks.push((cand, bytes));
        stats.peak_fallback_depth = stats.peak_fallback_depth.max(ctx.fallbacks.len() as u64);
        emit(TraceKind::FallbackPush {
            depth: ctx.fallbacks.len() as u64,
        });
        true
    }

    fn distance(&self, func: FuncId, block: BlockId) -> Option<u32> {
        self.map.get(func, block)
    }

    /// Picks branch directions: feasible successors ordered by distance to
    /// `ep`; the best continues, the rest go onto the fallback stack.
    fn handle_branch(
        &self,
        cur: PathState,
        cond: &ExprRef,
        then_bb: BlockId,
        else_bb: BlockId,
        ctx: &mut RunCtx,
        stats: &mut DirectedStats,
    ) -> Option<PathState> {
        let func = cur.state.top().func;
        if let Mode::ModelFollow { .. } = cur.mode {
            return self.model_follow_branch(cur, cond, then_bb, else_bb, ctx, stats);
        }
        let d_then = self.distance(func, then_bb);
        let d_else = self.distance(func, else_bb);
        if d_then.is_none() && d_else.is_none() {
            // Off the guided region (e.g. both successors rejoin via a
            // return) — decide by the current model, like inside ℓ.
            return self.model_follow_branch(cur, cond, then_bb, else_bb, ctx, stats);
        }
        // Order candidates by distance (unreachable last).
        let mut order = [(true, d_then), (false, d_else)];
        order.sort_by_key(|(_, d)| d.unwrap_or(u32::MAX));

        let mut kept: Option<PathState> = None;
        let mut siblings = 0u32;
        for (take_then, _) in order {
            let mut cand = PathState {
                state: cur.state.clone(),
                mode: cur.mode,
            };
            let visits =
                self.executor
                    .take_branch(&mut cand.state, cond, take_then, then_bb, else_bb);
            if visits > self.config.theta {
                stats.loop_retries += 1;
                ctx.loop_budget_hit = true;
                emit(TraceKind::LoopRetry { visits });
                continue;
            }
            if !cand.state.constraints.quick_feasible() {
                continue;
            }
            if kept.is_none() {
                kept = Some(cand);
            } else if self.push_fallback(cand, ctx, stats) {
                siblings += 1;
            }
        }
        // A fork is a growth point: the spike (kept state + the freshly
        // pushed sibling) must land in the watermark even if the path
        // dies before the next poll.
        match &kept {
            Some(k) => {
                if siblings > 0 {
                    emit(TraceKind::StateFork { siblings });
                }
                self.note_mem(k, ctx, stats);
            }
            None => self.note_death(&cur.state, "branch-dead", ctx, stats),
        }
        kept
    }

    fn handle_switch(
        &self,
        cur: PathState,
        scrut: &ExprRef,
        cases: &[(u64, BlockId)],
        default: BlockId,
        ctx: &mut RunCtx,
        stats: &mut DirectedStats,
    ) -> Option<PathState> {
        let func = cur.state.top().func;
        if let Mode::ModelFollow { .. } = cur.mode {
            return self.model_follow_switch(cur, scrut, cases, default, ctx, stats);
        }
        // Candidates: each case plus default, ordered by distance.
        let mut cands: Vec<(Option<u64>, Option<u32>)> = cases
            .iter()
            .map(|(v, b)| (Some(*v), self.distance(func, *b)))
            .collect();
        cands.push((None, self.distance(func, default)));
        if cands.iter().all(|(_, d)| d.is_none()) {
            return self.model_follow_switch(cur, scrut, cases, default, ctx, stats);
        }
        cands.sort_by_key(|(_, d)| d.unwrap_or(u32::MAX));

        let mut kept: Option<PathState> = None;
        let mut siblings = 0u32;
        for (choice, _) in cands {
            let mut cand = PathState {
                state: cur.state.clone(),
                mode: cur.mode,
            };
            let visits = self
                .executor
                .take_switch(&mut cand.state, scrut, cases, default, choice);
            if visits > self.config.theta {
                stats.loop_retries += 1;
                ctx.loop_budget_hit = true;
                emit(TraceKind::LoopRetry { visits });
                continue;
            }
            if !cand.state.constraints.quick_feasible() {
                continue;
            }
            if kept.is_none() {
                kept = Some(cand);
            } else if self.push_fallback(cand, ctx, stats) {
                siblings += 1;
            }
        }
        match &kept {
            Some(k) => {
                if siblings > 0 {
                    emit(TraceKind::StateFork { siblings });
                }
                self.note_mem(k, ctx, stats);
            }
            None => self.note_death(&cur.state, "branch-dead", ctx, stats),
        }
        kept
    }

    fn model_follow_branch(
        &self,
        mut cur: PathState,
        cond: &ExprRef,
        then_bb: BlockId,
        else_bb: BlockId,
        ctx: &RunCtx,
        stats: &mut DirectedStats,
    ) -> Option<PathState> {
        let Some(v) = cur
            .state
            .model()
            .and_then(|model| cond.eval(&|off| Some(model.byte(off))))
        else {
            self.note_death(&cur.state, "model-unavailable", ctx, stats);
            return None;
        };
        if self.config.loop_acceleration && self.branch_is_forced(&mut cur.state, cond, v != 0) {
            // Forced branch: the direction is already implied by the
            // collected constraints — transfer control without growing the
            // path condition or the loop budget.
            stats.forced_branches += 1;
            let target = if v != 0 { then_bb } else { else_bb };
            let frame = cur.state.top_mut();
            frame.block = target;
            frame.idx = 0;
            return Some(cur);
        }
        let visits = self
            .executor
            .take_branch(&mut cur.state, cond, v != 0, then_bb, else_bb);
        if visits > self.config.theta {
            stats.loop_retries += 1;
            emit(TraceKind::LoopRetry { visits });
            self.note_death(&cur.state, "loop-retry", ctx, stats);
            return None;
        }
        Some(cur)
    }

    /// Whether the opposite direction of a branch is refuted by the
    /// current constraints (so taking the model's direction adds no
    /// information).
    fn branch_is_forced(&self, state: &mut SymState, cond: &ExprRef, take_then: bool) -> bool {
        let mut probe = state.constraints.clone();
        probe.push(Constraint::from_bool(cond, !take_then));
        !probe.quick_feasible()
    }

    fn model_follow_switch(
        &self,
        mut cur: PathState,
        scrut: &ExprRef,
        cases: &[(u64, BlockId)],
        default: BlockId,
        ctx: &RunCtx,
        stats: &mut DirectedStats,
    ) -> Option<PathState> {
        let Some(v) = cur
            .state
            .model()
            .and_then(|model| scrut.eval(&|off| Some(model.byte(off))))
        else {
            self.note_death(&cur.state, "model-unavailable", ctx, stats);
            return None;
        };
        let choice = cases.iter().find(|(c, _)| *c == v).map(|(c, _)| *c);
        let visits = self
            .executor
            .take_switch(&mut cur.state, scrut, cases, default, choice);
        if visits > self.config.theta {
            stats.loop_retries += 1;
            emit(TraceKind::LoopRetry { visits });
            self.note_death(&cur.state, "loop-retry", ctx, stats);
            return None;
        }
        Some(cur)
    }

    /// P3.1/P3.2: on entering `ep`, replay the recorded arguments and pin
    /// the bunch bytes at the current file position.
    fn stitch_bunch(
        &self,
        cur: &mut PathState,
        entry: u32,
        args: &[SymVal],
        file_pos: u64,
    ) -> Stitch {
        let k = (entry - 1) as usize;
        let Some(bunch) = self.q.bunch(k) else {
            // T enters ep more often than S did; the extra entries carry no
            // bunch — continue unconstrained.
            return Stitch::More;
        };
        // Replay ep's arguments from S (paper: "executes ep in T with the
        // same parameters as those used in S").
        if let Some(expected) = self.q.args(k) {
            for (arg, want) in args.iter().zip(expected.iter()) {
                match arg.as_concrete() {
                    Some(have) if have != *want => return Stitch::Infeasible,
                    Some(_) => {}
                    None => cur.state.add_constraint(Constraint::new(
                        arg.to_expr(),
                        Expr::val(*want),
                        Cond::Eq,
                    )),
                }
            }
        }
        // Pin the bunch bytes at the file position indicator (Fig. 5:
        // "sym[5:9] == 0x41").
        let dense = bunch.dense_bytes();
        for (j, byte) in dense.iter().enumerate() {
            let off = file_pos + j as u64;
            if off >= self.config.file_len {
                return Stitch::Infeasible; // bunch does not fit in the file
            }
            cur.state
                .add_constraint(Constraint::byte_eq(off as u32, *byte));
        }
        emit(TraceKind::BunchAsserted {
            entry,
            bytes: dense.len() as u64,
            file_pos,
        });
        if !cur.state.constraints.quick_feasible() {
            return Stitch::Infeasible;
        }
        if (k + 1) == self.q.entry_count() {
            return Stitch::Done; // Algorithm 2: break after the last bunch
        }
        cur.mode = Mode::ModelFollow {
            ep_depth: cur.state.depth(),
        };
        Stitch::More
    }
}

enum Stitch {
    /// All bunches placed — stop and solve.
    Done,
    /// More entries expected — keep executing (model-follow inside `ℓ`).
    More,
    /// The placement contradicts the path condition.
    Infeasible,
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;
    use octo_poc::Bunch;
    use octo_vm::{RunOutcome, Vm};

    /// One recorded `ep` entry: `(poc bytes consumed, argument values)`.
    type EpEntry<'a> = (&'a [(u32, u8)], &'a [u64]);

    fn primitives(entries: &[EpEntry<'_>]) -> CrashPrimitives {
        let mut q = CrashPrimitives::new();
        for (i, (bytes, args)) in entries.iter().enumerate() {
            let mut b = Bunch::new(i as u32 + 1);
            for (o, v) in bytes.iter() {
                b.add(*o, *v);
            }
            q.push(b, args.to_vec());
        }
        q
    }

    fn run_directed(
        src: &str,
        ep_name: &str,
        q: &CrashPrimitives,
        file_len: u64,
    ) -> (DirectedOutcome, octo_ir::Program) {
        let p = parse_program(src).unwrap();
        let ep = p.func_by_name(ep_name).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let map = DistanceMap::compute(&p, &cfg, ep);
        let config = DirectedConfig {
            file_len,
            ..DirectedConfig::default()
        };
        let engine = DirectedEngine::new(&p, ep, &map, q, config);
        let (outcome, _) = engine.run();
        (outcome, p)
    }

    const GATED: &str = r#"
func main() {
entry:
    fd = open
    magic = getc fd
    c = eq magic, 0x4D
    br c, ok, bad
ok:
    flag = getc fd
    c2 = eq flag, 0x01
    br c2, go, bad
go:
    call shared(fd)
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    v = getc fd
    c = eq v, 0x7F
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    #[test]
    fn generates_poc_through_magic_gates() {
        // Bunch: the byte shared() consumes must be 0x7F.
        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let (outcome, p) = run_directed(GATED, "shared", &q, 16);
        let DirectedOutcome::PocGenerated { poc, entries, .. } = outcome else {
            panic!("expected poc, got {outcome:?}");
        };
        assert_eq!(entries, 1);
        // Guiding bytes satisfy the magic gates; the bunch lands at the
        // file position when shared() is entered (offset 2).
        assert_eq!(poc.byte(0), 0x4D);
        assert_eq!(poc.byte(1), 0x01);
        assert_eq!(poc.byte(2), 0x7F);
        // P4 sanity: the generated poc' actually crashes T.
        let out = Vm::new(&p, poc.bytes()).run();
        assert!(matches!(out, RunOutcome::Crash(_)), "{out:?}");
    }

    #[test]
    fn ep_unreachable_is_detected() {
        let src = r#"
func main() {
entry:
    halt 0
}
func shared(fd) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[(0, 1)], &[])]);
        let (outcome, _) = run_directed(src, "shared", &q, 8);
        assert!(matches!(outcome, DirectedOutcome::EpUnreachable));
    }

    #[test]
    fn concrete_arg_mismatch_is_unsat() {
        // T calls shared with a hard-coded 5; S recorded 0x13d.
        let src = r#"
func main() {
entry:
    fd = open
    call shared(5)
    halt 0
}
func shared(tag) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[], &[0x13d])]);
        let (outcome, _) = run_directed(src, "shared", &q, 8);
        assert!(matches!(outcome, DirectedOutcome::Unsat), "{outcome:?}");
    }

    #[test]
    fn symbolic_arg_above_byte_range_is_unsat() {
        // T passes a single input byte as the tag; S recorded 0x13d which
        // no byte can equal.
        let src = r#"
func main() {
entry:
    fd = open
    t = getc fd
    call shared(t)
    halt 0
}
func shared(tag) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[], &[0x13d])]);
        let (outcome, _) = run_directed(src, "shared", &q, 8);
        assert!(matches!(outcome, DirectedOutcome::Unsat), "{outcome:?}");
    }

    #[test]
    fn guiding_constraint_conflicting_with_bunch_is_unsat() {
        // The caller validates the byte that the bunch wants to be 0xFF.
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = ult b, 8
    br c, ok, bad
ok:
    seek fd, 0
    call shared(fd)
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
        let q = primitives(&[(&[(0, 0xFF)], &[3])]);
        let (outcome, _) = run_directed(src, "shared", &q, 8);
        assert!(matches!(outcome, DirectedOutcome::Unsat), "{outcome:?}");
    }

    #[test]
    fn multi_entry_stitches_in_order() {
        const TWO_RECORDS: &str = r#"
func main() {
entry:
    fd = open
    n = getc fd
    c = eq n, 2
    br c, loop_start, bad
loop_start:
    i = 0
    jmp loop
loop:
    done = uge i, 2
    br done, fin, body
body:
    call shared(fd)
    i = add i, 1
    jmp loop
fin:
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    a = getc fd
    b = getc fd
    ret
}
"#;
        let q = primitives(&[
            (&[(10, 0xAA), (11, 0xAB)], &[3]),
            (&[(20, 0xBA), (21, 0xBB)], &[3]),
        ]);
        let (outcome, _) = run_directed(TWO_RECORDS, "shared", &q, 16);
        let DirectedOutcome::PocGenerated { poc, entries, .. } = outcome else {
            panic!("expected poc, got {outcome:?}");
        };
        assert_eq!(entries, 2);
        assert_eq!(poc.byte(0), 2); // guiding: record count
                                    // First bunch at pos 1..3, second at pos 3..5.
        assert_eq!(poc.byte(1), 0xAA);
        assert_eq!(poc.byte(2), 0xAB);
        assert_eq!(poc.byte(3), 0xBA);
        assert_eq!(poc.byte(4), 0xBB);
    }

    #[test]
    fn loop_exit_through_bounded_iteration() {
        // T must consume input records until a terminator byte, then call
        // shared. The loop is symbolic; directed execution iterates up to θ.
        let src = r#"
func main() {
entry:
    fd = open
    jmp loop
loop:
    b = getc fd
    stop = eq b, 0
    br stop, after, loop
after:
    call shared(fd)
    halt 0
}
func shared(fd) {
entry:
    v = getc fd
    ret
}
"#;
        let q = primitives(&[(&[(3, 0x42)], &[3])]);
        let (outcome, p) = run_directed(src, "shared", &q, 8);
        let DirectedOutcome::PocGenerated { poc, .. } = outcome else {
            panic!("expected poc, got {outcome:?}");
        };
        // The shortest exit: first byte is the terminator.
        assert_eq!(poc.byte(0), 0);
        assert_eq!(poc.byte(1), 0x42);
        let out = Vm::new(&p, poc.bytes()).run();
        assert!(matches!(out, RunOutcome::Exit(0)), "{out:?}");
    }

    #[test]
    fn expired_deadline_cancels_before_any_step() {
        let p = parse_program(GATED).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let cfg = build_cfg(&p, octo_cfg::CfgMode::Dynamic).unwrap();
        let map = DistanceMap::compute(&p, &cfg, ep);
        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let config = DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        };
        let engine = DirectedEngine::new(&p, ep, &map, &q, config)
            .with_cancel(CancelToken::with_deadline(std::time::Duration::ZERO));
        let (outcome, stats) = engine.run();
        assert!(matches!(outcome, DirectedOutcome::Cancelled), "{outcome:?}");
        assert_eq!(stats.total_steps, 0, "cancelled before stepping");
    }

    #[test]
    fn explicit_cancel_mid_run_is_observed() {
        // A token cancelled up front but with no deadline: the engine must
        // notice it through the flag alone.
        let p = parse_program(GATED).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let cfg = build_cfg(&p, octo_cfg::CfgMode::Dynamic).unwrap();
        let map = DistanceMap::compute(&p, &cfg, ep);
        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let token = CancelToken::new();
        token.cancel();
        let engine = DirectedEngine::new(
            &p,
            ep,
            &map,
            &q,
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
        )
        .with_cancel(token);
        let (outcome, _) = engine.run();
        assert!(matches!(outcome, DirectedOutcome::Cancelled), "{outcome:?}");
    }

    #[test]
    fn live_token_does_not_change_the_verdict() {
        let p = parse_program(GATED).unwrap();
        let ep = p.func_by_name("shared").unwrap();
        let cfg = build_cfg(&p, octo_cfg::CfgMode::Dynamic).unwrap();
        let map = DistanceMap::compute(&p, &cfg, ep);
        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let config = DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        };
        let engine = DirectedEngine::new(&p, ep, &map, &q, config).with_cancel(
            CancelToken::with_deadline(std::time::Duration::from_secs(600)),
        );
        let (outcome, _) = engine.run();
        assert!(outcome.generated(), "{outcome:?}");
    }

    /// Builds the engine with a custom config (and optional token) and
    /// runs it, returning the stats too.
    fn run_configured(
        src: &str,
        ep_name: &str,
        q: &CrashPrimitives,
        config: DirectedConfig,
        cancel: Option<CancelToken>,
    ) -> (DirectedOutcome, DirectedStats) {
        let p = parse_program(src).unwrap();
        let ep = p.func_by_name(ep_name).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let map = DistanceMap::compute(&p, &cfg, ep);
        let mut engine = DirectedEngine::new(&p, ep, &map, q, config);
        if let Some(token) = cancel {
            engine = engine.with_cancel(token);
        }
        engine.run()
    }

    /// Both arms of the fork reach `shared`, but every path dies on the
    /// concrete-argument mismatch within a handful of steps — long
    /// before the first 64-step memory poll.
    const FORK_THEN_MISMATCH: &str = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = ult b, 10
    br c, p1, p2
p1:
    call shared(5)
    halt 0
p2:
    call shared(5)
    halt 0
}
func shared(tag) {
entry:
    ret
}
"#;

    #[test]
    fn short_lived_memory_spike_is_observed() {
        // Regression (ISSUE 3): the peak used to be sampled only every
        // 64 steps, so a run that forks (two live states) and dies
        // within a few steps reported peak_mem_bytes == 0. The peak is
        // now maintained event-driven at fallback pushes, so the spike
        // — strictly more memory than a single fresh state — must be
        // observed even on this short Unsat run.
        let q = primitives(&[(&[], &[0x13d])]);
        let p = parse_program(FORK_THEN_MISMATCH).unwrap();
        let single_state = SymState::initial(&p).approx_bytes();
        let (outcome, stats) = run_configured(
            FORK_THEN_MISMATCH,
            "shared",
            &q,
            DirectedConfig {
                file_len: 8,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(matches!(outcome, DirectedOutcome::Unsat), "{outcome:?}");
        assert!(
            stats.total_steps < 64,
            "the spike must fall between polls for this regression test \
             to mean anything (got {} steps)",
            stats.total_steps
        );
        assert!(
            stats.peak_mem_bytes > single_state,
            "peak {} must exceed one fresh state ({single_state}): the \
             fork held two live states",
            stats.peak_mem_bytes
        );
        assert_eq!(stats.peak_fallback_depth, 1);
        assert!(stats.backtracks >= 1);
    }

    #[test]
    fn every_outcome_variant_carries_stats() {
        // Regression (ISSUE 3): wall_seconds/total_steps used to be
        // hand-assigned on each of ~8 early exits; a new exit path could
        // silently return zeros. All bookkeeping now funnels through the
        // single finish point in run(), checked here variant by variant.
        let gated_q = || primitives(&[(&[(9, 0x7F)], &[3])]);
        let config = |file_len| DirectedConfig {
            file_len,
            ..DirectedConfig::default()
        };

        // PocGenerated: a full successful run records everything.
        let (outcome, stats) = run_configured(GATED, "shared", &gated_q(), config(16), None);
        assert!(outcome.generated(), "{outcome:?}");
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.total_steps > 0);
        assert!(stats.peak_mem_bytes > 0);
        assert!(stats.solver_calls > 0, "quick_feasible + final solve");
        assert!(stats.peak_fallback_depth >= 1, "the rejected gate arms");

        // EpUnreachable: decided before stepping, but the clock ran.
        let unreachable = r#"
func main() {
entry:
    halt 0
}
func shared(fd) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[(0, 1)], &[])]);
        let (outcome, stats) = run_configured(unreachable, "shared", &q, config(8), None);
        assert!(matches!(outcome, DirectedOutcome::EpUnreachable));
        assert!(stats.wall_seconds > 0.0);
        assert_eq!(stats.total_steps, 0);

        // Unsat: the mismatch runs are short but fully accounted.
        let q = primitives(&[(&[], &[0x13d])]);
        let (outcome, stats) = run_configured(FORK_THEN_MISMATCH, "shared", &q, config(8), None);
        assert!(matches!(outcome, DirectedOutcome::Unsat));
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.total_steps > 0);
        assert!(stats.solver_calls > 0);

        // ProgramDead: every path rejected by an impossible gate.
        let dead = r#"
func main() {
entry:
    fd = open
    a = getc fd
    b = add a, 1
    c = eq a, b
    br c, go, bad
go:
    call shared(fd)
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[], &[3])]);
        let (outcome, stats) = run_configured(dead, "shared", &q, config(8), None);
        assert!(matches!(outcome, DirectedOutcome::ProgramDead));
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.total_steps > 0);

        // LoopBudget: θ = 0 charges every revisited target, so the very
        // first fork abandons both arms as loop states.
        let (outcome, stats) = run_configured(
            GATED,
            "shared",
            &gated_q(),
            DirectedConfig {
                file_len: 16,
                theta: 0,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(
            matches!(outcome, DirectedOutcome::LoopBudget),
            "{outcome:?}"
        );
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.total_steps > 0);
        assert!(stats.loop_retries >= 2, "both fork arms charged");

        // Budget: the step budget stops the run at an exact count.
        let (outcome, stats) = run_configured(
            GATED,
            "shared",
            &gated_q(),
            DirectedConfig {
                file_len: 16,
                step_budget: 2,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(matches!(outcome, DirectedOutcome::Budget), "{outcome:?}");
        assert!(stats.wall_seconds > 0.0);
        assert_eq!(stats.total_steps, 2);

        // Cancelled: an expired deadline still stamps the clock.
        let (outcome, stats) = run_configured(
            GATED,
            "shared",
            &gated_q(),
            config(16),
            Some(CancelToken::with_deadline(std::time::Duration::ZERO)),
        );
        assert!(matches!(outcome, DirectedOutcome::Cancelled));
        assert!(stats.wall_seconds > 0.0);
        assert_eq!(stats.total_steps, 0);
    }

    #[test]
    fn death_notes_describe_the_dying_state() {
        // ProgramDead: the gate's go-arm is infeasible, so the only
        // surviving path walks the reject arm and exits — the last death
        // the verdict is decided on is that clean exit.
        let dead = r#"
func main() {
entry:
    fd = open
    a = getc fd
    b = add a, 1
    c = eq a, b
    br c, go, bad
go:
    call shared(fd)
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[], &[3])]);
        let (outcome, stats) = run_configured(
            dead,
            "shared",
            &q,
            DirectedConfig {
                file_len: 8,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(matches!(outcome, DirectedOutcome::ProgramDead));
        let death = stats.death.expect("program-dead run records a death");
        assert_eq!(death.reason, "exited");
        assert_eq!(death.ep_entries, 0, "died before ever entering ep");
        assert!(death.constraints > 0, "the gate constraint was collected");
        assert!(death.last_constraint.is_some());

        // Cancelled: the death note names the deadline.
        let (outcome, stats) = run_configured(
            GATED,
            "shared",
            &primitives(&[(&[(9, 0x7F)], &[3])]),
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            Some(CancelToken::with_deadline(std::time::Duration::ZERO)),
        );
        assert!(matches!(outcome, DirectedOutcome::Cancelled));
        assert_eq!(stats.death.expect("deadline death").reason, "deadline");

        // A successful run keeps whatever death happened on a rejected
        // sibling path but never loses the verdict.
        let (outcome, _) = run_configured(
            GATED,
            "shared",
            &primitives(&[(&[(9, 0x7F)], &[3])]),
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(outcome.generated());
    }

    #[test]
    fn injected_loop_dead_forces_the_loop_budget_outcome() {
        use octo_faults::{FaultPlan, FaultSite, JobFaults};
        use std::sync::Arc;

        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let plan = Arc::new(FaultPlan::new(0).nth(FaultSite::DirectedLoopDead, None, 1));
        let ctx = Arc::new(JobFaults::new(&plan, 0));
        let config = DirectedConfig {
            file_len: 16,
            ..DirectedConfig::default()
        };
        {
            let _g = octo_faults::install(&ctx);
            let (outcome, stats) = run_configured(GATED, "shared", &q, config, None);
            assert!(
                matches!(outcome, DirectedOutcome::LoopBudget),
                "{outcome:?}"
            );
            assert_eq!(stats.total_steps, 0, "forced before stepping");
            assert_eq!(stats.death.expect("forced death").reason, "fault-injected");
        }
        // Occurrence 2 (a retry attempt) runs clean.
        let _g = octo_faults::install(&ctx);
        let (outcome, _) = run_configured(GATED, "shared", &q, config, None);
        assert!(outcome.generated(), "{outcome:?}");
    }

    #[test]
    #[should_panic(expected = "injected panic: directed engine")]
    fn injected_panic_fires_inside_the_engine() {
        use octo_faults::{FaultPlan, FaultSite, JobFaults};
        use std::sync::Arc;

        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let plan = Arc::new(FaultPlan::new(0).nth(FaultSite::DirectedPanic, None, 1));
        let ctx = Arc::new(JobFaults::new(&plan, 0));
        let _g = octo_faults::install(&ctx);
        let _ = run_configured(
            GATED,
            "shared",
            &q,
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            None,
        );
    }

    #[test]
    fn injected_hang_is_escalated_by_the_watchdog_as_hung() {
        use octo_faults::{FaultPlan, FaultSite, JobFaults};
        use octo_sched::{Watchdog, WatchdogConfig};
        use std::sync::Arc;

        let q = primitives(&[(&[(9, 0x7F)], &[3])]);
        let plan = Arc::new(FaultPlan::new(0).nth(FaultSite::DirectedHang, None, 1));
        let ctx = Arc::new(JobFaults::new(&plan, 0));
        let _g = octo_faults::install(&ctx);

        let dog = Watchdog::spawn(WatchdogConfig {
            quiet: std::time::Duration::from_millis(50),
            poll: std::time::Duration::from_millis(5),
        });
        let token = CancelToken::new(); // no deadline: only the watchdog can free it
        let _watch = dog.watch(&token);
        let (outcome, stats) = run_configured(
            GATED,
            "shared",
            &q,
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            Some(token.clone()),
        );
        assert!(matches!(outcome, DirectedOutcome::Cancelled), "{outcome:?}");
        assert!(
            token.was_escalated(),
            "the hang must come from the watchdog"
        );
        assert_eq!(stats.death.expect("hang death").reason, "hung");
        assert_eq!(dog.fired(), 1);

        // Without a token the hang site is skipped entirely: the engine
        // must not wedge unrecoverably.
        let ctx2 = Arc::new(JobFaults::new(&plan, 0));
        let _g2 = octo_faults::install(&ctx2);
        let (outcome, _) = run_configured(
            GATED,
            "shared",
            &q,
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(outcome.generated(), "{outcome:?}");
        assert_eq!(
            ctx2.fired(),
            0,
            "hang site is not consulted without a token"
        );
    }

    #[test]
    fn flight_record_covers_a_directed_run() {
        use octo_trace::{FlightRecorder, TraceKind};
        use std::sync::Arc;

        let rec = Arc::new(FlightRecorder::new(4096));
        let guard = octo_trace::install(&rec, 5, 2);
        let (outcome, _) = run_configured(
            GATED,
            "shared",
            &primitives(&[(&[(9, 0x7F)], &[3])]),
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            None,
        );
        drop(guard);
        assert!(outcome.generated());
        let events = rec.snapshot();
        assert!(events.iter().all(|e| e.job == 5 && e.worker == 2));
        let has = |f: &dyn Fn(&TraceKind) -> bool| events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, TraceKind::FallbackPush { .. })));
        assert!(has(&|k| matches!(
            k,
            TraceKind::BunchAsserted { entry: 1, .. }
        )));
        assert!(has(&|k| matches!(
            k,
            TraceKind::EngineOutcome {
                outcome: "poc-generated",
                ..
            }
        )));
        // The solver was exercised under the recorder... but solver-side
        // begin/end events are wired in octo-solver; here we only assert
        // the engine's own events. A run without a recorder must emit
        // nothing new.
        let before = rec.len();
        let (outcome, _) = run_configured(
            GATED,
            "shared",
            &primitives(&[(&[(9, 0x7F)], &[3])]),
            DirectedConfig {
                file_len: 16,
                ..DirectedConfig::default()
            },
            None,
        );
        assert!(outcome.generated());
        assert_eq!(rec.len(), before, "no recorder installed, no events");
    }

    #[test]
    fn program_dead_when_gate_rejects_everything() {
        // The gate requires getc(fd) == getc(fd)+1 — impossible; no path
        // reaches shared.
        let src = r#"
func main() {
entry:
    fd = open
    a = getc fd
    b = add a, 1
    c = eq a, b
    br c, go, bad
go:
    call shared(fd)
    halt 0
bad:
    halt 1
}
func shared(fd) {
entry:
    ret
}
"#;
        let q = primitives(&[(&[], &[3])]);
        let (outcome, _) = run_directed(src, "shared", &q, 8);
        assert!(
            matches!(outcome, DirectedOutcome::ProgramDead),
            "{outcome:?}"
        );
    }
}
