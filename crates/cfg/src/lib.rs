//! # octo-cfg — control-flow graph recovery and backward path finding.
//!
//! This crate substitutes for angr's CFG machinery (paper §III-B, §IV-B).
//! The paper distinguishes two CFG flavours and so do we:
//!
//! * **Static** ([`CfgMode::Static`]): derived from direct terminator and
//!   call edges only. Fast and exact for those edges, but an indirect jump
//!   (`ijmp`) contributes *no* edges — "it cannot contain the indirect call
//!   edge that appears only when a program is running".
//! * **Dynamic** ([`CfgMode::Dynamic`]): additionally resolves indirect
//!   jumps through an address-taken analysis (every block whose address is
//!   materialised with `baddr` inside the function is a candidate target,
//!   and address-taken functions are candidates for `icall`). When an
//!   `ijmp` has *no* discoverable candidates — its target is computed by
//!   raw arithmetic — recovery fails with [`CfgError`]. This reproduces the
//!   paper's Idx-15 failure, where angr "did not correctly create the CFG
//!   of pdfinfo (due to a bug in its codebase)".
//!
//! On top of the recovered graph, [`DistanceMap`] computes per-node
//! distances to a target function by *backward* breadth-first search over
//! the interprocedural supergraph — the paper's "backward path finding",
//! which avoids tracing forward through every branch of `T`. The map
//! answers the two questions the pipeline asks:
//!
//! 1. is `ep` reachable from the entry of `T` at all (verdict case ii), and
//! 2. at a branch, which successor makes progress toward `ep` (the
//!    direction oracle of directed symbolic execution).

//!
//! ```
//! use octo_cfg::{build_cfg, CfgMode, DistanceMap};
//! use octo_ir::parse::parse_program;
//!
//! let p = parse_program(
//!     "func main() {\nentry:\n call helper()\n halt 0\n}\n\
//!      func helper() {\nentry:\n ret\n}\n",
//! )?;
//! let cfg = build_cfg(&p, CfgMode::Dynamic).expect("no indirect jumps");
//! let helper = p.func_by_name("helper").expect("exists");
//! let map = DistanceMap::compute(&p, &cfg, helper);
//! assert!(map.reaches(p.entry(), octo_ir::BlockId(0)));
//! # Ok::<(), octo_ir::parse::ParseError>(())
//! ```
#![warn(missing_docs)]

pub mod distance;
pub mod graph;
pub mod loops;

pub use distance::{shortest_path, DistanceMap, Node};
pub use graph::{build_cfg, build_cfg_with_hints, Cfg, CfgError, CfgHints, CfgMode, FuncCfg};
pub use loops::{natural_loops, Dominators, NaturalLoop};
