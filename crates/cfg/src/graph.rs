//! CFG construction (static and dynamic modes).

use std::fmt;

use octo_ir::{BlockId, FuncId, Inst, Program, Terminator};

/// Which recovery algorithm to use (paper §IV-B discusses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CfgMode {
    /// Direct edges only; indirect jumps contribute no edges.
    Static,
    /// Direct edges plus address-taken resolution of indirect jumps and
    /// calls. Fails when an indirect jump has no discoverable targets.
    #[default]
    Dynamic,
}

/// CFG recovery failure (dynamic mode only).
///
/// This is the observable the paper reports for Idx-15: the tool cannot
/// build a usable CFG of the target binary, so verification fails —
/// classified as *Failure*, not Type-III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgError {
    /// Function whose CFG could not be recovered.
    pub func: String,
    /// Block whose indirect terminator is unresolvable.
    pub block: BlockId,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CFG recovery failed in `{}` at {}: {}",
            self.func, self.block, self.reason
        )
    }
}

impl std::error::Error for CfgError {}

/// Statically-derived resolutions of indirect control flow, consumed by
/// dynamic-mode recovery in place of the address-taken over-approximation.
///
/// Produced by `octo-lint`'s constant-propagation pass: when the value
/// flowing into an `ijmp`/`icall` is a compile-time constant with code
/// provenance, the exact target set replaces the candidate sweep. A hint
/// also rescues functions dynamic mode would otherwise reject (an
/// indirect jump with no address-taken candidates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfgHints {
    /// `(func, block)` → exact successor set of that block's `ijmp`.
    pub ijmp_targets: Vec<(FuncId, BlockId, Vec<BlockId>)>,
    /// `(func, block)` → exact callee set of that block's `icall`s.
    pub icall_targets: Vec<(FuncId, BlockId, Vec<FuncId>)>,
}

impl CfgHints {
    /// Whether no hints are recorded.
    pub fn is_empty(&self) -> bool {
        self.ijmp_targets.is_empty() && self.icall_targets.is_empty()
    }

    fn ijmp(&self, func: FuncId, block: BlockId) -> Option<&[BlockId]> {
        self.ijmp_targets
            .iter()
            .find(|(f, b, _)| *f == func && *b == block)
            .map(|(_, _, ts)| ts.as_slice())
    }

    fn icall(&self, func: FuncId, block: BlockId) -> Option<&[FuncId]> {
        self.icall_targets
            .iter()
            .find(|(f, b, _)| *f == func && *b == block)
            .map(|(_, _, ts)| ts.as_slice())
    }
}

/// Recovered control flow for one function.
#[derive(Debug, Clone, Default)]
pub struct FuncCfg {
    /// Intraprocedural successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Intraprocedural predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Call edges: `(block, callee)` for every direct call plus every
    /// resolved indirect call candidate.
    pub calls: Vec<(BlockId, FuncId)>,
    /// Blocks ending in an indirect jump that static mode left unresolved.
    pub unresolved_indirect: Vec<BlockId>,
}

/// Recovered control flow for a whole program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Per-function graphs, indexed by `FuncId`.
    pub funcs: Vec<FuncCfg>,
    /// Mode the graph was built with.
    pub mode: CfgMode,
}

impl Cfg {
    /// The per-function graph for `func`.
    ///
    /// # Panics
    /// Panics if `func` is out of range for the originating program.
    pub fn func(&self, func: FuncId) -> &FuncCfg {
        &self.funcs[func.0 as usize]
    }

    /// Total number of intraprocedural edges.
    pub fn edge_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.succs.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Total number of call edges.
    pub fn call_edge_count(&self) -> usize {
        self.funcs.iter().map(|f| f.calls.len()).sum()
    }

    /// Whether any block's indirect control flow is unresolved (possible in
    /// static mode; dynamic mode errors instead).
    pub fn has_unresolved_indirect(&self) -> bool {
        self.funcs.iter().any(|f| !f.unresolved_indirect.is_empty())
    }
}

/// Builds the CFG of `program` in the requested mode.
///
/// # Errors
/// In [`CfgMode::Dynamic`], fails with [`CfgError`] when a function contains
/// an indirect jump and no block addresses are taken anywhere in that
/// function — there is nothing for address-taken resolution to propose, so
/// the recovered graph would silently miss real edges.
pub fn build_cfg(program: &Program, mode: CfgMode) -> Result<Cfg, CfgError> {
    build_cfg_with_hints(program, mode, &CfgHints::default())
}

/// Builds the CFG of `program`, consulting `hints` for indirect flow.
///
/// Behaves exactly like [`build_cfg`] except that in [`CfgMode::Dynamic`]
/// a hinted `ijmp` block takes its successors from the hint (even when no
/// block address is taken in the function) and a hinted `icall` block
/// takes its call edges from the hint instead of every address-taken
/// function.
///
/// # Errors
/// Same as [`build_cfg`]: an unhinted indirect jump in dynamic mode with
/// no address-taken candidates fails with [`CfgError`].
pub fn build_cfg_with_hints(
    program: &Program,
    mode: CfgMode,
    hints: &CfgHints,
) -> Result<Cfg, CfgError> {
    // Functions whose address is taken anywhere in the program are indirect
    // call candidates.
    let mut addr_taken_funcs: Vec<FuncId> = Vec::new();
    for (_, f) in program.iter() {
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::FuncAddr { func, .. } = inst {
                    if !addr_taken_funcs.contains(func) {
                        addr_taken_funcs.push(*func);
                    }
                }
            }
        }
    }

    let mut funcs = Vec::with_capacity(program.function_count());
    for (fid, f) in program.iter() {
        let n = f.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut calls: Vec<(BlockId, FuncId)> = Vec::new();
        let mut unresolved: Vec<BlockId> = Vec::new();

        // Blocks whose address is taken within this function: the candidate
        // targets for its indirect jumps.
        let mut addr_taken_blocks: Vec<BlockId> = Vec::new();
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::BlockAddr { block, .. } = inst {
                    if !addr_taken_blocks.contains(block) {
                        addr_taken_blocks.push(*block);
                    }
                }
            }
        }

        for (bi, b) in f.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            for inst in &b.insts {
                match inst {
                    Inst::Call { callee, .. } => calls.push((bid, *callee)),
                    Inst::CallIndirect { .. } if mode == CfgMode::Dynamic => {
                        match hints.icall(fid, bid) {
                            Some(exact) => calls.extend(exact.iter().map(|cand| (bid, *cand))),
                            None => calls.extend(addr_taken_funcs.iter().map(|cand| (bid, *cand))),
                        }
                    }
                    _ => {}
                }
            }
            match &b.term {
                Terminator::JmpIndirect { .. } => match mode {
                    CfgMode::Static => unresolved.push(bid),
                    CfgMode::Dynamic => {
                        if let Some(exact) = hints.ijmp(fid, bid) {
                            succs[bi].extend(exact.iter().copied());
                        } else if addr_taken_blocks.is_empty() {
                            return Err(CfgError {
                                func: f.name.clone(),
                                block: bid,
                                reason: "indirect jump with no address-taken candidate \
                                         targets; cannot recover edges"
                                    .into(),
                            });
                        } else {
                            succs[bi].extend(addr_taken_blocks.iter().copied());
                        }
                    }
                },
                term => succs[bi].extend(term.static_successors()),
            }
            succs[bi].sort_by_key(|b| b.0);
            succs[bi].dedup();
        }

        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bi, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.0 as usize].push(BlockId(bi as u32));
            }
        }
        calls.sort_by_key(|(b, f)| (b.0, f.0));
        calls.dedup();

        funcs.push(FuncCfg {
            succs,
            preds,
            calls,
            unresolved_indirect: unresolved,
        });
    }
    Ok(Cfg { funcs, mode })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    const DISPATCH: &str = r#"
func main() {
entry:
    fd = open
    v = getc fd
    a = baddr blk_a
    b = baddr blk_b
    c = eq v, 1
    br c, pick_a, pick_b
pick_a:
    t = a
    jmp go
pick_b:
    t = b
    jmp go
go:
    ijmp t
blk_a:
    halt 1
blk_b:
    halt 2
}
"#;

    #[test]
    fn static_mode_leaves_indirect_unresolved() {
        let p = parse_program(DISPATCH).unwrap();
        let cfg = build_cfg(&p, CfgMode::Static).unwrap();
        let f = cfg.func(p.entry());
        assert!(cfg.has_unresolved_indirect());
        // the `go` block has no successors statically
        let go = p.func(p.entry()).block_by_label("go").unwrap();
        assert!(f.succs[go.0 as usize].is_empty());
        assert_eq!(f.unresolved_indirect, vec![go]);
    }

    #[test]
    fn dynamic_mode_resolves_address_taken_targets() {
        let p = parse_program(DISPATCH).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let main = p.func(p.entry());
        let f = cfg.func(p.entry());
        let go = main.block_by_label("go").unwrap();
        let a = main.block_by_label("blk_a").unwrap();
        let b = main.block_by_label("blk_b").unwrap();
        let mut ss = f.succs[go.0 as usize].clone();
        ss.sort_by_key(|x| x.0);
        assert_eq!(ss, vec![a, b]);
        assert!(!cfg.has_unresolved_indirect());
    }

    #[test]
    fn dynamic_mode_fails_on_computed_goto_without_candidates() {
        // The Idx-15 shape: the jump target is pure arithmetic; no baddr.
        let src = r#"
func main() {
entry:
    t = 0xB10C_0000_0000_0000
    ijmp t
dead:
    halt 0
}
"#;
        let p = parse_program(src).unwrap();
        let err = build_cfg(&p, CfgMode::Dynamic).unwrap_err();
        assert_eq!(err.func, "main");
        assert!(err.reason.contains("no address-taken"));
        // Static mode still "succeeds" (with missing edges).
        assert!(build_cfg(&p, CfgMode::Static).is_ok());
    }

    #[test]
    fn call_edges_recorded() {
        let src = r#"
func main() {
entry:
    r = call f(1)
    g = faddr h
    s = icall g(2)
    halt s
}
func f(a) {
entry:
    ret a
}
func h(a) {
entry:
    ret a
}
"#;
        let p = parse_program(src).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let f = cfg.func(p.entry());
        let names: Vec<&str> = f
            .calls
            .iter()
            .map(|(_, callee)| p.func(*callee).name.as_str())
            .collect();
        assert_eq!(names, vec!["f", "h"]);
        // Static mode sees only the direct call.
        let cfg_s = build_cfg(&p, CfgMode::Static).unwrap();
        assert_eq!(cfg_s.func(p.entry()).calls.len(), 1);
    }

    #[test]
    fn hints_narrow_indirect_jump_edges() {
        let p = parse_program(DISPATCH).unwrap();
        let main = p.func(p.entry());
        let go = main.block_by_label("go").unwrap();
        let a = main.block_by_label("blk_a").unwrap();
        let hints = CfgHints {
            ijmp_targets: vec![(p.entry(), go, vec![a])],
            icall_targets: Vec::new(),
        };
        let cfg = build_cfg_with_hints(&p, CfgMode::Dynamic, &hints).unwrap();
        assert_eq!(cfg.func(p.entry()).succs[go.0 as usize], vec![a]);
    }

    #[test]
    fn hints_rescue_computed_goto_and_narrow_icalls() {
        // No baddr anywhere: plain dynamic mode fails, a hint rescues it.
        let src = r#"
func main() {
entry:
    t = 7
    ijmp t
other:
    g = faddr f
    h = faddr g2
    s = icall g(2)
    halt s
}
func f(a) {
entry:
    ret a
}
func g2(a) {
entry:
    ret a
}
"#;
        let p = parse_program(src).unwrap();
        assert!(build_cfg(&p, CfgMode::Dynamic).is_err());
        let main = p.func(p.entry());
        let entry = main.block_by_label("entry").unwrap();
        let other = main.block_by_label("other").unwrap();
        let f = p.func_by_name("f").unwrap();
        let hints = CfgHints {
            ijmp_targets: vec![(p.entry(), entry, vec![other])],
            icall_targets: vec![(p.entry(), other, vec![f])],
        };
        let cfg = build_cfg_with_hints(&p, CfgMode::Dynamic, &hints).unwrap();
        let mc = cfg.func(p.entry());
        assert_eq!(mc.succs[entry.0 as usize], vec![other]);
        // The icall contributes only the hinted callee, not both faddr'd funcs.
        assert_eq!(mc.calls, vec![(other, f)]);
    }

    #[test]
    fn preds_mirror_succs() {
        let p = parse_program(DISPATCH).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let f = cfg.func(p.entry());
        for (bi, ss) in f.succs.iter().enumerate() {
            for s in ss {
                assert!(f.preds[s.0 as usize].contains(&BlockId(bi as u32)));
            }
        }
        assert!(cfg.edge_count() >= 6);
    }
}
