//! Dominator and natural-loop analysis.
//!
//! The paper's directed executor treats revisited blocks as *loop states*
//! bounded by θ (§III-B). This module provides the static counterpart:
//! dominator computation and natural-loop detection per function, used by
//! the ablation benches to relate a target's loop structure to the θ
//! budget it needs, and generally useful to downstream consumers of the
//! CFG.

use octo_ir::{BlockId, FuncId, Program};

use crate::graph::Cfg;

/// Immediate-dominator tree of one function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry block
    /// is its own idom. Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators for `func` with the iterative algorithm of
    /// Cooper–Harvey–Kennedy over the recovered CFG.
    pub fn compute(program: &Program, cfg: &Cfg, func: FuncId) -> Dominators {
        let fcfg = cfg.func(func);
        let n = program.func(func).blocks.len();
        // Reverse post-order over the block graph.
        let rpo = reverse_postorder(n, &fcfg.succs);
        let mut order_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            order_index[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds = &fcfg.preds[b.0 as usize];
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p.0 as usize].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// The immediate dominator of `b` (`None` if `b` is the entry or
    /// unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0 as usize] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom[b.0 as usize].is_some()
    }
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.0 as usize] > order[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed");
        }
        while order[b.0 as usize] > order[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed");
        }
    }
    a
}

fn reverse_postorder(n: usize, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS from the entry.
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    visited[0] = true;
    while let Some((b, i)) = stack.pop() {
        let ss = &succs[b.0 as usize];
        if i < ss.len() {
            stack.push((b, i + 1));
            let next = ss[i];
            if !visited[next.0 as usize] {
                visited[next.0 as usize] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// The source of the back edge.
    pub latch: BlockId,
    /// All blocks in the loop body (including header and latch), sorted.
    pub body: Vec<BlockId>,
}

/// Finds the natural loops of `func`: one per back edge `latch → header`
/// where the header dominates the latch.
pub fn natural_loops(program: &Program, cfg: &Cfg, func: FuncId) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(program, cfg, func);
    let fcfg = cfg.func(func);
    let mut loops = Vec::new();
    for (bi, ss) in fcfg.succs.iter().enumerate() {
        let latch = BlockId(bi as u32);
        if !dom.reachable(latch) {
            continue;
        }
        for &header in ss {
            if dom.dominates(header, latch) {
                // Body: header plus everything that reaches the latch
                // without passing through the header.
                let mut body = vec![header];
                let mut stack = vec![latch];
                while let Some(b) = stack.pop() {
                    if body.contains(&b) {
                        continue;
                    }
                    body.push(b);
                    for &p in &fcfg.preds[b.0 as usize] {
                        stack.push(p);
                    }
                }
                body.sort_by_key(|b| b.0);
                loops.push(NaturalLoop {
                    header,
                    latch,
                    body,
                });
            }
        }
    }
    loops.sort_by_key(|l| (l.header.0, l.latch.0));
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    fn setup(src: &str) -> (octo_ir::Program, Cfg) {
        let p = parse_program(src).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        (p, cfg)
    }

    const LOOPY: &str = r#"
func main() {
entry:
    fd = open
    i = 0
    jmp header
header:
    c = ult i, 10
    br c, body, exit
body:
    i = add i, 1
    jmp header
exit:
    halt i
}
"#;

    #[test]
    fn dominators_of_diamond() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    br b, left, right
left:
    jmp join
right:
    jmp join
join:
    halt 0
}
"#;
        let (p, cfg) = setup(src);
        let dom = Dominators::compute(&p, &cfg, p.entry());
        let f = p.func(p.entry());
        let entry = f.block_by_label("entry").unwrap();
        let left = f.block_by_label("left").unwrap();
        let right = f.block_by_label("right").unwrap();
        let join = f.block_by_label("join").unwrap();
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(left, join));
        assert!(!dom.dominates(right, join));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(left), Some(entry));
    }

    #[test]
    fn simple_loop_detected() {
        let (p, cfg) = setup(LOOPY);
        let loops = natural_loops(&p, &cfg, p.entry());
        assert_eq!(loops.len(), 1);
        let f = p.func(p.entry());
        let header = f.block_by_label("header").unwrap();
        let body = f.block_by_label("body").unwrap();
        assert_eq!(loops[0].header, header);
        assert_eq!(loops[0].latch, body);
        assert_eq!(loops[0].body, vec![header, body]);
    }

    #[test]
    fn nested_loops_detected() {
        let src = r#"
func main() {
entry:
    jmp outer
outer:
    jmp inner
inner:
    fd2 = 0
    c = eq fd2, 1
    br c, inner, outer_latch
outer_latch:
    c2 = eq fd2, 2
    br c2, outer, exit
exit:
    halt 0
}
"#;
        let (p, cfg) = setup(src);
        let loops = natural_loops(&p, &cfg, p.entry());
        assert_eq!(loops.len(), 2);
        let f = p.func(p.entry());
        let outer = f.block_by_label("outer").unwrap();
        let inner = f.block_by_label("inner").unwrap();
        let headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
        assert!(headers.contains(&outer));
        assert!(headers.contains(&inner));
        // The outer loop body contains the inner loop entirely.
        let outer_loop = loops.iter().find(|l| l.header == outer).unwrap();
        let inner_loop = loops.iter().find(|l| l.header == inner).unwrap();
        for b in &inner_loop.body {
            assert!(outer_loop.body.contains(b));
        }
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let src = "func main() {\nentry:\n halt 0\n}\n";
        let (p, cfg) = setup(src);
        assert!(natural_loops(&p, &cfg, p.entry()).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let src = r#"
func main() {
entry:
    halt 0
island:
    jmp island
}
"#;
        let (p, cfg) = setup(src);
        let dom = Dominators::compute(&p, &cfg, p.entry());
        let f = p.func(p.entry());
        let island = f.block_by_label("island").unwrap();
        assert!(!dom.reachable(island));
        // Loops in unreachable code are not reported.
        assert!(natural_loops(&p, &cfg, p.entry()).is_empty());
    }

    #[test]
    fn corpus_like_copy_loop_shape() {
        // The read_image copy-loop shape: one loop, header dominates body.
        let src = r#"
func main() {
entry:
    fd = open
    size = getc fd
    buf = alloc 64
    i = 0
    jmp copy
copy:
    done = uge i, size
    br done, fin, body
body:
    v = getc fd
    p = add buf, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    halt 0
}
"#;
        let (p, cfg) = setup(src);
        let loops = natural_loops(&p, &cfg, p.entry());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].body.len(), 2);
    }
}
