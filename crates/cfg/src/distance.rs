//! Backward path finding over the interprocedural supergraph.
//!
//! OctoPoCs knows the *destination* (`ep`) and needs a path from the entry
//! of `T` to it; tracing forward would explore every branch, so the paper
//! traces backward from `ep` (§III-B, "Backward path finding"). The same
//! reverse breadth-first search yields, as a by-product, the distance of
//! every supergraph node to `ep` — which is also the distance metric the
//! AFLGo baseline schedules seeds by.

use std::collections::{HashMap, VecDeque};

use octo_ir::{BlockId, FuncId, Program};

use crate::graph::Cfg;

/// A supergraph node: a basic block within a function.
pub type Node = (FuncId, BlockId);

/// Distances (in supergraph edges) from every node to the entry block of a
/// target function.
#[derive(Debug, Clone)]
pub struct DistanceMap {
    target: FuncId,
    dist: HashMap<Node, u32>,
}

impl DistanceMap {
    /// Computes distances to `(target, entry)` by reverse BFS.
    ///
    /// Forward edges considered: intraprocedural successors and call edges
    /// `block → (callee, entry)`. A node absent from the map cannot reach
    /// the target at all.
    pub fn compute(program: &Program, cfg: &Cfg, target: FuncId) -> DistanceMap {
        // Build the reverse adjacency implicitly: we need, for each node,
        // its forward successors; we BFS over reversed edges, so collect
        // predecessors: intra preds + "caller" edges (callee entry ←
        // calling block).
        let mut rev: HashMap<Node, Vec<Node>> = HashMap::new();
        for (fid, func) in program.iter() {
            let fcfg = cfg.func(fid);
            for (bi, ss) in fcfg.succs.iter().enumerate() {
                let from = (fid, BlockId(bi as u32));
                for s in ss {
                    rev.entry((fid, *s)).or_default().push(from);
                }
            }
            for (block, callee) in &fcfg.calls {
                let callee_entry = (*callee, program.func(*callee).entry());
                rev.entry(callee_entry).or_default().push((fid, *block));
            }
            let _ = func;
        }

        let mut dist = HashMap::new();
        let start: Node = (target, program.func(target).entry());
        dist.insert(start, 0u32);
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            let d = dist[&node];
            if let Some(preds) = rev.get(&node) {
                for p in preds {
                    if !dist.contains_key(p) {
                        dist.insert(*p, d + 1);
                        queue.push_back(*p);
                    }
                }
            }
        }
        DistanceMap { target, dist }
    }

    /// The target function this map measures distance to.
    pub fn target(&self) -> FuncId {
        self.target
    }

    /// Distance of a node, or `None` if the node cannot reach the target.
    pub fn get(&self, func: FuncId, block: BlockId) -> Option<u32> {
        self.dist.get(&(func, block)).copied()
    }

    /// Whether the target is reachable from `node`.
    pub fn reaches(&self, func: FuncId, block: BlockId) -> bool {
        self.dist.contains_key(&(func, block))
    }

    /// Number of nodes that can reach the target.
    pub fn reaching_nodes(&self) -> usize {
        self.dist.len()
    }

    /// The largest finite distance in the map (0 when only the target
    /// itself reaches it). Used to normalise seed distances in the AFLGo
    /// baseline.
    pub fn max_distance(&self) -> u32 {
        self.dist.values().copied().max().unwrap_or(0)
    }
}

/// Extracts one shortest path `from → … → (target, entry)` using a distance
/// map, following forward edges of strictly decreasing distance.
///
/// Returns `None` when the target is unreachable from `from`.
pub fn shortest_path(
    program: &Program,
    cfg: &Cfg,
    map: &DistanceMap,
    from: Node,
) -> Option<Vec<Node>> {
    let mut path = vec![from];
    let mut cur = from;
    let target_entry: Node = (map.target(), program.func(map.target()).entry());
    let mut budget = map.reaching_nodes() + 1;
    while cur != target_entry {
        budget = budget.checked_sub(1)?;
        let d = map.get(cur.0, cur.1)?;
        let (fid, bid) = cur;
        let fcfg = cfg.func(fid);
        // Forward successors: intra edges, then call edges out of this block.
        let mut next: Option<Node> = None;
        for s in &fcfg.succs[bid.0 as usize] {
            if map.get(fid, *s).is_some_and(|ds| ds < d) {
                next = Some((fid, *s));
                break;
            }
        }
        if next.is_none() {
            for (block, callee) in &fcfg.calls {
                if *block == bid {
                    let entry = (*callee, program.func(*callee).entry());
                    if map.get(entry.0, entry.1).is_some_and(|ds| ds < d) {
                        next = Some(entry);
                        break;
                    }
                }
            }
        }
        cur = next?;
        path.push(cur);
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    const PROGRAM: &str = r#"
func main() {
entry:
    fd = open
    v = getc fd
    c = eq v, 1
    br c, towards, away
towards:
    call middle()
    halt 0
away:
    halt 1
}
func middle() {
entry:
    call target_fn()
    ret
}
func target_fn() {
entry:
    ret
}
func unrelated() {
entry:
    ret
}
"#;

    fn setup() -> (octo_ir::Program, Cfg, DistanceMap) {
        let p = parse_program(PROGRAM).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let target = p.func_by_name("target_fn").unwrap();
        let map = DistanceMap::compute(&p, &cfg, target);
        (p, cfg, map)
    }

    #[test]
    fn distances_decrease_along_call_chain() {
        let (p, _, map) = setup();
        let main = p.entry();
        let middle = p.func_by_name("middle").unwrap();
        let target = p.func_by_name("target_fn").unwrap();
        let d_main = map.get(main, BlockId(0)).unwrap();
        let d_middle = map.get(middle, BlockId(0)).unwrap();
        let d_target = map.get(target, BlockId(0)).unwrap();
        assert_eq!(d_target, 0);
        assert!(d_middle < d_main);
        assert!(d_middle >= 1);
    }

    #[test]
    fn branch_successors_distinguish_direction() {
        let (p, _, map) = setup();
        let main_f = p.func(p.entry());
        let towards = main_f.block_by_label("towards").unwrap();
        let away = main_f.block_by_label("away").unwrap();
        assert!(map.reaches(p.entry(), towards));
        assert!(!map.reaches(p.entry(), away));
    }

    #[test]
    fn unrelated_function_cannot_reach() {
        let (p, _, map) = setup();
        let unrelated = p.func_by_name("unrelated").unwrap();
        assert!(!map.reaches(unrelated, BlockId(0)));
    }

    #[test]
    fn shortest_path_reaches_target_entry() {
        let (p, cfg, map) = setup();
        let path = shortest_path(&p, &cfg, &map, (p.entry(), BlockId(0))).unwrap();
        let target = p.func_by_name("target_fn").unwrap();
        assert_eq!(*path.first().unwrap(), (p.entry(), BlockId(0)));
        assert_eq!(*path.last().unwrap(), (target, BlockId(0)));
        // Path distances strictly decrease.
        let ds: Vec<u32> = path.iter().map(|n| map.get(n.0, n.1).unwrap()).collect();
        for w in ds.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn unreachable_target_yields_none() {
        let (p, cfg, _) = setup();
        let unrelated = p.func_by_name("unrelated").unwrap();
        let map = DistanceMap::compute(&p, &cfg, unrelated);
        assert!(!map.reaches(p.entry(), BlockId(0)));
        assert!(shortest_path(&p, &cfg, &map, (p.entry(), BlockId(0))).is_none());
    }

    #[test]
    fn static_mode_misses_indirect_paths() {
        let src = r#"
func main() {
entry:
    t = baddr hop
    ijmp t
hop:
    call target_fn()
    halt 0
}
func target_fn() {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let target = p.func_by_name("target_fn").unwrap();
        let s = build_cfg(&p, CfgMode::Static).unwrap();
        let d = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let map_s = DistanceMap::compute(&p, &s, target);
        let map_d = DistanceMap::compute(&p, &d, target);
        // Statically, entry cannot reach the target (edge missing);
        // dynamically it can.
        assert!(!map_s.reaches(p.entry(), BlockId(0)));
        assert!(map_d.reaches(p.entry(), BlockId(0)));
    }
}
