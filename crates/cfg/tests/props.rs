//! Property tests for CFG recovery and backward path finding.

use octo_cfg::{build_cfg, shortest_path, CfgMode, DistanceMap};
use octo_ir::parse::parse_program;
use octo_ir::{BlockId, Program};
use proptest::prelude::*;

/// Generates a random call-chain program: `main` walks through a random
/// branch structure; some leaves call into a chain of helpers ending at
/// `target_fn`.
fn chain_program(gates: &[bool], chain_len: usize) -> Program {
    let mut src = String::from("func main() {\nentry:\n    fd = open\n    jmp g0\n");
    for (i, reaches) in gates.iter().enumerate() {
        let on_true = if *reaches {
            "call_site".to_string()
        } else {
            format!("g{}", i + 1)
        };
        src.push_str(&format!(
            "g{i}:\n    b{i} = getc fd\n    c{i} = eq b{i}, {i}\n    br c{i}, {on_true}, g{next}\n",
            next = i + 1
        ));
    }
    src.push_str(&format!(
        "g{}:\n    halt 1\ncall_site:\n    call h0()\n    halt 0\n}}\n",
        gates.len()
    ));
    for i in 0..chain_len {
        let callee = if i + 1 == chain_len {
            "target_fn".to_string()
        } else {
            format!("h{}", i + 1)
        };
        src.push_str(&format!(
            "func h{i}() {{\nentry:\n    call {callee}()\n    ret\n}}\n"
        ));
    }
    src.push_str("func target_fn() {\nentry:\n    ret\n}\n");
    parse_program(&src).expect("generated program parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Triangle property: every node with distance d > 0 has a successor
    /// or callee entry at distance d - 1 (the oracle directed execution
    /// relies on is locally consistent).
    #[test]
    fn distance_map_is_locally_consistent(
        gates in prop::collection::vec(any::<bool>(), 1..5),
        chain_len in 1usize..4,
    ) {
        let p = chain_program(&gates, chain_len);
        let cfg = build_cfg(&p, CfgMode::Dynamic).expect("cfg");
        let target = p.func_by_name("target_fn").expect("target");
        let map = DistanceMap::compute(&p, &cfg, target);
        for (fid, func) in p.iter() {
            let fcfg = cfg.func(fid);
            for bi in 0..func.blocks.len() {
                let b = BlockId(bi as u32);
                let Some(d) = map.get(fid, b) else { continue };
                if d == 0 {
                    continue;
                }
                let via_succ = fcfg.succs[bi]
                    .iter()
                    .filter_map(|s| map.get(fid, *s))
                    .any(|ds| ds == d - 1);
                let via_call = fcfg
                    .calls
                    .iter()
                    .filter(|(blk, _)| *blk == b)
                    .filter_map(|(_, callee)| map.get(*callee, p.func(*callee).entry()))
                    .any(|ds| ds == d - 1);
                prop_assert!(
                    via_succ || via_call,
                    "node ({fid:?},{b:?}) at d={d} has no neighbour at d-1"
                );
            }
        }
    }

    /// Reachability matches the gate structure: the entry reaches the
    /// target iff some gate leads to the call site.
    #[test]
    fn reachability_matches_generator(
        gates in prop::collection::vec(any::<bool>(), 1..5),
        chain_len in 1usize..4,
    ) {
        let p = chain_program(&gates, chain_len);
        let cfg = build_cfg(&p, CfgMode::Dynamic).expect("cfg");
        let target = p.func_by_name("target_fn").expect("target");
        let map = DistanceMap::compute(&p, &cfg, target);
        let expected = gates.iter().any(|g| *g);
        prop_assert_eq!(map.reaches(p.entry(), BlockId(0)), expected);
    }

    /// A shortest path, when it exists, starts at the given node, ends at
    /// the target entry, and has length equal to the distance.
    #[test]
    fn shortest_path_agrees_with_distance(
        gates in prop::collection::vec(any::<bool>(), 1..5),
        chain_len in 1usize..4,
    ) {
        prop_assume!(gates.iter().any(|g| *g));
        let p = chain_program(&gates, chain_len);
        let cfg = build_cfg(&p, CfgMode::Dynamic).expect("cfg");
        let target = p.func_by_name("target_fn").expect("target");
        let map = DistanceMap::compute(&p, &cfg, target);
        let from = (p.entry(), BlockId(0));
        let path = shortest_path(&p, &cfg, &map, from).expect("path exists");
        prop_assert_eq!(path[0], from);
        prop_assert_eq!(*path.last().unwrap(), (target, p.func(target).entry()));
        let d = map.get(from.0, from.1).unwrap() as usize;
        prop_assert_eq!(path.len(), d + 1, "path length vs distance");
    }

    /// Static and dynamic recovery agree on programs without indirect
    /// control flow.
    #[test]
    fn static_equals_dynamic_without_indirection(
        gates in prop::collection::vec(any::<bool>(), 1..5),
        chain_len in 1usize..4,
    ) {
        let p = chain_program(&gates, chain_len);
        let s = build_cfg(&p, CfgMode::Static).expect("static");
        let d = build_cfg(&p, CfgMode::Dynamic).expect("dynamic");
        prop_assert_eq!(s.edge_count(), d.edge_count());
        prop_assert_eq!(s.call_edge_count(), d.call_edge_count());
    }
}
