//! Property tests for the constraint solver.
//!
//! The solver's verdicts carry evaluation weight in the reproduction
//! (Unsat ⇒ the paper's Type-III "not triggerable"), so both directions
//! are checked: models must satisfy their constraint sets, and Unsat
//! answers are cross-checked by exhaustive enumeration on small instances.

use octo_ir::BinOp;
use octo_solver::{Cond, Constraint, ConstraintSet, Expr, ExprRef, SolveResult};
use proptest::prelude::*;

/// A small random expression over up to `vars` input bytes.
fn arb_expr(vars: u32, depth: u32) -> BoxedStrategy<ExprRef> {
    let leaf = prop_oneof![
        (0..vars).prop_map(Expr::byte),
        (0u64..300).prop_map(Expr::val),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::bin(op, a, b))
    })
    .boxed()
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Ult),
        Just(Cond::Ule),
        Just(Cond::Slt),
        Just(Cond::Sle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any model returned by the solver satisfies every constraint.
    #[test]
    fn sat_models_satisfy_their_sets(
        exprs in prop::collection::vec((arb_expr(3, 2), arb_cond(), 0u64..300), 1..5)
    ) {
        let mut set = ConstraintSet::new();
        for (lhs, cond, k) in exprs {
            set.push(Constraint::new(lhs, Expr::val(k), cond));
        }
        if let SolveResult::Sat(model) = set.solve() {
            let file = model.to_file(model.required_len().max(3));
            prop_assert!(set.eval_file(&file), "model does not satisfy set");
        }
    }

    /// On instances with ≤ 2 byte variables, Sat/Unsat answers agree with
    /// exhaustive enumeration.
    #[test]
    fn verdicts_match_exhaustive_enumeration(
        exprs in prop::collection::vec((arb_expr(2, 1), arb_cond(), 0u64..300), 1..4)
    ) {
        let mut set = ConstraintSet::new();
        for (lhs, cond, k) in &exprs {
            set.push(Constraint::new(lhs.clone(), Expr::val(*k), *cond));
        }
        let verdict = set.solve();
        let mut any = false;
        'outer: for b0 in 0u16..=255 {
            for b1 in 0u16..=255 {
                if set.eval_file(&[b0 as u8, b1 as u8]) {
                    any = true;
                    break 'outer;
                }
            }
        }
        match verdict {
            SolveResult::Sat(_) => prop_assert!(any, "solver said Sat but no witness exists"),
            SolveResult::Unsat => prop_assert!(!any, "solver said Unsat but a witness exists"),
            SolveResult::Unknown => {} // budget — no claim
            SolveResult::Injected => prop_assert!(false, "no fault plan is installed"),
        }
    }

    /// Simplification preserves evaluation on random inputs.
    #[test]
    fn simplify_preserves_semantics(
        e in arb_expr(3, 3),
        input in prop::collection::vec(any::<u8>(), 3)
    ) {
        let s = octo_solver::simplify::simplify(&e);
        prop_assert_eq!(e.eval_file(&input), s.eval_file(&input));
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_is_idempotent(e in arb_expr(3, 3)) {
        let once = octo_solver::simplify::simplify(&e);
        let twice = octo_solver::simplify::simplify(&once);
        prop_assert_eq!(once, twice);
    }

    /// `quick_feasible` never refutes a satisfiable set (no false Unsat
    /// from the propagation-only pre-check).
    #[test]
    fn quick_feasible_is_sound(
        exprs in prop::collection::vec((arb_expr(2, 1), arb_cond(), 0u64..300), 1..4)
    ) {
        let mut set = ConstraintSet::new();
        for (lhs, cond, k) in exprs {
            set.push(Constraint::new(lhs, Expr::val(k), cond));
        }
        if let SolveResult::Sat(_) = set.solve() {
            prop_assert!(set.quick_feasible(), "quick check refuted a sat set");
        }
    }
}

#[test]
fn exhausted_budget_reports_unknown_not_a_wrong_verdict() {
    use octo_solver::{SolveLimits, SolveResult};
    // A genuinely unsatisfiable 3-variable constraint that propagation
    // alone cannot refute: b0 + b1 + b2 == 766 (max is 765), written so
    // no pairwise filter sees the contradiction, with a node budget too
    // small to finish the search.
    let mut set = ConstraintSet::new();
    let sum = Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1)),
        Expr::byte(2),
    );
    set.push(Constraint::new(sum, Expr::val(766), Cond::Eq));
    match set.solve_with(SolveLimits {
        max_nodes: 3,
        max_pair_work: 0,
    }) {
        SolveResult::Unknown => {}
        SolveResult::Unsat => {} // propagation may still catch it — fine
        SolveResult::Sat(m) => {
            panic!("budget exhaustion produced a bogus model: {m:?}")
        }
        SolveResult::Injected => panic!("no fault plan is installed"),
    }
    // With a real budget the verdict is Unsat.
    assert_eq!(set.solve(), SolveResult::Unsat);
}
