//! Constraints and constraint sets.

use std::fmt;

use octo_ir::BinOp;

use crate::expr::{Expr, ExprRef};
use crate::simplify::simplify;

/// Relation between the two sides of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs < rhs` (unsigned)
    Ult,
    /// `lhs <= rhs` (unsigned)
    Ule,
    /// `lhs < rhs` (signed)
    Slt,
    /// `lhs <= rhs` (signed)
    Sle,
}

impl Cond {
    /// Evaluates the relation on concrete values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Ult => a < b,
            Cond::Ule => a <= b,
            Cond::Slt => (a as i64) < (b as i64),
            Cond::Sle => (a as i64) <= (b as i64),
        }
    }

    /// The negated relation, with a possible operand swap.
    ///
    /// Returns `(cond, swapped)`: `!(a < b)` is `b <= a`, so negating `Ult`
    /// yields `(Ule, true)`.
    pub fn negate(self) -> (Cond, bool) {
        match self {
            Cond::Eq => (Cond::Ne, false),
            Cond::Ne => (Cond::Eq, false),
            Cond::Ult => (Cond::Ule, true),
            Cond::Ule => (Cond::Ult, true),
            Cond::Slt => (Cond::Sle, true),
            Cond::Sle => (Cond::Slt, true),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "==",
            Cond::Ne => "!=",
            Cond::Ult => "<u",
            Cond::Ule => "<=u",
            Cond::Slt => "<s",
            Cond::Sle => "<=s",
        };
        f.write_str(s)
    }
}

/// One relational constraint between two symbolic terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left term (simplified).
    pub lhs: ExprRef,
    /// Right term (simplified).
    pub rhs: ExprRef,
    /// Relation.
    pub cond: Cond,
}

impl Constraint {
    /// Creates a constraint, simplifying both sides.
    pub fn new(lhs: ExprRef, rhs: ExprRef, cond: Cond) -> Constraint {
        Constraint {
            lhs: simplify(&lhs),
            rhs: simplify(&rhs),
            cond,
        }
    }

    /// Builds the constraint asserting that a branch condition expression
    /// is true (`want_true`) or false.
    ///
    /// Comparison expressions are converted into direct relational
    /// constraints (so `eq(a, b) != 0` becomes `a == b`); anything else is
    /// compared against zero.
    pub fn from_bool(expr: &ExprRef, want_true: bool) -> Constraint {
        let expr = simplify(expr);
        if let Expr::Bin(op, a, b) = &*expr {
            if let Some(cond) = cmp_to_cond(*op) {
                return if want_true {
                    Constraint::new(a.clone(), b.clone(), cond)
                } else {
                    let (neg, swapped) = cond.negate();
                    if swapped {
                        Constraint::new(b.clone(), a.clone(), neg)
                    } else {
                        Constraint::new(a.clone(), b.clone(), neg)
                    }
                };
            }
        }
        let cond = if want_true { Cond::Ne } else { Cond::Eq };
        Constraint::new(expr, Expr::val(0), cond)
    }

    /// Builds `input[offset] == value` (bunch placement, paper P3.1).
    pub fn byte_eq(offset: u32, value: u8) -> Constraint {
        Constraint::new(Expr::byte(offset), Expr::val(u64::from(value)), Cond::Eq)
    }

    /// Evaluates under a (possibly partial) byte assignment. `None` if any
    /// referenced byte is unassigned (or a side divides by zero — which can
    /// never satisfy the constraint, so callers treat `None` as "cannot yet
    /// decide" only when free variables remain).
    pub fn eval(&self, lookup: &impl Fn(u32) -> Option<u8>) -> Option<bool> {
        let a = self.lhs.eval(lookup)?;
        let b = self.rhs.eval(lookup)?;
        Some(self.cond.eval(a, b))
    }

    /// Evaluates against a complete concrete file.
    pub fn eval_file(&self, file: &[u8]) -> bool {
        self.eval(&|off| Some(file.get(off as usize).copied().unwrap_or(0)))
            .unwrap_or(false)
    }

    /// Distinct byte offsets referenced.
    pub fn vars(&self) -> std::collections::BTreeSet<u32> {
        let mut v = self.lhs.vars();
        v.extend(self.rhs.vars());
        v
    }

    /// Node count of both sides (for memory accounting).
    pub fn size(&self) -> usize {
        self.lhs.size() + self.rhs.size()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.cond, self.rhs)
    }
}

fn cmp_to_cond(op: BinOp) -> Option<Cond> {
    Some(match op {
        BinOp::CmpEq => Cond::Eq,
        BinOp::CmpNe => Cond::Ne,
        BinOp::CmpLtU => Cond::Ult,
        BinOp::CmpLeU => Cond::Ule,
        BinOp::CmpLtS => Cond::Slt,
        BinOp::CmpLeS => Cond::Sle,
        // gt/ge are recorded with swapped operands by the caller.
        _ => return None,
    })
}

/// How a constraint decomposes during normalisation.
enum Normalized {
    /// Always true — droppable.
    True,
    /// Always false — the whole set is unsatisfiable.
    False,
    /// Equivalent conjunction of simpler constraints.
    Keep(Vec<Constraint>),
}

fn normalize(c: Constraint) -> Normalized {
    // Fully constant?
    if let (Some(a), Some(b)) = (c.lhs.as_const(), c.rhs.as_const()) {
        return if c.cond.eval(a, b) {
            Normalized::True
        } else {
            Normalized::False
        };
    }
    // Canonical orientation: constant on the right for Eq/Ne.
    let c = if matches!(c.cond, Cond::Eq | Cond::Ne) && c.lhs.as_const().is_some() {
        Constraint {
            lhs: c.rhs,
            rhs: c.lhs,
            cond: c.cond,
        }
    } else {
        c
    };
    // Equality of a byte-concat with a constant decomposes per byte — the
    // fragment where domain propagation is complete.
    if c.cond == Cond::Eq {
        if let Some(k) = c.rhs.as_const() {
            match &*c.lhs {
                Expr::Concat(parts) if parts.iter().all(|p| matches!(**p, Expr::Byte(_))) => {
                    let width_bits = 8 * parts.len() as u32;
                    if width_bits < 64 && (k >> width_bits) != 0 {
                        return Normalized::False;
                    }
                    let out = parts
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            let byte = (k >> (8 * i)) & 0xFF;
                            Constraint::new(p.clone(), Expr::val(byte), Cond::Eq)
                        })
                        .collect();
                    return Normalized::Keep(out);
                }
                Expr::Byte(_) if k > 255 => return Normalized::False,
                _ => {}
            }
        }
    }
    Normalized::Keep(vec![c])
}

/// An accumulating conjunction of constraints — the path condition plus
/// crash-primitive placements for one symbolic state.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
    trivially_false: bool,
}

impl ConstraintSet {
    /// Creates an empty (trivially satisfiable) set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a constraint, normalising and decomposing it.
    pub fn push(&mut self, c: Constraint) {
        if self.trivially_false {
            return;
        }
        match normalize(c) {
            Normalized::True => {}
            Normalized::False => self.trivially_false = true,
            Normalized::Keep(cs) => self.items.extend(cs),
        }
    }

    /// Adds `input[offset] == value`.
    pub fn assert_byte(&mut self, offset: u32, value: u8) {
        self.push(Constraint::byte_eq(offset, value));
    }

    /// Whether normalisation already proved the set unsatisfiable.
    pub fn is_trivially_false(&self) -> bool {
        self.trivially_false
    }

    /// The constraints currently held.
    pub fn items(&self) -> &[Constraint] {
        &self.items
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All byte offsets referenced by any constraint.
    pub fn vars(&self) -> std::collections::BTreeSet<u32> {
        let mut out = std::collections::BTreeSet::new();
        for c in &self.items {
            out.extend(c.vars());
        }
        out
    }

    /// Approximate node count (state-memory accounting).
    pub fn size(&self) -> usize {
        self.items.iter().map(Constraint::size).sum()
    }

    /// Checks a concrete file against every constraint.
    pub fn eval_file(&self, file: &[u8]) -> bool {
        !self.trivially_false && self.items.iter().all(|c| c.eval_file(file))
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bool_converts_comparisons() {
        let e = Expr::bin(BinOp::CmpLtU, Expr::byte(0), Expr::val(10));
        let t = Constraint::from_bool(&e, true);
        assert_eq!(t.cond, Cond::Ult);
        let f = Constraint::from_bool(&e, false);
        // !(b < 10)  =>  10 <= b
        assert_eq!(f.cond, Cond::Ule);
        assert_eq!(f.lhs.as_const(), Some(10));
    }

    #[test]
    fn from_bool_fallback_compares_to_zero() {
        let e = Expr::bin(BinOp::And, Expr::byte(0), Expr::val(0x80));
        let t = Constraint::from_bool(&e, true);
        assert_eq!(t.cond, Cond::Ne);
        assert_eq!(t.rhs.as_const(), Some(0));
    }

    #[test]
    fn concat_eq_const_decomposes_per_byte() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(
            Expr::concat_le(0, 4),
            Expr::val(0x4134_1200),
            Cond::Eq,
        ));
        assert_eq!(set.len(), 4);
        assert!(set.eval_file(&[0x00, 0x12, 0x34, 0x41]));
        assert!(!set.eval_file(&[0x00, 0x12, 0x34, 0x42]));
    }

    #[test]
    fn oversized_constant_is_trivially_false() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(
            Expr::concat_le(0, 2),
            Expr::val(0x1_0000),
            Cond::Eq,
        ));
        assert!(set.is_trivially_false());
    }

    #[test]
    fn byte_above_255_is_trivially_false() {
        // The tiffsplit Type-III situation: `tag == 0x13d` against a
        // single-byte source can never hold.
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(Expr::byte(3), Expr::val(0x13d), Cond::Eq));
        assert!(set.is_trivially_false());
    }

    #[test]
    fn constant_constraints_fold_away() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(Expr::val(3), Expr::val(3), Cond::Eq));
        assert!(set.is_empty());
        assert!(!set.is_trivially_false());
        set.push(Constraint::new(Expr::val(3), Expr::val(4), Cond::Eq));
        assert!(set.is_trivially_false());
    }

    #[test]
    fn eval_file_checks_all() {
        let mut set = ConstraintSet::new();
        set.assert_byte(0, b'G');
        set.assert_byte(1, b'I');
        assert!(set.eval_file(b"GIF"));
        assert!(!set.eval_file(b"GG"));
    }

    #[test]
    fn negate_roundtrip_semantics() {
        for cond in [
            Cond::Eq,
            Cond::Ne,
            Cond::Ult,
            Cond::Ule,
            Cond::Slt,
            Cond::Sle,
        ] {
            for (a, b) in [(1u64, 2u64), (2, 1), (5, 5), (u64::MAX, 0)] {
                let (neg, swapped) = cond.negate();
                let direct = cond.eval(a, b);
                let negated = if swapped {
                    neg.eval(b, a)
                } else {
                    neg.eval(a, b)
                };
                assert_ne!(direct, negated, "{cond} on ({a},{b})");
            }
        }
    }
}
