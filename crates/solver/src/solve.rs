//! The solving engine: domain propagation plus bounded backtracking search.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::constraint::{Constraint, ConstraintSet};
use crate::domain::ByteDomain;

thread_local! {
    static SOLVES: Cell<u64> = const { Cell::new(0) };
    static UNSAT_RESULTS: Cell<u64> = const { Cell::new(0) };
    static INTERVAL_REFUTATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the thread-local solver activity counters.
///
/// Every [`ConstraintSet::solve_with`] entry (including
/// [`ConstraintSet::quick_feasible`] pre-checks) bumps `solves`; `Unsat`
/// results bump `unsat_results`; refutations proven by interval
/// reasoning alone bump `interval_refutations`; rewrite-rule firings in
/// the simplifier bump `simplify_rewrites`. Callers take two snapshots
/// and diff them with [`SolverCounters::since`] to attribute work to a
/// region — the counters are per-thread, so a verification job measures
/// only itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Solver entries (full solves and propagation-only pre-checks).
    pub solves: u64,
    /// Solves that returned `Unsat`.
    pub unsat_results: u64,
    /// Constraints refuted by interval reasoning during propagation.
    pub interval_refutations: u64,
    /// Simplifier rewrite rules fired.
    pub simplify_rewrites: u64,
}

impl SolverCounters {
    /// Reads the current thread's counters.
    pub fn snapshot() -> SolverCounters {
        SolverCounters {
            solves: SOLVES.with(Cell::get),
            unsat_results: UNSAT_RESULTS.with(Cell::get),
            interval_refutations: INTERVAL_REFUTATIONS.with(Cell::get),
            simplify_rewrites: crate::simplify::rewrites_total(),
        }
    }

    /// The activity between `earlier` and this snapshot.
    pub fn since(&self, earlier: &SolverCounters) -> SolverCounters {
        SolverCounters {
            solves: self.solves.wrapping_sub(earlier.solves),
            unsat_results: self.unsat_results.wrapping_sub(earlier.unsat_results),
            interval_refutations: self
                .interval_refutations
                .wrapping_sub(earlier.interval_refutations),
            simplify_rewrites: self
                .simplify_rewrites
                .wrapping_sub(earlier.simplify_rewrites),
        }
    }
}

fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>) {
    cell.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Budgets bounding a solve. With the defaults, every constraint set the
/// reproduction's pipeline emits solves well inside the limits; `Unknown`
/// results indicate the budget was hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum search-tree nodes (0 = propagation only, no search).
    pub max_nodes: u64,
    /// Maximum pairwise support checks per propagation round.
    pub max_pair_work: u64,
}

impl Default for SolveLimits {
    fn default() -> SolveLimits {
        SolveLimits {
            max_nodes: 200_000,
            max_pair_work: 2_000_000,
        }
    }
}

/// A satisfying byte assignment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    bytes: BTreeMap<u32, u8>,
}

impl Model {
    /// Creates a model from explicit assignments.
    pub fn from_bytes(bytes: BTreeMap<u32, u8>) -> Model {
        Model { bytes }
    }

    /// The value of the byte at `offset` (unconstrained bytes default to 0,
    /// matching the zero-filled symbolic input file).
    pub fn byte(&self, offset: u32) -> u8 {
        self.bytes.get(&offset).copied().unwrap_or(0)
    }

    /// Offsets that are explicitly constrained.
    pub fn assigned(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.bytes.iter().map(|(&o, &v)| (o, v))
    }

    /// Materialises a concrete file of `len` bytes.
    pub fn to_file(&self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for (&off, &v) in &self.bytes {
            if (off as usize) < len {
                out[off as usize] = v;
            }
        }
        out
    }

    /// The highest constrained offset plus one (minimum file length that
    /// carries every assignment).
    pub fn required_len(&self) -> usize {
        self.bytes
            .keys()
            .next_back()
            .map(|&o| o as usize + 1)
            .unwrap_or(0)
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// Budget exhausted before a verdict.
    Unknown,
    /// Produced only under `octo-faults` injection (the `solver-solve`
    /// site): the solve was abandoned at entry. Consumers treat it like
    /// `Unknown`, except that the directed engine surfaces it as a
    /// distinct, retryable `fault-injected` outcome.
    Injected,
}

impl SolveResult {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

impl ConstraintSet {
    /// Solves the set with default limits.
    pub fn solve(&self) -> SolveResult {
        self.solve_with(SolveLimits::default())
    }

    /// Solves the set with explicit limits.
    pub fn solve_with(&self, limits: SolveLimits) -> SolveResult {
        bump(&SOLVES);
        // Fault-injection site: abandon the solve at entry (after the
        // counter bump, so solver accounting stays truthful about the
        // attempt). Inert without an installed fault context.
        if octo_faults::should_inject(octo_faults::FaultSite::SolverSolve) {
            return SolveResult::Injected;
        }
        // Flight-recorder bracket around the whole entry. The payload
        // (an Instant read and a counter snapshot) is gated on a live
        // recorder so the batch hot path stays untouched.
        let traced = octo_trace::is_active().then(|| {
            octo_trace::emit(octo_trace::TraceKind::SolverBegin {
                constraints: self.len() as u64,
            });
            (
                std::time::Instant::now(),
                INTERVAL_REFUTATIONS.with(Cell::get),
            )
        });
        let result = if self.is_trivially_false() {
            // Normalisation proved the contradiction and dropped the
            // offending constraint from the item list; the search below
            // must not mistake the empty list for satisfiability.
            SolveResult::Unsat
        } else {
            Solver::new(self, limits).solve()
        };
        if result == SolveResult::Unsat {
            bump(&UNSAT_RESULTS);
        }
        if let Some((start, refutations_before)) = traced {
            octo_trace::emit(octo_trace::TraceKind::SolverEnd {
                result: match &result {
                    SolveResult::Sat(_) => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                    SolveResult::Injected => "injected",
                },
                micros: start.elapsed().as_micros() as u64,
                refutations: INTERVAL_REFUTATIONS.with(Cell::get) - refutations_before,
            });
        }
        result
    }

    /// Propagation-only feasibility pre-check (used by directed symbolic
    /// execution to prune branches without paying for a full solve).
    ///
    /// `false` means *definitely unsatisfiable*; `true` means "not
    /// refuted by propagation" (the full solve may still say `Unsat`).
    pub fn quick_feasible(&self) -> bool {
        if self.is_trivially_false() {
            return false;
        }
        let limits = SolveLimits {
            max_nodes: 0,
            max_pair_work: 200_000,
        };
        !matches!(self.solve_with(limits), SolveResult::Unsat)
    }
}

struct Solver<'a> {
    constraints: &'a [Constraint],
    /// Sorted variable offsets.
    vars: Vec<u32>,
    /// Domain per variable (indexed like `vars`).
    domains: Vec<ByteDomain>,
    /// Variable indices used by each constraint.
    cvars: Vec<Vec<usize>>,
    limits: SolveLimits,
    nodes: u64,
    budget_hit: bool,
}

impl<'a> Solver<'a> {
    fn new(set: &'a ConstraintSet, limits: SolveLimits) -> Solver<'a> {
        let vars: Vec<u32> = set.vars().into_iter().collect();
        let index: BTreeMap<u32, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let cvars = set
            .items()
            .iter()
            .map(|c| c.vars().into_iter().map(|v| index[&v]).collect())
            .collect();
        Solver {
            constraints: set.items(),
            domains: vec![ByteDomain::full(); vars.len()],
            vars,
            cvars,
            limits,
            nodes: 0,
            budget_hit: false,
        }
    }

    fn solve(mut self) -> SolveResult {
        if self.constraints.is_empty() {
            return SolveResult::Sat(Model::default());
        }
        if !self.propagate() {
            return SolveResult::Unsat;
        }
        // Try the cheap completion first: every variable at its domain
        // minimum. If that satisfies everything we are done without search.
        if let Some(model) = self.try_min_completion() {
            return SolveResult::Sat(model);
        }
        if self.limits.max_nodes == 0 {
            return SolveResult::Unknown;
        }
        let mut assignment: Vec<Option<u8>> =
            self.domains.iter().map(ByteDomain::as_singleton).collect();
        match self.search(&mut assignment) {
            Some(model) => SolveResult::Sat(model),
            None if self.budget_hit => SolveResult::Unknown,
            None => SolveResult::Unsat,
        }
    }

    /// Runs propagation to a fixpoint. Returns false on contradiction.
    fn propagate(&mut self) -> bool {
        let mut pair_work = 0u64;
        loop {
            let mut changed = false;
            for (ci, c) in self.constraints.iter().enumerate() {
                let free: Vec<usize> = self.cvars[ci]
                    .iter()
                    .copied()
                    .filter(|&vi| self.domains[vi].as_singleton().is_none())
                    .collect();
                match free.len() {
                    0 => {
                        let ok = c.eval(&|off| self.singleton_of(off)).unwrap_or(false);
                        if !ok {
                            return false;
                        }
                    }
                    1 => {
                        let vi = free[0];
                        let off = self.vars[vi];
                        let mut keep = ByteDomain::empty();
                        for cand in self.domains[vi].iter() {
                            let ok = c
                                .eval(&|o| {
                                    if o == off {
                                        Some(cand)
                                    } else {
                                        self.singleton_of(o)
                                    }
                                })
                                .unwrap_or(false);
                            if ok {
                                keep.insert(cand);
                            }
                        }
                        changed |= self.domains[vi].intersect(&keep);
                        if self.domains[vi].is_empty() {
                            return false;
                        }
                    }
                    // Wide constraints: per-variable filtering is too
                    // expensive, but interval reasoning can still
                    // refute impossible bounds (e.g. a byte sum that
                    // cannot reach the required constant).
                    _ if free.len() >= 3 && self.interval_refuted(c) => {
                        bump(&INTERVAL_REFUTATIONS);
                        return false;
                    }
                    _ if free.len() >= 3 => {}
                    2 => {
                        let (a, b) = (free[0], free[1]);
                        let work =
                            u64::from(self.domains[a].len()) * u64::from(self.domains[b].len());
                        if pair_work + work > self.limits.max_pair_work {
                            continue;
                        }
                        pair_work += work;
                        changed |= self.pair_filter(ci, a, b);
                        changed |= self.pair_filter(ci, b, a);
                        if self.domains[a].is_empty() || self.domains[b].is_empty() {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Removes values of `target` that have no support in `other` for
    /// constraint `ci`. Returns whether the domain changed.
    fn pair_filter(&mut self, ci: usize, target: usize, other: usize) -> bool {
        let c = &self.constraints[ci];
        let (t_off, o_off) = (self.vars[target], self.vars[other]);
        let mut keep = ByteDomain::empty();
        for tv in self.domains[target].iter() {
            let supported = self.domains[other].iter().any(|ov| {
                c.eval(&|off| {
                    if off == t_off {
                        Some(tv)
                    } else if off == o_off {
                        Some(ov)
                    } else {
                        self.singleton_of(off)
                    }
                })
                .unwrap_or(false)
            });
            if supported {
                keep.insert(tv);
            }
        }
        self.domains[target].intersect(&keep)
    }

    fn singleton_of(&self, off: u32) -> Option<u8> {
        let vi = self.vars.binary_search(&off).ok()?;
        self.domains[vi].as_singleton()
    }

    /// Interval-refutation check for one constraint against the current
    /// domains. `true` = definitely unsatisfiable.
    fn interval_refuted(&self, c: &Constraint) -> bool {
        let bounds = |off: u32| -> Option<(u8, u8)> {
            let vi = self.vars.binary_search(&off).ok()?;
            let d = &self.domains[vi];
            Some((d.min()?, d.max()?))
        };
        let (Some(l), Some(r)) = (
            crate::interval::eval_interval(&c.lhs, &bounds),
            crate::interval::eval_interval(&c.rhs, &bounds),
        ) else {
            return false;
        };
        crate::interval::refutes(c.cond, &l, &r)
    }

    /// Tries completing with every domain's minimum value.
    fn try_min_completion(&self) -> Option<Model> {
        let bytes: BTreeMap<u32, u8> = self
            .vars
            .iter()
            .zip(self.domains.iter())
            .map(|(&off, d)| Some((off, d.min()?)))
            .collect::<Option<_>>()?;
        let lookup = |off: u32| bytes.get(&off).copied();
        if self
            .constraints
            .iter()
            .all(|c| c.eval(&lookup) == Some(true))
        {
            Some(Model::from_bytes(bytes))
        } else {
            None
        }
    }

    fn search(&mut self, assignment: &mut Vec<Option<u8>>) -> Option<Model> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            self.budget_hit = true;
            return None;
        }
        // Check constraints whose variables are all assigned; prune early.
        for (ci, c) in self.constraints.iter().enumerate() {
            let all = self.cvars[ci].iter().all(|&vi| assignment[vi].is_some());
            if all {
                let ok = c
                    .eval(&|off| {
                        let vi = self.vars.binary_search(&off).ok()?;
                        assignment[vi]
                    })
                    .unwrap_or(false);
                if !ok {
                    return None;
                }
            }
        }
        // Select the unassigned variable with the smallest domain (MRV).
        let next = (0..self.vars.len())
            .filter(|&vi| assignment[vi].is_none())
            .min_by_key(|&vi| self.domains[vi].len());
        let Some(vi) = next else {
            // Complete assignment — already checked above.
            let bytes = self
                .vars
                .iter()
                .zip(assignment.iter())
                .map(|(&off, v)| (off, v.expect("complete")))
                .collect();
            return Some(Model::from_bytes(bytes));
        };
        let candidates: Vec<u8> = self.domains[vi].iter().collect();
        for v in candidates {
            assignment[vi] = Some(v);
            if let Some(model) = self.search(assignment) {
                return Some(model);
            }
            if self.budget_hit {
                assignment[vi] = None;
                return None;
            }
        }
        assignment[vi] = None;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Cond;
    use crate::expr::Expr;
    use octo_ir::BinOp;

    fn sat_model(set: &ConstraintSet) -> Model {
        match set.solve() {
            SolveResult::Sat(m) => {
                assert!(
                    set.eval_file(&m.to_file(m.required_len().max(1))),
                    "model does not satisfy set"
                );
                m
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn solves_byte_equalities() {
        let mut set = ConstraintSet::new();
        set.assert_byte(0, b'G');
        set.assert_byte(5, b'a');
        let m = sat_model(&set);
        assert_eq!(m.byte(0), b'G');
        assert_eq!(m.byte(5), b'a');
        assert_eq!(m.byte(3), 0);
        assert_eq!(m.required_len(), 6);
    }

    #[test]
    fn solves_word_equality() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(
            Expr::concat_le(2, 4),
            Expr::val(0xDEAD_BEEF),
            Cond::Eq,
        ));
        let m = sat_model(&set);
        assert_eq!(m.byte(2), 0xEF);
        assert_eq!(m.byte(5), 0xDE);
    }

    #[test]
    fn detects_direct_conflict() {
        let mut set = ConstraintSet::new();
        set.assert_byte(0, 1);
        set.assert_byte(0, 2);
        assert_eq!(set.solve(), SolveResult::Unsat);
        assert!(!set.quick_feasible());
    }

    #[test]
    fn injected_fault_abandons_the_solve_at_entry() {
        use std::sync::Arc;

        let mut set = ConstraintSet::new();
        set.assert_byte(0, b'G');
        // Fire on the 1st solver call only: the next call is clean.
        let plan = Arc::new(octo_faults::FaultPlan::new(0).nth(
            octo_faults::FaultSite::SolverSolve,
            None,
            1,
        ));
        let ctx = Arc::new(octo_faults::JobFaults::new(&plan, 0));
        {
            let _g = octo_faults::install(&ctx);
            assert_eq!(set.solve(), SolveResult::Injected);
            assert!(set.solve().is_sat(), "occurrence 2 must solve normally");
            // An injected pre-check is "not refuted", mirroring Unknown.
            assert!(!SolveResult::Injected.is_sat());
            assert_eq!(SolveResult::Injected.model(), None);
        }
        assert!(set.solve().is_sat(), "no context: injection inert");
        assert_eq!(ctx.fired(), 1);
    }

    #[test]
    fn solves_inequalities() {
        let mut set = ConstraintSet::new();
        // 10 <= b0 < 20 and b0 != 15
        set.push(Constraint::new(Expr::val(10), Expr::byte(0), Cond::Ule));
        set.push(Constraint::new(Expr::byte(0), Expr::val(20), Cond::Ult));
        set.push(Constraint::new(Expr::byte(0), Expr::val(15), Cond::Ne));
        let m = sat_model(&set);
        let v = m.byte(0);
        assert!((10..20).contains(&v) && v != 15);
    }

    #[test]
    fn unsat_empty_interval() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::new(Expr::val(200), Expr::byte(0), Cond::Ule));
        set.push(Constraint::new(Expr::byte(0), Expr::val(100), Cond::Ult));
        assert_eq!(set.solve(), SolveResult::Unsat);
    }

    #[test]
    fn solves_arithmetic_relation() {
        // b0 + b1 == 100 with b0 == 30
        let mut set = ConstraintSet::new();
        let sum = Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1));
        set.push(Constraint::new(sum, Expr::val(100), Cond::Eq));
        set.assert_byte(0, 30);
        let m = sat_model(&set);
        assert_eq!(m.byte(1), 70);
    }

    #[test]
    fn solves_two_free_vars_via_pair_propagation() {
        // b0 * b1 == 35 → {1*35, 5*7, 7*5, 35*1}
        let mut set = ConstraintSet::new();
        let prod = Expr::bin(BinOp::Mul, Expr::byte(0), Expr::byte(1));
        set.push(Constraint::new(prod, Expr::val(35), Cond::Eq));
        let m = sat_model(&set);
        assert_eq!(u32::from(m.byte(0)) * u32::from(m.byte(1)), 35);
    }

    #[test]
    fn solves_three_var_constraint_via_search() {
        // b0 + b1 + b2 == 600 (requires values above 85 — search territory)
        let mut set = ConstraintSet::new();
        let sum = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1)),
            Expr::byte(2),
        );
        set.push(Constraint::new(sum, Expr::val(600), Cond::Eq));
        // Pin two to force the third.
        set.assert_byte(0, 250);
        set.assert_byte(1, 200);
        let m = sat_model(&set);
        assert_eq!(m.byte(2), 150);
    }

    #[test]
    fn unsat_three_var_is_proven() {
        let mut set = ConstraintSet::new();
        let sum = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1)),
            Expr::byte(2),
        );
        // Max possible is 765.
        set.push(Constraint::new(Expr::val(766), Expr::byte(3), Cond::Ule));
        set.push(Constraint::new(sum, Expr::byte(3), Cond::Eq));
        assert_eq!(set.solve(), SolveResult::Unsat);
    }

    #[test]
    fn signed_comparisons() {
        // sign-extended-ish: interpret byte as small value, require
        // (b0 - 5) <s 0  →  b0 < 5 in small range
        let mut set = ConstraintSet::new();
        let shifted = Expr::bin(BinOp::Sub, Expr::byte(0), Expr::val(5));
        set.push(Constraint::new(shifted, Expr::val(0), Cond::Slt));
        let m = sat_model(&set);
        assert!(m.byte(0) < 5);
    }

    #[test]
    fn quick_feasible_accepts_satisfiable() {
        let mut set = ConstraintSet::new();
        set.assert_byte(0, 7);
        assert!(set.quick_feasible());
    }

    #[test]
    fn empty_set_is_sat() {
        let set = ConstraintSet::new();
        assert!(set.solve().is_sat());
    }

    #[test]
    fn counters_attribute_solver_activity() {
        let before = SolverCounters::snapshot();

        let mut set = ConstraintSet::new();
        set.assert_byte(0, 7);
        assert!(set.solve().is_sat());
        assert!(set.quick_feasible());

        // An interval-refutable wide constraint: b0+b1+b2 (max 765) must
        // equal 1000.
        let mut wide = ConstraintSet::new();
        let sum = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1)),
            Expr::byte(2),
        );
        wide.push(Constraint::new(sum, Expr::val(1000), Cond::Eq));
        assert_eq!(wide.solve(), SolveResult::Unsat);

        let d = SolverCounters::snapshot().since(&before);
        assert!(d.solves >= 3, "solve + quick_feasible + unsat: {d:?}");
        assert!(d.unsat_results >= 1, "{d:?}");
        assert!(d.interval_refutations >= 1, "{d:?}");
    }

    #[test]
    fn simplify_rewrites_are_counted() {
        let before = SolverCounters::snapshot();
        let e = Expr::bin(BinOp::Add, Expr::val(2), Expr::val(40));
        assert_eq!(crate::simplify::simplify(&e).as_const(), Some(42));
        let d = SolverCounters::snapshot().since(&before);
        assert!(d.simplify_rewrites >= 1, "{d:?}");
    }

    #[test]
    fn model_to_file_truncates() {
        let mut set = ConstraintSet::new();
        set.assert_byte(10, 0xAA);
        let m = sat_model(&set);
        let f = m.to_file(4);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|&b| b == 0));
    }

    #[test]
    fn solver_entries_are_bracketed_in_the_flight_record() {
        use octo_trace::{FlightRecorder, TraceKind};
        use std::sync::Arc;

        let mut set = ConstraintSet::new();
        set.assert_byte(0, 0x41);
        // Without a recorder: nothing is emitted anywhere to check, but
        // the solve itself must be unaffected.
        assert!(set.solve().is_sat());

        let rec = Arc::new(FlightRecorder::new(64));
        let guard = octo_trace::install(&rec, 2, 1);
        assert!(set.solve().is_sat());
        drop(guard);
        let events = rec.snapshot();
        assert_eq!(events.len(), 2, "one begin + one end: {events:?}");
        assert!(matches!(
            events[0].kind,
            TraceKind::SolverBegin { constraints: 1 }
        ));
        let TraceKind::SolverEnd { result, .. } = &events[1].kind else {
            panic!("expected SolverEnd, got {:?}", events[1].kind);
        };
        assert_eq!(*result, "sat");

        // An unsat set reports "unsat" in the bracket.
        let rec = Arc::new(FlightRecorder::new(64));
        let guard = octo_trace::install(&rec, 0, 0);
        let mut bad = ConstraintSet::new();
        bad.assert_byte(0, 1);
        bad.assert_byte(0, 2);
        assert_eq!(bad.solve(), SolveResult::Unsat);
        drop(guard);
        let ends: Vec<_> = rec
            .snapshot()
            .into_iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::SolverEnd {
                        result: "unsat",
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(ends.len(), 1, "exactly one unsat solver exit");
    }
}
