//! Expression simplification.
//!
//! Simplification serves two goals beyond keeping terms small:
//!
//! * constant folding lets the symbolic executor notice when a "symbolic"
//!   branch condition is actually concrete (no fork needed), and
//! * mask/shift rules keep loads from the symbolic file in *byte-concat
//!   form*, which the constraint normaliser can decompose into per-byte
//!   facts — the fragment where propagation is complete.

use std::cell::Cell;
use std::rc::Rc;

use octo_ir::BinOp;

use crate::expr::{Expr, ExprRef};

thread_local! {
    static REWRITES: Cell<u64> = const { Cell::new(0) };
}

/// A rewrite rule fired: count it for the observability layer (surfaced
/// through `SolverCounters::simplify_rewrites`).
fn note_rewrite() {
    REWRITES.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Total rewrite-rule firings on this thread since it started.
pub(crate) fn rewrites_total() -> u64 {
    REWRITES.with(Cell::get)
}

/// Simplifies an expression bottom-up. Idempotent.
pub fn simplify(e: &ExprRef) -> ExprRef {
    match &**e {
        Expr::Const(_) | Expr::Byte(_) => e.clone(),
        Expr::Concat(parts) => {
            let parts: Vec<ExprRef> = parts.iter().map(simplify).collect();
            // All-constant concat folds to a constant.
            if let Some(v) = concat_const(&parts) {
                note_rewrite();
                return Expr::val(v);
            }
            if parts.len() == 1 {
                note_rewrite();
                return parts.into_iter().next().expect("len 1");
            }
            Rc::new(Expr::Concat(parts))
        }
        Expr::Un(op, a) => {
            let a = simplify(a);
            if let Some(v) = a.as_const() {
                note_rewrite();
                return Expr::val(op.eval(v));
            }
            Expr::un(*op, a)
        }
        Expr::Bin(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            simplify_bin(*op, a, b)
        }
    }
}

fn concat_const(parts: &[ExprRef]) -> Option<u64> {
    let mut v = 0u64;
    for (i, p) in parts.iter().enumerate() {
        v |= (p.as_const()? & 0xFF) << (8 * i);
    }
    Some(v)
}

fn simplify_bin(op: BinOp, a: ExprRef, b: ExprRef) -> ExprRef {
    // Full constant folding (when not dividing by zero).
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        if let Some(v) = op.eval(x, y) {
            note_rewrite();
            return Expr::val(v);
        }
    }
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => {
            if a.as_const() == Some(0) {
                note_rewrite();
                return b;
            }
            if b.as_const() == Some(0) {
                note_rewrite();
                return a;
            }
        }
        BinOp::Sub | BinOp::Shl | BinOp::ShrL | BinOp::ShrA if b.as_const() == Some(0) => {
            note_rewrite();
            return a;
        }
        BinOp::Mul => {
            if a.as_const() == Some(1) {
                note_rewrite();
                return b;
            }
            if b.as_const() == Some(1) {
                note_rewrite();
                return a;
            }
            if a.as_const() == Some(0) || b.as_const() == Some(0) {
                note_rewrite();
                return Expr::val(0);
            }
        }
        BinOp::And => {
            if a.as_const() == Some(u64::MAX) {
                note_rewrite();
                return b;
            }
            if b.as_const() == Some(u64::MAX) {
                note_rewrite();
                return a;
            }
            if a.as_const() == Some(0) || b.as_const() == Some(0) {
                note_rewrite();
                return Expr::val(0);
            }
            // Byte-aligned masking of a concat truncates it.
            if let Some(r) = mask_concat(&a, &b) {
                note_rewrite();
                return r;
            }
        }
        BinOp::CmpEq if Rc::ptr_eq(&a, &b) => {
            note_rewrite();
            return Expr::val(1);
        }
        BinOp::CmpNe if Rc::ptr_eq(&a, &b) => {
            note_rewrite();
            return Expr::val(0);
        }
        _ => {}
    }
    // Shifting a concat right by whole bytes drops low bytes.
    if matches!(op, BinOp::ShrL) {
        if let (Expr::Concat(parts), Some(sh)) = (&*a, b.as_const()) {
            if sh % 8 == 0 && (sh / 8) as usize <= parts.len() {
                note_rewrite();
                let skip = (sh / 8) as usize;
                let rest: Vec<ExprRef> = parts[skip..].to_vec();
                return match rest.len() {
                    0 => Expr::val(0),
                    1 => rest.into_iter().next().expect("len 1"),
                    _ => Rc::new(Expr::Concat(rest)),
                };
            }
        }
    }
    Expr::bin(op, a, b)
}

/// `concat & 0x00..FF..` with a byte-aligned all-ones mask keeps the low
/// bytes of the concat. Returns `None` when the pattern does not apply.
fn mask_concat(a: &ExprRef, b: &ExprRef) -> Option<ExprRef> {
    // A bare input byte is an 8-bit value: any mask covering the low byte
    // is a no-op on it.
    for (x, y) in [(a, b), (b, a)] {
        if matches!(&**x, Expr::Byte(_)) {
            if let Some(m) = y.as_const() {
                if m & 0xFF == 0xFF {
                    return Some(x.clone());
                }
            }
        }
    }
    let (concat, mask) = match (&**a, b.as_const()) {
        (Expr::Concat(parts), Some(m)) => (parts, m),
        _ => match (&**b, a.as_const()) {
            (Expr::Concat(parts), Some(m)) => (parts, m),
            _ => return None,
        },
    };
    let keep_bytes = match mask {
        0xFF => 1,
        0xFFFF => 2,
        0xFF_FFFF => 3,
        0xFFFF_FFFF => 4,
        0xFF_FFFF_FFFF => 5,
        0xFFFF_FFFF_FFFF => 6,
        0xFF_FFFF_FFFF_FFFF => 7,
        _ => return None,
    };
    if keep_bytes >= concat.len() {
        // Mask is wider than the value; concat of bytes is already within
        // range, so the mask is a no-op.
        return Some(if concat.len() == 1 {
            concat[0].clone()
        } else {
            Rc::new(Expr::Concat(concat.to_vec()))
        });
    }
    let kept: Vec<ExprRef> = concat[..keep_bytes].to_vec();
    Some(if kept.len() == 1 {
        kept.into_iter().next().expect("len 1")
    } else {
        Rc::new(Expr::Concat(kept))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_constants() {
        let e = Expr::bin(BinOp::Add, Expr::val(2), Expr::val(40));
        assert_eq!(simplify(&e).as_const(), Some(42));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::bin(BinOp::DivU, Expr::val(1), Expr::val(0));
        assert!(simplify(&e).as_const().is_none());
    }

    #[test]
    fn identities() {
        let b = Expr::byte(0);
        assert_eq!(simplify(&Expr::bin(BinOp::Add, b.clone(), Expr::val(0))), b);
        assert_eq!(simplify(&Expr::bin(BinOp::Mul, b.clone(), Expr::val(1))), b);
        assert_eq!(
            simplify(&Expr::bin(BinOp::Mul, b.clone(), Expr::val(0))).as_const(),
            Some(0)
        );
        assert_eq!(simplify(&Expr::bin(BinOp::Shl, b.clone(), Expr::val(0))), b);
    }

    #[test]
    fn all_const_concat_folds() {
        let e = Rc::new(Expr::Concat(vec![Expr::val(0x78), Expr::val(0x56)]));
        assert_eq!(simplify(&e).as_const(), Some(0x5678));
    }

    #[test]
    fn mask_truncates_concat() {
        // load.4 of bytes 0..4 then `and 0xFFFF` keeps bytes 0..2
        let e = Expr::bin(BinOp::And, Expr::concat_le(0, 4), Expr::val(0xFFFF));
        let s = simplify(&e);
        match &*s {
            Expr::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn wide_mask_is_noop() {
        let e = Expr::bin(BinOp::And, Expr::concat_le(0, 2), Expr::val(0xFFFF_FFFF));
        let s = simplify(&e);
        assert_eq!(s, Expr::concat_le(0, 2));
    }

    #[test]
    fn shr_by_whole_bytes_drops_low_bytes() {
        let e = Expr::bin(BinOp::ShrL, Expr::concat_le(0, 4), Expr::val(16));
        let s = simplify(&e);
        match &*s {
            Expr::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(*parts[0], Expr::Byte(2));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Add, Expr::concat_le(0, 4), Expr::val(0)),
            Expr::val(0xFFFF),
        );
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn ptr_equal_compare_folds() {
        let b = Expr::byte(7);
        assert_eq!(
            simplify(&Expr::bin(BinOp::CmpEq, b.clone(), b.clone())).as_const(),
            Some(1)
        );
        let b2 = Expr::byte(7);
        assert_eq!(
            simplify(&Expr::bin(BinOp::CmpNe, b.clone(), b2)).as_const(),
            // structurally equal but different Rc: not folded (conservative)
            None
        );
    }
}
