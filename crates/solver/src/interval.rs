//! Conservative interval analysis over expressions.
//!
//! Byte variables range over their current domains; interval evaluation
//! propagates `[lo, hi]` bounds bottom-up, giving the solver a cheap
//! refutation for wide constraints that per-variable filtering cannot see
//! (e.g. `b0 + b1 + b2 == 766` is impossible because the sum is bounded by
//! 765). All rules are *non-wrapping*: any operation that could overflow
//! 64 bits answers "unknown" instead of a wrong bound.

use crate::constraint::Cond;
use crate::expr::Expr;

/// An inclusive unsigned interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: u64,
    /// Upper bound (inclusive).
    pub hi: u64,
}

impl Interval {
    /// The point interval `[v, v]`.
    pub fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval is a single value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the two intervals share any value.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Evaluates `expr` to an interval, with `var_bounds` supplying the
/// current `[min, max]` of each byte variable. Returns `None` when no
/// sound bound is known (possible wrap, unsupported operator).
pub fn eval_interval(
    expr: &Expr,
    var_bounds: &impl Fn(u32) -> Option<(u8, u8)>,
) -> Option<Interval> {
    match expr {
        Expr::Const(v) => Some(Interval::point(*v)),
        Expr::Byte(o) => {
            let (lo, hi) = var_bounds(*o)?;
            Some(Interval {
                lo: u64::from(lo),
                hi: u64::from(hi),
            })
        }
        Expr::Concat(parts) => {
            let mut lo = 0u64;
            let mut hi = 0u64;
            for (i, p) in parts.iter().enumerate() {
                let iv = eval_interval(p, var_bounds)?;
                if iv.hi > 0xFF {
                    return None; // not byte-shaped; stay conservative
                }
                lo = lo.checked_add(iv.lo.checked_shl(8 * i as u32)?)?;
                hi = hi.checked_add(iv.hi.checked_shl(8 * i as u32)?)?;
            }
            Some(Interval { lo, hi })
        }
        Expr::Bin(op, a, b) => {
            use octo_ir::BinOp;
            let ia = eval_interval(a, var_bounds);
            let ib = eval_interval(b, var_bounds);
            match op {
                BinOp::Add => {
                    let (ia, ib) = (ia?, ib?);
                    Some(Interval {
                        lo: ia.lo.checked_add(ib.lo)?,
                        hi: ia.hi.checked_add(ib.hi)?,
                    })
                }
                BinOp::Sub => {
                    let (ia, ib) = (ia?, ib?);
                    // Sound only when no value pair can wrap.
                    if ia.lo >= ib.hi {
                        Some(Interval {
                            lo: ia.lo - ib.hi,
                            hi: ia.hi - ib.lo,
                        })
                    } else {
                        None
                    }
                }
                BinOp::Mul => {
                    let (ia, ib) = (ia?, ib?);
                    Some(Interval {
                        lo: ia.lo.checked_mul(ib.lo)?,
                        hi: ia.hi.checked_mul(ib.hi)?,
                    })
                }
                BinOp::And => {
                    // x & y ≤ min(x.hi, y.hi); with a constant mask the
                    // bound tightens to the mask.
                    let hi = match (ia, ib) {
                        (Some(x), Some(y)) => x.hi.min(y.hi),
                        (Some(x), None) | (None, Some(x)) => x.hi,
                        (None, None) => return None,
                    };
                    Some(Interval { lo: 0, hi })
                }
                BinOp::Or => {
                    let (ia, ib) = (ia?, ib?);
                    // x | y < 2^k where k covers both his; and ≥ max(los).
                    let bits = 64 - ia.hi.max(ib.hi).leading_zeros();
                    let hi = if bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                    Some(Interval {
                        lo: ia.lo.max(ib.lo),
                        hi,
                    })
                }
                BinOp::Xor => {
                    let (ia, ib) = (ia?, ib?);
                    let bits = 64 - ia.hi.max(ib.hi).leading_zeros();
                    let hi = if bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                    Some(Interval { lo: 0, hi })
                }
                BinOp::Shl => {
                    let (ia, ib) = (ia?, ib?);
                    if !ib.is_point() || ib.lo >= 64 {
                        return None;
                    }
                    Some(Interval {
                        lo: ia.lo.checked_shl(ib.lo as u32)?,
                        hi: ia.hi.checked_shl(ib.lo as u32)?,
                    })
                }
                BinOp::ShrL => {
                    let (ia, ib) = (ia?, ib?);
                    if !ib.is_point() || ib.lo >= 64 {
                        return None;
                    }
                    Some(Interval {
                        lo: ia.lo >> ib.lo,
                        hi: ia.hi >> ib.lo,
                    })
                }
                // Comparisons produce 0/1.
                BinOp::CmpEq
                | BinOp::CmpNe
                | BinOp::CmpLtU
                | BinOp::CmpLeU
                | BinOp::CmpGtU
                | BinOp::CmpGeU
                | BinOp::CmpLtS
                | BinOp::CmpLeS
                | BinOp::CmpGtS
                | BinOp::CmpGeS => Some(Interval { lo: 0, hi: 1 }),
                _ => None,
            }
        }
        Expr::Un(_, _) => None,
    }
}

/// Whether `lhs cond rhs` is *refuted* by interval reasoning (definitely
/// unsatisfiable). `false` means "cannot tell", never "satisfiable".
pub fn refutes(cond: Cond, lhs: &Interval, rhs: &Interval) -> bool {
    // Signed relations are only sound on the non-negative half.
    let signed_safe = lhs.hi < (1u64 << 63) && rhs.hi < (1u64 << 63);
    match cond {
        Cond::Eq => !lhs.intersects(rhs),
        Cond::Ne => lhs.is_point() && rhs.is_point() && lhs.lo == rhs.lo,
        Cond::Ult => lhs.lo >= rhs.hi,
        Cond::Ule => lhs.lo > rhs.hi,
        Cond::Slt => signed_safe && lhs.lo >= rhs.hi,
        Cond::Sle => signed_safe && lhs.lo > rhs.hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr as E;
    use octo_ir::BinOp;

    fn full(_: u32) -> Option<(u8, u8)> {
        Some((0, 255))
    }

    #[test]
    fn sum_of_three_bytes_is_bounded() {
        let sum = E::bin(
            BinOp::Add,
            E::bin(BinOp::Add, E::byte(0), E::byte(1)),
            E::byte(2),
        );
        let iv = eval_interval(&sum, &full).unwrap();
        assert_eq!(iv, Interval { lo: 0, hi: 765 });
        assert!(refutes(Cond::Eq, &iv, &Interval::point(766)));
        assert!(!refutes(Cond::Eq, &iv, &Interval::point(765)));
    }

    #[test]
    fn concat_bounds() {
        let word = E::concat_le(0, 2);
        let iv = eval_interval(&word, &full).unwrap();
        assert_eq!(iv, Interval { lo: 0, hi: 0xFFFF });
    }

    #[test]
    fn sub_is_conservative_about_wrap() {
        let e = E::bin(BinOp::Sub, E::byte(0), E::byte(1));
        assert_eq!(eval_interval(&e, &full), None); // may wrap
        let e2 = E::bin(BinOp::Sub, E::val(1000), E::byte(0));
        let iv = eval_interval(&e2, &full).unwrap();
        assert_eq!(iv, Interval { lo: 745, hi: 1000 });
    }

    #[test]
    fn masks_bound_results() {
        let e = E::bin(BinOp::And, E::concat_le(0, 4), E::val(0xFF));
        // simplification would reduce this, but raw interval eval must
        // also bound it
        let iv = eval_interval(&e, &full).unwrap();
        assert!(iv.hi <= 0xFF);
    }

    #[test]
    fn refutation_rules() {
        let a = Interval { lo: 10, hi: 20 };
        let b = Interval { lo: 30, hi: 40 };
        assert!(refutes(Cond::Eq, &a, &b));
        assert!(refutes(Cond::Ult, &b, &a)); // 30.. < ..20 impossible
        assert!(!refutes(Cond::Ult, &a, &b));
        assert!(refutes(Cond::Ne, &Interval::point(5), &Interval::point(5)));
        assert!(!refutes(Cond::Ne, &a, &a));
    }

    #[test]
    fn narrowed_domains_tighten_bounds() {
        let narrow = |o: u32| if o == 0 { Some((5, 7)) } else { Some((0, 255)) };
        let iv = eval_interval(&E::byte(0), &narrow).unwrap();
        assert_eq!(iv, Interval { lo: 5, hi: 7 });
    }
}
