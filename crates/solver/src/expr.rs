//! Symbolic expressions over input-file bytes.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use octo_ir::{BinOp, UnOp};

/// Shared expression handle. Expressions are immutable and reference
/// counted so symbolic states can be forked cheaply.
pub type ExprRef = Rc<Expr>;

/// A 64-bit symbolic term over input-file bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A concrete 64-bit value.
    Const(u64),
    /// The input-file byte at the given offset (value in `0..=255`).
    Byte(u32),
    /// A little-endian concatenation of 8-bit terms: element 0 is the least
    /// significant byte. At most 8 elements.
    Concat(Vec<ExprRef>),
    /// Binary operation (same semantics as the MicroIR operator).
    Bin(BinOp, ExprRef, ExprRef),
    /// Unary operation.
    Un(UnOp, ExprRef),
}

impl Expr {
    /// A constant term.
    pub fn val(v: u64) -> ExprRef {
        Rc::new(Expr::Const(v))
    }

    /// The input byte at `offset`.
    pub fn byte(offset: u32) -> ExprRef {
        Rc::new(Expr::Byte(offset))
    }

    /// A little-endian word of `len` consecutive input bytes starting at
    /// `offset` (matching a MicroIR `load` from a symbolic file buffer).
    ///
    /// # Panics
    /// Panics if `len` is 0 or greater than 8.
    pub fn concat_le(offset: u32, len: u32) -> ExprRef {
        assert!((1..=8).contains(&len), "concat length must be 1..=8");
        if len == 1 {
            return Expr::byte(offset);
        }
        Rc::new(Expr::Concat(
            (0..len).map(|i| Expr::byte(offset + i)).collect(),
        ))
    }

    /// Builds a binary operation (unsimplified; see [`crate::simplify`]).
    pub fn bin(op: BinOp, lhs: ExprRef, rhs: ExprRef) -> ExprRef {
        Rc::new(Expr::Bin(op, lhs, rhs))
    }

    /// Builds a unary operation (unsimplified).
    pub fn un(op: UnOp, src: ExprRef) -> ExprRef {
        Rc::new(Expr::Un(op, src))
    }

    /// The concrete value, if this term is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Expr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects the distinct byte offsets this term depends on.
    pub fn vars(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<u32>) {
        match self {
            Expr::Const(_) => {}
            Expr::Byte(o) => {
                out.insert(*o);
            }
            Expr::Concat(parts) => parts.iter().for_each(|p| p.collect_vars(out)),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Un(_, a) => a.collect_vars(out),
        }
    }

    /// Node count — used by the symbolic executor's state-memory
    /// accounting, which reproduces angr's path-explosion `MemoryError`
    /// (paper Table IV).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Byte(_) => 1,
            Expr::Concat(parts) => 1 + parts.iter().map(|p| p.size()).sum::<usize>(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Un(_, a) => 1 + a.size(),
        }
    }

    /// Evaluates the term under a (possibly partial) byte assignment.
    ///
    /// Returns `None` if the term references an unassigned byte, or on
    /// division by zero.
    pub fn eval(&self, lookup: &impl Fn(u32) -> Option<u8>) -> Option<u64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Byte(o) => lookup(*o).map(u64::from),
            Expr::Concat(parts) => {
                let mut value = 0u64;
                for (i, p) in parts.iter().enumerate() {
                    let b = p.eval(lookup)?;
                    value |= (b & 0xFF) << (8 * i);
                }
                Some(value)
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(lookup)?, b.eval(lookup)?);
                op.eval(a, b)
            }
            Expr::Un(op, a) => Some(op.eval(a.eval(lookup)?)),
        }
    }

    /// Evaluates against a complete concrete input file (offsets past the
    /// end read as 0, matching the symbolic executor's zero-fill of a
    /// fixed-size symbolic file).
    pub fn eval_file(&self, file: &[u8]) -> Option<u64> {
        self.eval(&|off| Some(file.get(off as usize).copied().unwrap_or(0)))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => {
                if *v > 0xFFFF {
                    write!(f, "{v:#x}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Byte(o) => write!(f, "in[{o}]"),
            Expr::Concat(parts) => {
                write!(f, "le(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Bin(op, a, b) => write!(f, "({} {a} {b})", op.mnemonic()),
            Expr::Un(op, a) => write!(f, "({} {a})", op.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_le_evaluates_little_endian() {
        let e = Expr::concat_le(0, 4);
        assert_eq!(e.eval_file(&[0x78, 0x56, 0x34, 0x12]), Some(0x1234_5678));
    }

    #[test]
    fn single_byte_concat_collapses() {
        let e = Expr::concat_le(3, 1);
        assert_eq!(*e, Expr::Byte(3));
    }

    #[test]
    fn vars_collects_all_offsets() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::concat_le(2, 2),
            Expr::bin(BinOp::Mul, Expr::byte(9), Expr::val(4)),
        );
        let vars: Vec<u32> = e.vars().into_iter().collect();
        assert_eq!(vars, vec![2, 3, 9]);
    }

    #[test]
    fn eval_partial_assignment_returns_none() {
        let e = Expr::bin(BinOp::Add, Expr::byte(0), Expr::byte(1));
        let only_zero = |off: u32| if off == 0 { Some(5u8) } else { None };
        assert_eq!(e.eval(&only_zero), None);
    }

    #[test]
    fn eval_division_by_zero_is_none() {
        let e = Expr::bin(BinOp::DivU, Expr::val(8), Expr::byte(0));
        assert_eq!(e.eval_file(&[0]), None);
        assert_eq!(e.eval_file(&[2]), Some(4));
    }

    #[test]
    fn eval_file_zero_fills_past_end() {
        let e = Expr::byte(100);
        assert_eq!(e.eval_file(b"ab"), Some(0));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::bin(BinOp::Xor, Expr::byte(0), Expr::val(1));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn display_forms() {
        let e = Expr::bin(BinOp::CmpEq, Expr::concat_le(0, 2), Expr::val(0xABCD));
        let s = e.to_string();
        assert!(s.contains("in[0]"), "{s}");
        assert!(s.contains("eq"), "{s}");
    }
}
