//! # octo-solver — byte-level constraint solver (the Z3 / angr-solver substitute).
//!
//! OctoPoCs solves two families of constraints (paper §III-B/C):
//!
//! 1. *guiding-input constraints*: branch conditions collected by directed
//!    symbolic execution over a fully symbolic input file, and
//! 2. *crash-primitive constraints*: byte equalities pinning each bunch of
//!    the original PoC at the file position where the execution of `T`
//!    enters the shared code area (`sym[5:9] == 0x41` in the paper's
//!    Fig. 5 example).
//!
//! Both families are constraints over the *bytes of one input file*, which
//! is the fragment this solver implements: expressions are 64-bit terms
//! over [`Expr::Byte`] variables (one per file offset), and solving
//! produces a concrete byte assignment — the reformed PoC.
//!
//! The solver is complete for the fragment the symbolic executor emits:
//! constraint normalisation decomposes equality with byte concatenations
//! into per-byte facts, domain propagation prunes each byte's 256-value
//! domain, and a bounded backtracking search covers residual multi-byte
//! constraints. `Unsat` answers are what drive the paper's *loop-dead* and
//! Type-III ("vulnerability not triggerable") verdicts, so unsoundness in
//! either direction would corrupt the evaluation — the property tests check
//! models against their constraint sets and cross-check `Unsat` by
//! exhaustive enumeration on small instances.
//!
//! ```
//! use octo_solver::{Expr, Cond, Constraint, ConstraintSet, SolveResult};
//!
//! // "the 2-byte little-endian word at offsets 4..6 equals 0x1234"
//! let word = Expr::concat_le(4, 2);
//! let mut set = ConstraintSet::new();
//! set.push(Constraint::new(word, Expr::val(0x1234), Cond::Eq));
//! match set.solve() {
//!     SolveResult::Sat(model) => {
//!         assert_eq!(model.byte(4), 0x34);
//!         assert_eq!(model.byte(5), 0x12);
//!     }
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```
#![warn(missing_docs)]

pub mod constraint;
pub mod domain;
pub mod expr;
pub mod interval;
pub mod simplify;
pub mod solve;

pub use constraint::{Cond, Constraint, ConstraintSet};
pub use domain::ByteDomain;
pub use expr::{Expr, ExprRef};
pub use interval::{eval_interval, Interval};
pub use solve::{Model, SolveLimits, SolveResult, SolverCounters};
