//! Per-byte value domains (256-bit sets).

use std::fmt;

/// The set of values a single input byte may still take.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ByteDomain {
    bits: [u64; 4],
}

impl ByteDomain {
    /// The full domain `0..=255`.
    pub fn full() -> ByteDomain {
        ByteDomain {
            bits: [u64::MAX; 4],
        }
    }

    /// The empty domain (contradiction).
    pub fn empty() -> ByteDomain {
        ByteDomain { bits: [0; 4] }
    }

    /// A singleton domain.
    pub fn singleton(v: u8) -> ByteDomain {
        let mut d = ByteDomain::empty();
        d.insert(v);
        d
    }

    /// Whether `v` is in the domain.
    pub fn contains(&self, v: u8) -> bool {
        self.bits[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
    }

    /// Adds `v`.
    pub fn insert(&mut self, v: u8) {
        self.bits[(v >> 6) as usize] |= 1u64 << (v & 63);
    }

    /// Removes `v`. Returns whether it was present.
    pub fn remove(&mut self, v: u8) -> bool {
        let word = &mut self.bits[(v >> 6) as usize];
        let mask = 1u64 << (v & 63);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Intersects with `other` in place. Returns whether anything changed.
    pub fn intersect(&mut self, other: &ByteDomain) -> bool {
        let mut changed = false;
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            let next = *w & o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Number of values remaining.
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the domain is empty (contradiction).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The single remaining value, if exactly one remains.
    pub fn as_singleton(&self) -> Option<u8> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// The smallest remaining value.
    pub fn min(&self) -> Option<u8> {
        self.iter().next()
    }

    /// The largest remaining value.
    pub fn max(&self) -> Option<u8> {
        (0u16..=255)
            .rev()
            .map(|v| v as u8)
            .find(|v| self.contains(*v))
    }

    /// Iterates remaining values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..=255).map(|v| v as u8).filter(|v| self.contains(*v))
    }
}

impl Default for ByteDomain {
    fn default() -> ByteDomain {
        ByteDomain::full()
    }
}

impl fmt::Debug for ByteDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.len();
        if n == 256 {
            return write!(f, "ByteDomain(full)");
        }
        if n <= 8 {
            let vals: Vec<u8> = self.iter().collect();
            return write!(f, "ByteDomain({vals:?})");
        }
        write!(f, "ByteDomain({n} values)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        assert_eq!(ByteDomain::full().len(), 256);
        assert!(ByteDomain::empty().is_empty());
        assert!(!ByteDomain::full().is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut d = ByteDomain::empty();
        d.insert(0);
        d.insert(255);
        d.insert(100);
        assert!(d.contains(0) && d.contains(255) && d.contains(100));
        assert!(!d.contains(1));
        assert!(d.remove(100));
        assert!(!d.remove(100));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn singleton_extraction() {
        let d = ByteDomain::singleton(42);
        assert_eq!(d.as_singleton(), Some(42));
        assert_eq!(ByteDomain::full().as_singleton(), None);
        assert_eq!(d.min(), Some(42));
        assert_eq!(d.max(), Some(42));
        assert_eq!(ByteDomain::full().max(), Some(255));
        assert_eq!(ByteDomain::empty().max(), None);
    }

    #[test]
    fn intersect_reports_change() {
        let mut a = ByteDomain::full();
        let b = ByteDomain::singleton(7);
        assert!(a.intersect(&b));
        assert_eq!(a.as_singleton(), Some(7));
        assert!(!a.intersect(&b)); // second time: no change
    }

    #[test]
    fn iter_is_sorted() {
        let mut d = ByteDomain::empty();
        for v in [9u8, 3, 200, 64] {
            d.insert(v);
        }
        let vals: Vec<u8> = d.iter().collect();
        assert_eq!(vals, vec![3, 9, 64, 200]);
    }
}
