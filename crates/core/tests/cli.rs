//! End-to-end test of the `octopocs` CLI binary.

use std::path::PathBuf;
use std::process::Command;

const S_SRC: &str = r#"
func main() {
entry:
    fd = open
    call decode(fd)
    halt 0
}
func decode(fd) {
entry:
    v = getc fd
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

const T_SRC: &str = r#"
func main() {
entry:
    fd = open
    h = getc fd
    ok = eq h, 0x54
    br ok, go, rej
go:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    v = getc fd
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

const T_SAFE_SRC: &str = r#"
func main() {
entry:
    halt 0
}
func decode(fd) {
entry:
    ret
}
"#;

struct Workdir {
    dir: PathBuf,
}

impl Workdir {
    fn new(tag: &str) -> Workdir {
        let dir =
            std::env::temp_dir().join(format!("octopocs-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create workdir");
        Workdir { dir }
    }

    fn write(&self, name: &str, contents: &[u8]) -> String {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).expect("write input file");
        path.to_string_lossy().into_owned()
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_octopocs"))
}

#[test]
fn triggered_pair_exits_zero_and_writes_poc_prime() {
    let wd = Workdir::new("triggered");
    let s = wd.write("s.mir", S_SRC.as_bytes());
    let t = wd.write("t.mir", T_SRC.as_bytes());
    let poc = wd.write("poc.bin", b"A");
    let out_path = wd.path("poc_prime.bin");

    let output = cli()
        .args([
            "--s", &s, "--t", &t, "--poc", &poc, "--shared", "decode", "--out", &out_path,
        ])
        .output()
        .expect("spawn cli");
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let poc_prime = std::fs::read(&out_path).expect("poc' written");
    assert_eq!(poc_prime[0], 0x54, "guiding header byte");
    assert_eq!(poc_prime[1], 0x41, "crash primitive byte");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("triggered"), "{stdout}");
}

#[test]
fn not_triggerable_pair_exits_one() {
    let wd = Workdir::new("safe");
    let s = wd.write("s.mir", S_SRC.as_bytes());
    let t = wd.write("t.mir", T_SAFE_SRC.as_bytes());
    let poc = wd.write("poc.bin", b"A");
    let output = cli()
        .args(["--s", &s, "--t", &t, "--poc", &poc, "--shared", "decode"])
        .output()
        .expect("spawn cli");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("not triggerable"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let wd = Workdir::new("json");
    let s = wd.write("s.mir", S_SRC.as_bytes());
    let t = wd.write("t.mir", T_SRC.as_bytes());
    let poc = wd.write("poc.bin", b"A");
    let output = cli()
        .args([
            "--s", &s, "--t", &t, "--poc", &poc, "--shared", "decode", "--json",
        ])
        .output()
        .expect("spawn cli");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"verdict\":\"Type-II\""), "{stdout}");
    assert!(stdout.contains("\"poc_generated\":true"), "{stdout}");
    assert!(stdout.contains("\"ep\":\"decode\""), "{stdout}");
}

#[test]
fn usage_errors_exit_three() {
    let output = cli().args(["--s", "only.mir"]).output().expect("spawn cli");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_reports_error() {
    let wd = Workdir::new("missing");
    let s = wd.write("s.mir", S_SRC.as_bytes());
    let output = cli()
        .args([
            "--s",
            &s,
            "--t",
            "/nonexistent/t.mir",
            "--poc",
            "/nonexistent/p.bin",
            "--shared",
            "decode",
        ])
        .output()
        .expect("spawn cli");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn parse_error_in_program_is_reported_with_line() {
    let wd = Workdir::new("badsyntax");
    let s = wd.write(
        "s.mir",
        b"func main() {\nentry:\n  x = bogus y\n  ret x\n}\n",
    );
    let t = wd.write("t.mir", T_SRC.as_bytes());
    let poc = wd.write("poc.bin", b"A");
    let output = cli()
        .args(["--s", &s, "--t", &t, "--poc", &poc, "--shared", "decode"])
        .output()
        .expect("spawn cli");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn minimize_flag_shrinks_poc_prime() {
    let wd = Workdir::new("minimize");
    let s = wd.write("s.mir", S_SRC.as_bytes());
    let t = wd.write("t.mir", T_SRC.as_bytes());
    let poc = wd.write("poc.bin", b"A");
    let out_path = wd.path("poc_min.bin");
    let output = cli()
        .args([
            "--s",
            &s,
            "--t",
            &t,
            "--poc",
            &poc,
            "--shared",
            "decode",
            "--minimize",
            "--out",
            &out_path,
        ])
        .output()
        .expect("spawn cli");
    assert!(output.status.success(), "{output:?}");
    let min = std::fs::read(&out_path).expect("written");
    // poc' was padded to poc.len()+slack; minimisation trims to 2 bytes.
    assert_eq!(min, vec![0x54, 0x41]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("minimized"), "{stdout}");
}
