//! Property tests for the `PreparedSource` blob codec: encode/decode
//! is the exact identity for every value the pipeline can produce, and
//! decoding is *total* — truncated prefixes always error, bit-flipped
//! and arbitrary bytes never panic (the store's outer checksum frame is
//! what detects flips; the payload decoder only has to survive them).

use proptest::collection::vec;
use proptest::prelude::*;

use octo_ir::{BlockId, FuncId, RegionKind, Width};
use octo_poc::{Bunch, CrashPrimitives};
use octo_taint::TaintStats;
use octo_vm::{Backtrace, CrashKind, CrashReport};
use octopocs::blob::{from_blob, to_blob};
use octopocs::pipeline::PreparedSource;

/// Function-name alphabet chosen to stress UTF-8 handling: multi-byte
/// characters beside plain identifiers.
const NAME_ALPHABET: &[char] = &['a', 'Z', '_', '0', ' ', '\u{e9}', '\u{4e16}', '\u{1f600}'];

fn arb_name() -> impl Strategy<Value = String> {
    vec(0..NAME_ALPHABET.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| NAME_ALPHABET[i]).collect())
}

fn arb_region() -> impl Strategy<Value = Option<RegionKind>> {
    prop_oneof![
        Just(None),
        Just(Some(RegionKind::Heap)),
        Just(Some(RegionKind::Stack)),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W1),
        Just(Width::W2),
        Just(Width::W4),
        Just(Width::W8),
    ]
}

fn arb_crash_kind() -> impl Strategy<Value = CrashKind> {
    prop_oneof![
        (any::<u64>(), arb_region())
            .prop_map(|(addr, region)| CrashKind::OutOfBounds { addr, region }),
        any::<u64>().prop_map(|addr| CrashKind::NullDeref { addr }),
        Just(CrashKind::DivByZero),
        arb_width().prop_map(|width| CrashKind::IntegerOverflow { width }),
        any::<u64>().prop_map(|code| CrashKind::Trap { code }),
        Just(CrashKind::InfiniteLoop),
        Just(CrashKind::StackOverflow),
        any::<u64>().prop_map(|value| CrashKind::BadIndirect { value }),
        any::<u64>().prop_map(|fd| CrashKind::BadFileDescriptor { fd }),
    ]
}

fn arb_crash() -> impl Strategy<Value = CrashReport> {
    (
        arb_crash_kind(),
        any::<u32>(),
        any::<u32>(),
        any::<usize>(),
        vec((any::<u32>(), arb_name()), 0..5),
        any::<u64>(),
    )
        .prop_map(
            |(kind, func, block, inst_idx, frames, insts_executed)| CrashReport {
                kind,
                func: FuncId(func),
                block: BlockId(block),
                inst_idx,
                backtrace: Backtrace::new(
                    frames
                        .into_iter()
                        .map(|(id, name)| (FuncId(id), name))
                        .collect(),
                ),
                insts_executed,
            },
        )
}

fn arb_primitives() -> impl Strategy<Value = CrashPrimitives> {
    vec(
        (
            any::<u32>(),
            vec((any::<u32>(), any::<u8>()), 0..6),
            vec(any::<u64>(), 0..4),
        ),
        0..4,
    )
    .prop_map(|entries| {
        let mut prims = CrashPrimitives::new();
        for (seq, pairs, args) in entries {
            let mut bunch = Bunch::new(seq);
            for (offset, value) in pairs {
                bunch.add(offset, value);
            }
            prims.push(bunch, args);
        }
        prims
    })
}

fn arb_prepared() -> impl Strategy<Value = PreparedSource> {
    (
        (any::<u32>(), arb_name(), arb_crash(), arb_primitives()),
        any::<u32>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((ep, ep_name, s_crash, primitives), ep_entries, p1_insts, taint)| PreparedSource {
                ep: FuncId(ep),
                ep_name,
                s_crash,
                primitives,
                ep_entries,
                p1_insts,
                taint: TaintStats {
                    bytes_uploaded: taint.0,
                    peak_tainted_addrs: taint.1,
                    taint_records: taint.2,
                },
            },
        )
}

proptest! {
    /// `from_blob ∘ to_blob` is the identity, and re-encoding the
    /// decoded value is byte-identical (the encoding is canonical).
    #[test]
    fn round_trips_exactly(prep in arb_prepared()) {
        let blob = to_blob(&prep);
        let back = from_blob(&blob);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let back = back.unwrap();
        prop_assert_eq!(&back, &prep);
        prop_assert_eq!(to_blob(&back), blob);
    }

    /// Every strict prefix of a valid blob is detected as truncated —
    /// decoding errors, it never panics and never misreads.
    #[test]
    fn truncation_always_errors(prep in arb_prepared(), frac in 0u32..100) {
        let blob = to_blob(&prep);
        let cut = (blob.len() as u64 * u64::from(frac) / 100) as usize;
        if cut < blob.len() {
            prop_assert!(from_blob(&blob[..cut]).is_err());
        }
    }

    /// A single flipped bit never panics the decoder. It may still
    /// decode (a flipped payload integer is a valid different value —
    /// the store's FNV frame checksum is what catches that); the
    /// payload decoder's only obligation is to stay total.
    #[test]
    fn bit_flips_never_panic(prep in arb_prepared(), byte in any::<u64>(), bit in 0u8..8) {
        let mut blob = to_blob(&prep);
        let at = (byte % blob.len() as u64) as usize;
        blob[at] ^= 1 << bit;
        let _ = from_blob(&blob);
    }

    /// Arbitrary bytes — not a blob at all — error instead of panicking
    /// or over-allocating on hostile length prefixes.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = from_blob(&bytes);
    }
}
