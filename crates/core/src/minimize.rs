//! PoC minimisation.
//!
//! The paper observes that reformed PoCs are "often more optimized than
//! poc because \[they\] did not contain unnecessary bytes" (§V-B). This
//! module makes that a first-class operation: given any input that
//! triggers the propagated vulnerability, produce a smaller input that
//! still triggers it — useful when archiving PoCs or reporting upstream.
//!
//! Two passes, both preserving the invariant "crashes inside `ℓ` with the
//! same crash class":
//!
//! 1. **tail truncation** (binary search for the shortest crashing
//!    prefix), then
//! 2. **byte zeroing** (every non-zero byte that can be zeroed without
//!    losing the crash becomes zero — a ddmin-style canonicalisation).

use octo_ir::{FuncId, Program};
use octo_poc::PocFile;
use octo_vm::{Limits, RunOutcome, Vm};

/// Statistics of one minimisation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Input length before/after.
    pub len_before: usize,
    /// Length after minimisation.
    pub len_after: usize,
    /// Non-zero bytes zeroed by the second pass.
    pub bytes_zeroed: usize,
    /// Executions spent.
    pub execs: u64,
}

/// Minimises `poc` against `program`, preserving a crash whose backtrace
/// enters `shared` and whose class matches the original crash.
///
/// Returns the original PoC unchanged (with zeroed stats) when it does not
/// crash inside `shared` to begin with.
pub fn minimize_poc(
    program: &Program,
    poc: &PocFile,
    shared: &[FuncId],
    limits: Limits,
) -> (PocFile, MinimizeStats) {
    let mut execs = 0u64;
    let mut crashes = |bytes: &[u8], want_class: Option<&str>| -> Option<&'static str> {
        execs += 1;
        let out = Vm::new(program, bytes).with_limits(limits).run();
        match out {
            RunOutcome::Crash(report) if report.backtrace.any_in(shared) => {
                let class = report.kind.class();
                match want_class {
                    Some(w) if w != class => None,
                    _ => Some(class),
                }
            }
            _ => None,
        }
    };

    let Some(class) = crashes(poc.bytes(), None) else {
        return (
            poc.clone(),
            MinimizeStats {
                len_before: poc.len(),
                len_after: poc.len(),
                bytes_zeroed: 0,
                execs,
            },
        );
    };

    // Pass 1: shortest crashing prefix by binary search. Crash behaviour
    // is not monotone in general, so finish with a linear refinement from
    // the binary-search candidate.
    let bytes = poc.bytes();
    let (mut lo, mut hi) = (0usize, bytes.len()); // crash length in (lo, hi]
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if crashes(&bytes[..mid], Some(class)).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut current: Vec<u8> = bytes[..hi].to_vec();
    while !current.is_empty() && crashes(&current[..current.len() - 1], Some(class)).is_some() {
        current.pop();
    }

    // Pass 2: zero every byte that is not load-bearing.
    let mut zeroed = 0usize;
    for i in 0..current.len() {
        if current[i] == 0 {
            continue;
        }
        let old = current[i];
        current[i] = 0;
        if crashes(&current, Some(class)).is_some() {
            zeroed += 1;
        } else {
            current[i] = old;
        }
    }

    let stats = MinimizeStats {
        len_before: poc.len(),
        len_after: current.len(),
        bytes_zeroed: zeroed,
        execs,
    };
    (PocFile::new(current), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    fn program() -> Program {
        parse_program(
            r#"
func main() {
entry:
    fd = open
    m = getc fd
    ok = eq m, 0x4D
    br ok, go, rej
go:
    pad = getc fd
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    v = getc fd
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#,
        )
        .expect("parses")
    }

    fn shared(p: &Program) -> Vec<FuncId> {
        vec![p.func_by_name("decode").expect("decode")]
    }

    #[test]
    fn truncates_trailing_garbage() {
        let p = program();
        let poc = PocFile::from(&b"MxA-lots-of-trailing-garbage"[..]);
        let (min, stats) = minimize_poc(&p, &poc, &shared(&p), Limits::default());
        assert_eq!(min.len(), 3, "{}", min.hexdump());
        assert_eq!(min.byte(0), b'M');
        assert_eq!(min.byte(2), b'A');
        assert!(stats.len_after < stats.len_before);
        // The padding byte is not load-bearing and becomes zero.
        assert_eq!(min.byte(1), 0);
        assert_eq!(stats.bytes_zeroed, 1);
    }

    #[test]
    fn preserves_crash_and_class() {
        let p = program();
        let poc = PocFile::from(&b"MxAyyy"[..]);
        let (min, _) = minimize_poc(&p, &poc, &shared(&p), Limits::default());
        let out = Vm::new(&p, min.bytes()).run();
        let crash = out.crash().expect("still crashes");
        assert_eq!(crash.kind.class(), "TRAP");
        assert!(crash.backtrace.any_in(&shared(&p)));
    }

    #[test]
    fn non_crashing_input_is_returned_unchanged() {
        let p = program();
        let poc = PocFile::from(&b"Mxz"[..]);
        let (min, stats) = minimize_poc(&p, &poc, &shared(&p), Limits::default());
        assert_eq!(min, poc);
        assert_eq!(stats.len_after, stats.len_before);
    }

    #[test]
    fn already_minimal_input_is_stable() {
        let p = program();
        let poc = PocFile::from(&b"M\x00A"[..]);
        let (min, stats) = minimize_poc(&p, &poc, &shared(&p), Limits::default());
        assert_eq!(min, poc);
        assert_eq!(stats.bytes_zeroed, 0);
    }

    #[test]
    fn minimizes_corpus_pocs_without_losing_the_crash() {
        for pair in octo_corpus_pairs() {
            let ids = pair.s.resolve_names(pair.shared.iter().map(String::as_str));
            let (min, stats) = minimize_poc(&pair.s, &pair.poc, &ids, Limits::default());
            assert!(min.len() <= pair.poc.len(), "Idx-{}", pair.idx);
            let out = Vm::new(&pair.s, min.bytes()).run();
            assert!(
                out.crash()
                    .map(|c| c.backtrace.any_in(&ids))
                    .unwrap_or(false),
                "Idx-{}: minimised poc lost the crash",
                pair.idx
            );
            assert!(stats.execs > 0);
        }
    }

    // The corpus crate depends on octo-ir/vm/poc only, so borrowing it
    // here would be a dependency cycle; instead reuse two local pairs that
    // exercise the same shapes (watchdog crash + overflow crash).
    fn octo_corpus_pairs() -> Vec<LocalPair> {
        vec![
            LocalPair {
                idx: 100,
                s: program(),
                shared: vec!["decode".into()],
                poc: PocFile::from(&b"MxAtrailing"[..]),
            },
            LocalPair {
                idx: 101,
                s: parse_program(
                    r#"
func main() {
entry:
    fd = open
    call spin(fd)
    halt 0
}
func spin(fd) {
entry:
    pos = tell fd
    b = getc fd
    c = eq b, 0xFF
    br c, rewind, out
rewind:
    seek fd, pos
    jmp entry
out:
    ret
}
"#,
                )
                .expect("parses"),
                shared: vec!["spin".into()],
                poc: PocFile::new(vec![0xFF; 300]),
            },
        ]
    }

    struct LocalPair {
        idx: u32,
        s: Program,
        shared: Vec<String>,
        poc: PocFile,
    }
}
