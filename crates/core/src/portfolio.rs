//! Portfolio verification and patch prioritisation — §VII "Practical
//! usage" made operational.
//!
//! "Assume that a developer has confirmed that several pieces of
//! propagated vulnerable code exist in their software. At this point, they
//! can use OCTOPOCS to determine which vulnerabilities need to be patched
//! more urgently (i.e., they can prioritize vulnerability patches)."
//!
//! [`verify_portfolio`] runs the pipeline over a set of jobs on the
//! work-stealing scheduler ([`octo_sched::run_jobs`]) — job costs are
//! wildly skewed, so static chunking would stall whole chunks behind one
//! slow symbolic-execution job — and returns the results ordered by patch
//! urgency: demonstrated-triggerable clones first (most severe crash
//! class leading), then verification failures (unknown risk), then
//! verified-safe clones. Jobs sharing `(S, poc, ℓ)` share the pipeline
//! prefix through the batch artifact cache (see [`crate::batch`]).

use octo_sched::{run_jobs, ArtifactCache};

use crate::batch::verify_with_cache;
use crate::config::PipelineConfig;
use crate::pipeline::{SoftwarePairInput, VerificationReport};
use crate::verdict::Verdict;

/// One named verification job.
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// Display name (e.g. "CVE-2016-10095 → opj_compress").
    pub name: &'a str,
    /// The pipeline inputs.
    pub input: SoftwarePairInput<'a>,
}

/// The urgency bucket a verified job lands in (ascending = more urgent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Urgency {
    /// Triggered with a memory-corruption class crash (CWE-119 /
    /// CWE-190): patch immediately.
    TriggeredCorruption,
    /// Triggered with any other crash class (DoS-style): patch next.
    TriggeredOther,
    /// Verification failed — the risk is unknown; investigate manually.
    Unknown,
    /// Verified not triggerable — "it must be patched in the end" but can
    /// wait.
    VerifiedSafe,
}

impl Urgency {
    /// Classifies one verdict.
    pub fn of(verdict: &Verdict) -> Urgency {
        match verdict {
            Verdict::Triggered { crash_class, .. } => match *crash_class {
                "CWE-119" | "CWE-190" => Urgency::TriggeredCorruption,
                _ => Urgency::TriggeredOther,
            },
            Verdict::Failure { .. } => Urgency::Unknown,
            Verdict::NotTriggerable { .. } => Urgency::VerifiedSafe,
        }
    }

    /// Human-readable recommendation.
    pub fn recommendation(self) -> &'static str {
        match self {
            Urgency::TriggeredCorruption => "patch immediately (exploitable memory corruption)",
            Urgency::TriggeredOther => "patch soon (demonstrated denial of service)",
            Urgency::Unknown => "investigate manually (verification failed)",
            Urgency::VerifiedSafe => "schedule routine patch (verified not triggerable)",
        }
    }
}

/// One entry of the prioritised report.
#[derive(Debug)]
pub struct PortfolioEntry {
    /// Job name.
    pub name: String,
    /// Urgency bucket.
    pub urgency: Urgency,
    /// The full verification report.
    pub report: VerificationReport,
}

/// Verifies every job (on up to `threads` work-stealing workers) and
/// returns the entries sorted most-urgent-first (the sort is stable, so
/// entries within one urgency bucket stay in submission order).
///
/// Jobs that share a source prefix `(S, poc, ℓ, config)` run
/// preprocessing and P1 once, through a batch-local artifact cache.
///
/// Never propagates a panic from a worker: a panicking arm is caught by
/// the scheduler's isolation envelope and degraded to a
/// [`crate::verdict::FailureReason::Internal`] entry (urgency
/// `Unknown`), so the surviving arms' verdicts are still returned.
pub fn verify_portfolio(
    jobs: &[Job<'_>],
    config: &PipelineConfig,
    threads: usize,
) -> Vec<PortfolioEntry> {
    verify_portfolio_with_faults(jobs, config, threads, None)
}

/// [`verify_portfolio`] with a deterministic [`octo_faults::FaultPlan`]
/// installed around each arm (keyed by submission index), for chaos
/// testing the portfolio path itself.
pub fn verify_portfolio_with_faults(
    jobs: &[Job<'_>],
    config: &PipelineConfig,
    threads: usize,
    faults: Option<&std::sync::Arc<octo_faults::FaultPlan>>,
) -> Vec<PortfolioEntry> {
    let cache = ArtifactCache::new();
    let indices: Vec<usize> = (0..jobs.len()).collect();
    let (results, _stats) = run_jobs(indices, threads.max(1), |_worker, i| {
        let job = &jobs[i];
        let faults_ctx =
            faults.map(|plan| std::sync::Arc::new(octo_faults::JobFaults::new(plan, i as u32)));
        let _guard = faults_ctx.as_ref().map(octo_faults::install);
        let (report, _cache_hit, _key) = verify_with_cache(
            &cache,
            None,
            &job.input,
            config,
            None,
            &octo_obs::NullObserver,
        );
        PortfolioEntry {
            name: job.name.to_string(),
            urgency: Urgency::of(&report.verdict),
            report,
        }
    });
    let mut entries: Vec<PortfolioEntry> = results
        .into_iter()
        .enumerate()
        .map(|(i, result)| match result {
            Ok(entry) => entry,
            Err(panic) => {
                let report = VerificationReport::from_panic(panic.message);
                PortfolioEntry {
                    name: jobs[i].name.to_string(),
                    urgency: Urgency::of(&report.verdict),
                    report,
                }
            }
        })
        .collect();
    entries.sort_by_key(|e| e.urgency);
    entries
}

/// Renders the prioritised report as plain text.
pub fn render_portfolio(entries: &[PortfolioEntry]) -> String {
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "{:>2}. {:<40} {:<10} — {}\n",
            i + 1,
            e.name,
            e.report.verdict.type_label(),
            e.urgency.recommendation()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_poc::PocFile;

    const SHARED: &str = r#"
func decode(fd) {
entry:
    v = getc fd
    c = eq v, 0x41
    br c, boom, fine
boom:
    buf = alloc 4
    store.1 buf + 4, v
    jmp fine
fine:
    ret
}
"#;

    fn s_prog() -> octo_ir::Program {
        parse_program(&format!(
            "func main() {{\nentry:\n fd = open\n call decode(fd)\n halt 0\n}}\n{SHARED}"
        ))
        .expect("parses")
    }

    fn t_triggered() -> octo_ir::Program {
        s_prog()
    }

    fn t_safe() -> octo_ir::Program {
        parse_program(&format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}")).expect("parses")
    }

    #[test]
    fn portfolio_sorts_by_urgency() {
        let s = s_prog();
        let t1 = t_triggered();
        let t2 = t_safe();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["decode".to_string()];
        let jobs = vec![
            Job {
                name: "safe-clone",
                input: SoftwarePairInput {
                    s: &s,
                    t: &t2,
                    poc: &poc,
                    shared: &shared,
                },
            },
            Job {
                name: "live-clone",
                input: SoftwarePairInput {
                    s: &s,
                    t: &t1,
                    poc: &poc,
                    shared: &shared,
                },
            },
        ];
        let entries = verify_portfolio(&jobs, &PipelineConfig::default(), 2);
        assert_eq!(entries.len(), 2);
        // The triggered clone must sort first.
        assert_eq!(entries[0].name, "live-clone");
        assert_eq!(entries[0].urgency, Urgency::TriggeredCorruption);
        assert_eq!(entries[1].name, "safe-clone");
        assert_eq!(entries[1].urgency, Urgency::VerifiedSafe);
        let text = render_portfolio(&entries);
        assert!(text.contains("patch immediately"), "{text}");
        assert!(text.contains("verified not triggerable"), "{text}");
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        // A mixed bag: triggered and safe clones interleaved, so the
        // final ordering exercises both the urgency sort and the
        // scheduler's submission-order guarantee within each bucket.
        let s = s_prog();
        let t1 = t_triggered();
        let t2 = t_safe();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["decode".to_string()];
        let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        let jobs: Vec<Job<'_>> = names
            .iter()
            .enumerate()
            .map(|(i, name)| Job {
                name,
                input: SoftwarePairInput {
                    s: &s,
                    t: if i % 3 == 0 { &t2 } else { &t1 },
                    poc: &poc,
                    shared: &shared,
                },
            })
            .collect();
        let fingerprint = |entries: &[PortfolioEntry]| -> Vec<(String, Urgency, &'static str)> {
            entries
                .iter()
                .map(|e| (e.name.clone(), e.urgency, e.report.verdict.type_label()))
                .collect()
        };
        let reference = fingerprint(&verify_portfolio(&jobs, &PipelineConfig::default(), 1));
        // Verdicts AND order must be identical for any worker count…
        for workers in [2, 8] {
            let got = fingerprint(&verify_portfolio(
                &jobs,
                &PipelineConfig::default(),
                workers,
            ));
            assert_eq!(got, reference, "workers={workers}");
        }
        // …and independent of how the steals interleave across runs.
        for round in 0..3 {
            let got = fingerprint(&verify_portfolio(&jobs, &PipelineConfig::default(), 8));
            assert_eq!(got, reference, "round={round}");
        }
    }

    #[test]
    fn panicking_arm_degrades_without_killing_the_portfolio() {
        use crate::verdict::FailureReason;
        use octo_faults::{FaultPlan, FaultSite};
        use std::sync::Arc;

        let s = s_prog();
        let t1 = t_triggered();
        let t2 = t_safe();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["decode".to_string()];
        let jobs = vec![
            Job {
                name: "live-clone",
                input: SoftwarePairInput {
                    s: &s,
                    t: &t1,
                    poc: &poc,
                    shared: &shared,
                },
            },
            Job {
                name: "safe-clone",
                input: SoftwarePairInput {
                    s: &s,
                    t: &t2,
                    poc: &poc,
                    shared: &shared,
                },
            },
        ];
        // Job 0's directed engine panics on entry; job 1 must survive.
        let plan = Arc::new(FaultPlan::new(3).nth(FaultSite::DirectedPanic, Some(0), 1));
        let entries =
            verify_portfolio_with_faults(&jobs, &PipelineConfig::default(), 2, Some(&plan));
        assert_eq!(entries.len(), 2, "no arm was lost");
        let dead = entries.iter().find(|e| e.name == "live-clone").unwrap();
        assert_eq!(dead.urgency, Urgency::Unknown);
        match &dead.report.verdict {
            Verdict::Failure {
                reason: FailureReason::Internal { panic_msg },
            } => assert!(panic_msg.contains("injected panic"), "{panic_msg}"),
            other => panic!("expected Internal failure, got {other:?}"),
        }
        let safe = entries.iter().find(|e| e.name == "safe-clone").unwrap();
        assert_eq!(
            safe.urgency,
            Urgency::VerifiedSafe,
            "survivor's verdict kept"
        );
    }

    #[test]
    fn urgency_ordering_is_total() {
        assert!(Urgency::TriggeredCorruption < Urgency::TriggeredOther);
        assert!(Urgency::TriggeredOther < Urgency::Unknown);
        assert!(Urgency::Unknown < Urgency::VerifiedSafe);
    }
}
