//! One-to-many propagation scans: clone retrieval feeding the batch.
//!
//! The paper (and every PR before this one) takes the shared function
//! set ℓ as an *input* — a clone detector such as VUDDY is assumed to
//! have run already. This module closes that loop: given vulnerable
//! sources `(S, poc)` and a fleet of candidate targets `T₁…Tₙ`,
//! [`expand_scan`] fingerprints every function (`octo_clone`),
//! retrieves cloned-function candidates per target, and fans the
//! request out into concrete [`BatchJob`]s — one per `(S, Tᵢ)` with a
//! non-empty discovered ℓᵢ — which [`run_scan`] then drives through the
//! ordinary batch scheduler.
//!
//! ## The same-name expansion contract
//!
//! The verification pipeline resolves one ℓ name list against *both*
//! programs (`S` and `T`), so only candidates whose source and target
//! functions share a name become ℓ members. Cross-name candidates
//! (`decode` cloned as `parse_chunk`) are still *reported* — they are
//! real retrieval hits and the human/JSON renderings carry them — but
//! they cannot be verified without a rename pass, so they never enter a
//! job's shared set. `docs/clone-scanning.md` discusses the trade-off.

use octo_clone::{fingerprint_program, retrieve_from_fingerprints, Candidate, CloneParams};
use octo_ir::Program;
use octo_lint::ReachKind;
use octo_poc::PocFile;
use octo_sched::EventSink;
use octo_trace::TraceKind;

use crate::batch::{
    json_escape, run_batch, BatchJob, BatchOptions, BatchReport, SCORE_CENTI_BUCKETS,
};
use crate::config::PipelineConfig;

/// One vulnerable source in a scan: the software, its crashing PoC,
/// and a display name.
#[derive(Debug, Clone)]
pub struct ScanSource {
    /// Display name (used in job names and renderings).
    pub name: String,
    /// The original vulnerable software `S`.
    pub s: Program,
    /// The original PoC (crashes `S`).
    pub poc: PocFile,
}

/// One candidate target in a scan.
#[derive(Debug, Clone)]
pub struct ScanTarget {
    /// Display name.
    pub name: String,
    /// The suspected propagated software `T`.
    pub t: Program,
}

/// Retrieval results for one `(source, target)` program pair.
#[derive(Debug)]
pub struct PairCandidates {
    /// Source display name.
    pub source: String,
    /// Target display name.
    pub target: String,
    /// Retrieved candidates, score-descending (see
    /// [`octo_clone::retrieve_from_fingerprints`] for the order).
    pub candidates: Vec<Candidate>,
}

/// Everything [`expand_scan`] produced.
#[derive(Debug)]
pub struct ScanExpansion {
    /// Candidates per `(source, target)` pair, source-major in input
    /// order. Pairs with no candidate at all are omitted.
    pub pairs: Vec<PairCandidates>,
    /// Expanded batch jobs: one per pair with a non-empty same-name
    /// candidate set, named `"{source} => {target}"`, shared set sorted.
    pub jobs: Vec<BatchJob>,
    /// Functions fingerprinted (each program counted once).
    pub functions_fingerprinted: u64,
    /// (source function, target function) comparisons scored.
    pub pairs_compared: u64,
}

impl ScanExpansion {
    /// Total candidates across all pairs.
    pub fn candidate_count(&self) -> usize {
        self.pairs.iter().map(|p| p.candidates.len()).sum()
    }

    /// The *stable* machine-readable candidate document: input order,
    /// fixed-precision scores, no timings. CI diffs this against
    /// `tests/golden/clone_candidates.json`; it must be byte-identical
    /// across worker counts (retrieval runs before the scheduler, so it
    /// trivially is).
    pub fn render_candidates_json(&self) -> String {
        let mut out = String::from("{\"pairs\":[\n");
        for (i, p) in self.pairs.iter().enumerate() {
            out.push_str(&format!(
                "{{\"source\":\"{}\",\"target\":\"{}\",\"candidates\":[",
                json_escape(&p.source),
                json_escape(&p.target)
            ));
            for (j, c) in p.candidates.iter().enumerate() {
                out.push_str(&format!(
                    "\n {{\"s_func\":\"{}\",\"t_func\":\"{}\",\"score\":{:.4},\
                     \"containment\":{:.4},\"context\":{:.4},\"exact\":{},\"reach\":\"{}\"}}{}",
                    json_escape(&c.s_func),
                    json_escape(&c.t_func),
                    c.score,
                    c.containment,
                    c.context,
                    c.exact,
                    c.reach_label(),
                    if j + 1 == p.candidates.len() { "" } else { "," }
                ));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 == self.pairs.len() { "" } else { "," }
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Human-readable candidate table.
    pub fn render_candidates_human(&self) -> String {
        let mut out = String::new();
        for p in &self.pairs {
            out.push_str(&format!("{} => {}\n", p.source, p.target));
            for c in &p.candidates {
                out.push_str(&format!(
                    "    {:<24} ~ {:<24} score {:.4} (containment {:.4}, \
                     context {:.4}{}) reach {}\n",
                    c.s_func,
                    c.t_func,
                    c.score,
                    c.containment,
                    c.context,
                    if c.exact { ", exact" } else { "" },
                    c.reach_label()
                ));
            }
        }
        out.push_str(&format!(
            "{} candidates across {} program pairs; {} jobs expanded\n",
            self.candidate_count(),
            self.pairs.len(),
            self.jobs.len()
        ));
        out
    }
}

/// Fingerprints every program once, retrieves clone candidates for
/// every `(source, target)` combination, and expands same-name
/// candidates into batch jobs with discovered shared sets.
pub fn expand_scan(
    sources: &[ScanSource],
    targets: &[ScanTarget],
    params: &CloneParams,
) -> ScanExpansion {
    // Fingerprint each program exactly once, reachability included —
    // a fleet scan is quadratic in program pairs but linear in
    // fingerprinting work.
    let source_prints: Vec<_> = sources.iter().map(|s| fingerprint_program(&s.s)).collect();
    let target_prints: Vec<(_, Vec<ReachKind>)> = targets
        .iter()
        .map(|t| {
            let fp = fingerprint_program(&t.t);
            let cg = octo_lint::build_call_graph(&t.t);
            let reach = cg.reach_kinds_from(t.t.entry());
            (fp, reach)
        })
        .collect();
    let functions_fingerprinted = source_prints
        .iter()
        .map(|fp| fp.funcs.len() as u64)
        .chain(target_prints.iter().map(|(fp, _)| fp.funcs.len() as u64))
        .sum();

    let mut pairs = Vec::new();
    let mut jobs = Vec::new();
    let mut pairs_compared = 0u64;
    for (si, source) in sources.iter().enumerate() {
        let sp = &source_prints[si];
        let eligible_s = sp
            .funcs
            .iter()
            .enumerate()
            .filter(|(i, f)| *i != sp.entry && f.insts >= params.min_insts)
            .count() as u64;
        for (ti, target) in targets.iter().enumerate() {
            let (tp, reach) = &target_prints[ti];
            pairs_compared += eligible_s * tp.funcs.len().saturating_sub(1) as u64;
            let candidates = retrieve_from_fingerprints(sp, tp, reach, params);
            if candidates.is_empty() {
                continue;
            }
            // Same-name candidates become the discovered ℓ (sorted for a
            // deterministic cache key); cross-name hits stay report-only.
            let mut shared: Vec<String> = candidates
                .iter()
                .filter(|c| c.s_func == c.t_func)
                .map(|c| c.s_func.clone())
                .collect();
            shared.sort();
            shared.dedup();
            if !shared.is_empty() {
                jobs.push(BatchJob {
                    name: format!("{} => {}", source.name, target.name),
                    s: source.s.clone(),
                    t: target.t.clone(),
                    poc: source.poc.clone(),
                    shared,
                });
            }
            pairs.push(PairCandidates {
                source: source.name.clone(),
                target: target.name.clone(),
                candidates,
            });
        }
    }
    ScanExpansion {
        pairs,
        jobs,
        functions_fingerprinted,
        pairs_compared,
    }
}

/// A finished scan: the expansion plus the batch verification of every
/// expanded job.
#[derive(Debug)]
pub struct ScanReport {
    /// Retrieval results and the job set they expanded into.
    pub expansion: ScanExpansion,
    /// The batch run over [`ScanExpansion::jobs`]. Its metrics registry
    /// additionally carries the `clone_*` metrics for the retrieval
    /// stage.
    pub batch: BatchReport,
}

/// Expands the scan and verifies every discovered job on the batch
/// scheduler. Retrieval happens up front on the calling thread (it is
/// cheap and deterministic); only verification is scheduled, so the
/// candidate document is identical at any worker count.
pub fn run_scan(
    sources: &[ScanSource],
    targets: &[ScanTarget],
    params: &CloneParams,
    config: &PipelineConfig,
    options: &BatchOptions,
    sink: &dyn EventSink,
) -> ScanReport {
    let expansion = expand_scan(sources, targets, params);
    if let Some(rec) = &options.trace {
        // Scan-stage events carry the sentinel job id (they precede job
        // submission) on the coordinator lane.
        let _guard = octo_trace::install(rec, u32::MAX, 0);
        for pair in &expansion.pairs {
            for c in &pair.candidates {
                octo_trace::emit(TraceKind::CandidateScored {
                    score_centi: (c.score * 100.0).round() as u32,
                });
            }
        }
        octo_trace::emit(TraceKind::ScanExpanded {
            candidates: expansion.candidate_count() as u32,
            jobs: expansion.jobs.len() as u32,
        });
    }
    let batch = run_batch(&expansion.jobs, config, options, sink);
    let m = &batch.metrics;
    m.counter("clone_candidates_total")
        .add(expansion.candidate_count() as u64);
    m.counter("clone_functions_fingerprinted_total")
        .add(expansion.functions_fingerprinted);
    m.counter("clone_pairs_compared_total")
        .add(expansion.pairs_compared);
    m.counter("clone_scan_jobs_total")
        .add(expansion.jobs.len() as u64);
    let scores = m.histogram("clone_score_centi", &SCORE_CENTI_BUCKETS);
    for pair in &expansion.pairs {
        for c in &pair.candidates {
            scores.observe((c.score * 100.0).round() as u64);
        }
    }
    ScanReport { expansion, batch }
}

/// The Table II corpus as a scan: every pair's `(S, poc)` against every
/// pair's `T`. This is the `octopocs scan --corpus` workload and the
/// recall fixture — the true `(Sᵢ, Tᵢ)` diagonal must be rediscovered
/// in full.
pub fn corpus_scan_inputs() -> (Vec<ScanSource>, Vec<ScanTarget>) {
    let pairs = octo_corpus::all_pairs();
    let sources = pairs
        .iter()
        .map(|p| ScanSource {
            name: p.display_name(),
            s: p.s.clone(),
            poc: p.poc.clone(),
        })
        .collect();
    let targets = pairs
        .iter()
        .map(|p| ScanTarget {
            name: p.display_name(),
            t: p.t.clone(),
        })
        .collect();
    (sources, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_sched::NullSink;
    use std::sync::Arc;

    const SHARED: &str = r#"
func shared(v) {
entry:
    buf = alloc 16
    store.1 buf, v
    x = load.1 buf
    c = eq x, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn source() -> ScanSource {
        ScanSource {
            name: "S".to_string(),
            s: parse_program(&format!(
                "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
                 halt 0\n}}\n{SHARED}"
            ))
            .unwrap(),
            poc: PocFile::from(&b"A"[..]),
        }
    }

    fn gated_target(name: &str) -> ScanTarget {
        ScanTarget {
            name: name.to_string(),
            t: parse_program(&format!(
                "func main() {{\nentry:\n fd = open\n m = getc fd\n ok = eq m, 0x99\n \
                 br ok, go, rej\ngo:\n b = getc fd\n call shared(b)\n halt 0\nrej:\n \
                 halt 1\n}}\n{SHARED}"
            ))
            .unwrap(),
        }
    }

    fn unrelated_target() -> ScanTarget {
        ScanTarget {
            name: "clean".to_string(),
            t: parse_program(
                "func main() {\nentry:\n r = call f()\n halt r\n}\n\
                 func f() {\nentry:\n a = 1\n b = shl a, 9\n c = xor b, 0x77\n \
                 d = mul c, 5\n ret d\n}\n",
            )
            .unwrap(),
        }
    }

    #[test]
    fn scan_expands_only_matching_targets() {
        let sources = vec![source()];
        let targets = vec![gated_target("t1"), unrelated_target(), gated_target("t2")];
        let exp = expand_scan(&sources, &targets, &CloneParams::default());
        assert_eq!(exp.jobs.len(), 2, "{:?}", exp.jobs);
        assert_eq!(exp.jobs[0].name, "S => t1");
        assert_eq!(exp.jobs[1].name, "S => t2");
        assert_eq!(exp.jobs[0].shared, vec!["shared".to_string()]);
        assert_eq!(exp.pairs.len(), 2, "clean target yields no pair entry");
        assert!(exp.functions_fingerprinted >= 8);
        assert_eq!(
            exp.pairs_compared, 3,
            "one eligible S func x one non-entry func per target"
        );
    }

    #[test]
    fn scan_verdicts_match_direct_batch() {
        let sources = vec![source()];
        let targets = vec![gated_target("t1")];
        let config = PipelineConfig::default();
        let report = run_scan(
            &sources,
            &targets,
            &CloneParams::default(),
            &config,
            &BatchOptions::default(),
            &NullSink,
        );
        assert_eq!(report.batch.entries.len(), 1);
        let entry = &report.batch.entries[0];
        assert_eq!(entry.report.verdict.type_label(), "Type-II");
        // The clone metrics landed in the batch registry.
        let counter = |n: &str| report.batch.metrics.get_counter(n).expect(n).get();
        assert_eq!(counter("clone_scan_jobs_total"), 1);
        assert_eq!(counter("clone_candidates_total"), 1);
        assert!(counter("clone_functions_fingerprinted_total") >= 4);
        assert!(counter("clone_pairs_compared_total") >= 1);
        let h = report
            .batch
            .metrics
            .get_histogram("clone_score_centi")
            .expect("registered");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn candidate_json_is_stable_and_escaped() {
        let sources = vec![source()];
        let targets = vec![gated_target("t\"quoted")];
        let exp = expand_scan(&sources, &targets, &CloneParams::default());
        let json = exp.render_candidates_json();
        assert_eq!(json, exp.render_candidates_json());
        assert!(json.contains("\"target\":\"t\\\"quoted\""), "{json}");
        assert!(json.contains("\"score\":1.0000"), "{json}");
        let human = exp.render_candidates_human();
        assert!(human.contains("1 jobs expanded"), "{human}");
    }

    #[test]
    fn scan_emits_trace_events() {
        let rec = Arc::new(octo_trace::FlightRecorder::with_default_capacity());
        let sources = vec![source()];
        let targets = vec![gated_target("t1")];
        let options = BatchOptions {
            workers: 1,
            trace: Some(Arc::clone(&rec)),
            ..BatchOptions::default()
        };
        run_scan(
            &sources,
            &targets,
            &CloneParams::default(),
            &PipelineConfig::default(),
            &options,
            &NullSink,
        );
        let events = rec.snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::CandidateScored { score_centi: 100 })));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceKind::ScanExpanded {
                candidates: 1,
                jobs: 1
            }
        )));
    }
}
