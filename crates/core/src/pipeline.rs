//! The end-to-end verification pipeline (P1 → P4).

use octo_cfg::{build_cfg, DistanceMap};
use octo_ir::Program;
use octo_poc::PocFile;
use octo_symex::{DirectedConfig, DirectedEngine, DirectedOutcome, DirectedStats};
use octo_taint::{extract_with_limits, TaintConfig, TaintError};
use octo_vm::{CrashReport, RunOutcome, Vm};

use crate::config::PipelineConfig;
use crate::preprocess::{identify_ep, PreprocessError};
use crate::verdict::{FailureReason, NotTriggerableReason, TriggerKind, Verdict};

/// One verification job: the paper's initial inputs `S`, `T`, `poc`, `ℓ`.
#[derive(Debug, Clone, Copy)]
pub struct SoftwarePairInput<'a> {
    /// The original vulnerable software.
    pub s: &'a Program,
    /// The propagated software.
    pub t: &'a Program,
    /// The original PoC (crashes `S`).
    pub poc: &'a PocFile,
    /// Names of the shared (cloned) functions, as a vulnerable clone
    /// detector reports them.
    pub shared: &'a [String],
}

/// Everything `verify` learned, verdict plus diagnostics.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The verification verdict (Table II taxonomy).
    pub verdict: Verdict,
    /// `ep`'s name, when preprocessing succeeded.
    pub ep_name: Option<String>,
    /// Crash of `S` under `poc`.
    pub s_crash: Option<CrashReport>,
    /// Crash of `T` under `poc'`, for triggered verdicts.
    pub t_crash: Option<CrashReport>,
    /// How many times `S` entered `ep` (bunch count).
    pub ep_entries: u32,
    /// Instructions executed in P1 (taint run over `S`).
    pub p1_insts: u64,
    /// Directed symbolic execution statistics (P2+P3).
    pub symex_stats: Option<DirectedStats>,
    /// Instructions executed in P4 (concrete run of `T`).
    pub p4_insts: u64,
    /// Whether the verdict was decided by the P0 static pre-screen, i.e.
    /// without running directed symbolic execution over `T`.
    pub prescreen: bool,
    /// Total wall-clock seconds for the whole pipeline.
    pub wall_seconds: f64,
}

impl VerificationReport {
    fn failure(reason: FailureReason) -> VerificationReport {
        VerificationReport {
            verdict: Verdict::Failure { reason },
            ep_name: None,
            s_crash: None,
            t_crash: None,
            ep_entries: 0,
            p1_insts: 0,
            symex_stats: None,
            p4_insts: 0,
            prescreen: false,
            wall_seconds: 0.0,
        }
    }

    /// The reformed PoC, when one was generated and works.
    pub fn poc_prime(&self) -> Option<&PocFile> {
        match &self.verdict {
            Verdict::Triggered { poc_prime, .. } => Some(poc_prime),
            _ => None,
        }
    }
}

/// Verifies whether the vulnerability propagated from `S` to `T` can still
/// be triggered (the whole OctoPoCs pipeline).
///
/// Never panics on malformed inputs; every abnormal condition maps to a
/// [`Verdict::Failure`] with a diagnostic [`FailureReason`].
pub fn verify(input: &SoftwarePairInput<'_>, config: &PipelineConfig) -> VerificationReport {
    let start = std::time::Instant::now();

    // --- Preprocessing: find ep on the crash stack of S. ---
    let ep_info = match identify_ep(input.s, input.poc, input.shared, config.vm_limits) {
        Ok(info) => info,
        Err(PreprocessError::NoCrash { exit_code }) => {
            return VerificationReport::failure(FailureReason::PocDoesNotCrashS { exit_code })
        }
        Err(PreprocessError::NoSharedFrame | PreprocessError::SharedSetEmpty) => {
            return VerificationReport::failure(FailureReason::EpNotOnCrashStack)
        }
    };
    let mut report = VerificationReport {
        verdict: Verdict::Failure {
            reason: FailureReason::Budget,
        },
        ep_name: Some(ep_info.ep_name.clone()),
        s_crash: Some(ep_info.s_crash.clone()),
        t_crash: None,
        ep_entries: 0,
        p1_insts: 0,
        symex_stats: None,
        p4_insts: 0,
        prescreen: false,
        wall_seconds: 0.0,
    };

    // --- P1: context-aware taint analysis over S. ---
    let shared_ids = input
        .s
        .resolve_names(input.shared.iter().map(String::as_str));
    let taint_config = TaintConfig {
        ep: ep_info.ep,
        shared: shared_ids,
        granularity: config.taint_granularity,
        context: config.taint_context,
    };
    let extraction = match extract_with_limits(input.s, input.poc, &taint_config, config.vm_limits)
    {
        Ok(e) => e,
        Err(TaintError::NoCrash { exit_code }) => {
            report.verdict = Verdict::Failure {
                reason: FailureReason::PocDoesNotCrashS { exit_code },
            };
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
        Err(TaintError::EpNeverEntered) => {
            report.verdict = Verdict::Failure {
                reason: FailureReason::EpNotOnCrashStack,
            };
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
    };
    report.ep_entries = extraction.ep_entries;
    report.p1_insts = extraction.insts;

    // --- Resolve ep in T (clone name). ---
    let Some(ep_t) = input.t.func_by_name(&ep_info.ep_name) else {
        report.verdict = Verdict::Failure {
            reason: FailureReason::EpMissingInT {
                name: ep_info.ep_name.clone(),
            },
        };
        report.wall_seconds = start.elapsed().as_secs_f64();
        return report;
    };

    // --- P0 (opt-in): static pre-screen over T's call graph. ---
    //
    // Runs after `ep` is resolved in `T` (so EpMissingInT keeps priority)
    // and before CFG recovery (so an unstitchable `T` still reports the
    // Idx-15 CfgConstruction failure when the screen stays silent). The
    // screen is conservative: it only speaks when the conclusion holds
    // for *every* execution, so a positive answer makes the symbolic
    // phases unnecessary.
    if config.static_prescreen {
        let recorded: Vec<Vec<u64>> = (0..extraction.primitives.entry_count())
            .filter_map(|k| extraction.primitives.args(k).map(<[u64]>::to_vec))
            .collect();
        if let Some(outcome) = octo_lint::prescreen_ep(input.t, ep_t, &recorded) {
            report.prescreen = true;
            report.verdict = match outcome {
                octo_lint::Prescreen::EpUnreachable => Verdict::NotTriggerable {
                    reason: NotTriggerableReason::EpNotCalled,
                },
                octo_lint::Prescreen::ArgsNeverMatch { .. } => Verdict::NotTriggerable {
                    reason: NotTriggerableReason::UnsatisfiableConstraints,
                },
            };
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
    }

    // --- CFG of T + backward path finding. ---
    let cfg = match build_cfg(input.t, config.cfg_mode) {
        Ok(c) => c,
        Err(e) => {
            // The Idx-15 failure mode: the tool cannot recover T's CFG.
            report.verdict = Verdict::Failure {
                reason: FailureReason::CfgConstruction(e),
            };
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
    };
    let map = DistanceMap::compute(input.t, &cfg, ep_t);

    // --- P2 + P3: directed symbolic execution and combining. ---
    let directed_config = DirectedConfig {
        file_len: config.resolve_file_len(input.poc.len()),
        theta: config.theta,
        max_fallbacks: config.max_fallbacks,
        step_budget: config.symex_step_budget,
        loop_acceleration: config.loop_acceleration,
        ..DirectedConfig::default()
    };
    let engine = DirectedEngine::new(input.t, ep_t, &map, &extraction.primitives, directed_config);
    let (outcome, stats) = engine.run();
    report.symex_stats = Some(stats);

    report.verdict = match outcome {
        DirectedOutcome::EpUnreachable => Verdict::NotTriggerable {
            reason: NotTriggerableReason::EpNotCalled,
        },
        DirectedOutcome::ProgramDead => Verdict::NotTriggerable {
            reason: NotTriggerableReason::ProgramDead,
        },
        DirectedOutcome::Unsat => Verdict::NotTriggerable {
            reason: NotTriggerableReason::UnsatisfiableConstraints,
        },
        DirectedOutcome::LoopBudget => Verdict::Failure {
            reason: FailureReason::LoopBudget,
        },
        DirectedOutcome::Budget => Verdict::Failure {
            reason: FailureReason::Budget,
        },
        DirectedOutcome::PocGenerated {
            poc: poc_prime,
            guiding,
            ..
        } => {
            // --- P4: run T with poc' and check for the propagated crash. ---
            let shared_t = input
                .t
                .resolve_names(input.shared.iter().map(String::as_str));
            let mut vm = Vm::new(input.t, poc_prime.bytes()).with_limits(config.vm_limits);
            let outcome = vm.run();
            report.p4_insts = vm.insts_executed();
            match outcome {
                RunOutcome::Crash(crash) if crash.backtrace.any_in(&shared_t) => {
                    // Type-I iff the *original* poc already satisfies all
                    // constraints T imposes — its guiding input would have
                    // worked unchanged.
                    let kind = if guiding.eval_file(input.poc.bytes()) {
                        TriggerKind::TypeI
                    } else {
                        TriggerKind::TypeII
                    };
                    let crash_class = crash.kind.class();
                    report.t_crash = Some(crash);
                    Verdict::Triggered {
                        kind,
                        poc_prime,
                        crash_class,
                    }
                }
                RunOutcome::Crash(crash) => {
                    // Crash outside ℓ: not the propagated vulnerability.
                    report.t_crash = Some(crash);
                    Verdict::Failure {
                        reason: FailureReason::PocPrimeDidNotCrash { poc_prime },
                    }
                }
                RunOutcome::Exit(_) => Verdict::Failure {
                    reason: FailureReason::PocPrimeDidNotCrash { poc_prime },
                },
            }
        }
    };
    report.wall_seconds = start.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    /// Shared vulnerable function used by both S and T below: crashes when
    /// its byte argument is 0x41.
    const SHARED: &str = r#"
func shared(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn s_program() -> Program {
        let src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        parse_program(&src).unwrap()
    }

    fn verify_pair(t_src: &str, poc: &[u8]) -> VerificationReport {
        let s = s_program();
        let t = parse_program(t_src).unwrap();
        let poc = PocFile::from(poc);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        verify(&input, &PipelineConfig::default())
    }

    #[test]
    fn type_i_when_original_guiding_input_fits() {
        // T is byte-compatible with S (same layout), so poc itself works.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Triggered { kind, .. } => assert_eq!(*kind, TriggerKind::TypeI),
            other => panic!("expected Type-I, got {other:?}"),
        }
        assert_eq!(report.ep_name.as_deref(), Some("shared"));
        assert!(report.verdict.poc_generated());
    }

    #[test]
    fn type_ii_when_t_needs_different_header() {
        // T requires a magic byte the original poc lacks.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    m = getc fd
    ok = eq m, 0x99
    br ok, go, rej
go:
    b = getc fd
    call shared(b)
    halt 0
rej:
    halt 1
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Triggered {
                kind, poc_prime, ..
            } => {
                assert_eq!(*kind, TriggerKind::TypeII);
                assert_eq!(poc_prime.byte(0), 0x99);
                assert_eq!(poc_prime.byte(1), 0x41);
            }
            other => panic!("expected Type-II, got {other:?}"),
        }
    }

    #[test]
    fn type_iii_when_ep_not_called() {
        let t_src = format!(
            r#"
func main() {{
entry:
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::NotTriggerable { reason } => {
                assert_eq!(*reason, NotTriggerableReason::EpNotCalled)
            }
            other => panic!("expected Type-III, got {other:?}"),
        }
        assert!(report.verdict.verified());
        assert!(!report.verdict.poc_generated());
    }

    #[test]
    fn type_iii_when_argument_hardcoded() {
        // T calls shared only with a constant 0x10 — the 0x41 argument
        // recorded in S can never be delivered.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    call shared(0x10)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::NotTriggerable { reason } => {
                assert_eq!(*reason, NotTriggerableReason::UnsatisfiableConstraints)
            }
            other => panic!("expected Type-III/unsat, got {other:?}"),
        }
    }

    #[test]
    fn failure_when_cfg_unrecoverable() {
        // T dispatches through a computed goto with no address-taken
        // candidates (the Idx-15 shape).
        let t_src = format!(
            r#"
func main() {{
entry:
    t = 0xB10C_0000_0000_0002
    ijmp t
unreached:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Failure {
                reason: FailureReason::CfgConstruction(e),
            } => assert_eq!(e.func, "main"),
            other => panic!("expected CFG failure, got {other:?}"),
        }
        assert!(!report.verdict.verified());
    }

    #[test]
    fn failure_when_poc_does_not_crash_s() {
        let t_src = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        let report = verify_pair(&t_src, b"Z");
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::PocDoesNotCrashS { exit_code: 0 }
            }
        ));
    }

    #[test]
    fn failure_when_ep_missing_in_t() {
        let t = parse_program("func main() {\nentry:\n halt 0\n}\n").unwrap();
        let s = s_program();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let report = verify(&input, &PipelineConfig::default());
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::EpMissingInT { .. }
            }
        ));
    }

    fn verify_pair_prescreened(t_src: &str, poc: &[u8]) -> VerificationReport {
        let s = s_program();
        let t = parse_program(t_src).unwrap();
        let poc = PocFile::from(poc);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        verify(&input, &PipelineConfig::default().with_static_prescreen())
    }

    #[test]
    fn prescreen_decides_dead_ep_without_symex() {
        let t_src = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::NotTriggerable {
                reason: NotTriggerableReason::EpNotCalled
            }
        ));
        assert!(report.prescreen, "P0 should have decided this pair");
        assert!(report.symex_stats.is_none(), "no symbolic execution ran");
    }

    #[test]
    fn prescreen_decides_hardcoded_argument_without_symex() {
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n call shared(0x10)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::NotTriggerable {
                reason: NotTriggerableReason::UnsatisfiableConstraints
            }
        ));
        assert!(report.prescreen);
        assert!(report.symex_stats.is_none());
    }

    #[test]
    fn prescreen_stays_silent_on_triggerable_pairs() {
        // The Type-I pair: ep is reachable with a data-dependent argument,
        // so P0 must pass through and the verdict must be unchanged.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::Triggered {
                kind: TriggerKind::TypeI,
                ..
            }
        ));
        assert!(!report.prescreen);
        assert!(report.symex_stats.is_some());
    }

    #[test]
    fn prescreen_preserves_cfg_failure() {
        // The Idx-15 shape: the screen must not mask the CFG failure.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n t = add b, 2\n \
             ijmp t\nunreached:\n call shared(b)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::CfgConstruction(_)
            }
        ));
        assert!(!report.prescreen);
    }

    #[test]
    fn report_collects_phase_statistics() {
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        assert!(report.p1_insts > 0);
        assert!(report.p4_insts > 0);
        assert!(report.symex_stats.is_some());
        assert_eq!(report.ep_entries, 1);
        assert!(report.s_crash.is_some());
        assert!(report.t_crash.is_some());
        assert!(report.poc_prime().is_some());
    }
}
