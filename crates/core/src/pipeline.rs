//! The end-to-end verification pipeline (P1 → P4).
//!
//! The pipeline is split at its natural caching seam: everything that
//! depends only on `(S, poc, ℓ, taint/vm config)` — preprocessing plus
//! the P1 crash-primitive extraction — lives in [`prepare`] and produces
//! a [`PreparedSource`]; everything that also looks at `T` lives in
//! [`verify_prepared`]. [`verify`] composes the two for the one-pair
//! case. Batch runs (see [`crate::batch`]) memoize [`prepare`] in a
//! content-addressed cache, so N targets cloned from one source pay for
//! preprocessing and taint exactly once.

use std::time::Instant;

use octo_cfg::{build_cfg, DistanceMap};
use octo_ir::{FuncId, Program};
use octo_obs::{NullObserver, Span, SpanObserver};
use octo_poc::{CrashPrimitives, PocFile};
use octo_sched::CancelToken;
use octo_symex::{DirectedConfig, DirectedEngine, DirectedOutcome, DirectedStats};
use octo_taint::{extract_with_limits, TaintConfig, TaintError, TaintStats};
use octo_trace::{PostMortem, TraceKind};
use octo_vm::{CrashReport, RunOutcome, Vm};

use crate::config::PipelineConfig;
use crate::preprocess::{identify_ep, PreprocessError};
use crate::verdict::{FailureReason, NotTriggerableReason, TriggerKind, Verdict};

/// One verification job: the paper's initial inputs `S`, `T`, `poc`, `ℓ`.
#[derive(Debug, Clone, Copy)]
pub struct SoftwarePairInput<'a> {
    /// The original vulnerable software.
    pub s: &'a Program,
    /// The propagated software.
    pub t: &'a Program,
    /// The original PoC (crashes `S`).
    pub poc: &'a PocFile,
    /// Names of the shared (cloned) functions, as a vulnerable clone
    /// detector reports them.
    pub shared: &'a [String],
}

/// Everything `verify` learned, verdict plus diagnostics.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The verification verdict (Table II taxonomy).
    pub verdict: Verdict,
    /// `ep`'s name, when preprocessing succeeded.
    pub ep_name: Option<String>,
    /// Crash of `S` under `poc`.
    pub s_crash: Option<CrashReport>,
    /// Crash of `T` under `poc'`, for triggered verdicts.
    pub t_crash: Option<CrashReport>,
    /// How many times `S` entered `ep` (bunch count).
    pub ep_entries: u32,
    /// Instructions executed in P1 (taint run over `S`).
    pub p1_insts: u64,
    /// P1 taint-engine counters (bytes uploaded, tainted-address peak,
    /// records). Present whenever the prefix succeeded, even when the
    /// prepared artifact came from a cache.
    pub taint_stats: Option<TaintStats>,
    /// Dense byte count of each crash-primitive bunch, in `ep`-entry
    /// order (the P3 stitching payload sizes).
    pub bunch_bytes: Vec<u64>,
    /// Directed symbolic execution statistics (P2+P3).
    pub symex_stats: Option<DirectedStats>,
    /// Instructions executed in P4 (concrete run of `T`).
    pub p4_insts: u64,
    /// Whether the verdict was decided by the P0 static pre-screen, i.e.
    /// without running directed symbolic execution over `T`.
    pub prescreen: bool,
    /// Wall-clock seconds of the pipeline prefix as this job paid for it
    /// (preprocessing + P1, or a cache lookup when the artifact was
    /// shared).
    pub prepare_seconds: f64,
    /// Wall-clock seconds of the P4 concrete replay of `T` under `poc'`
    /// (0 when P4 never ran).
    pub p4_seconds: f64,
    /// Total wall-clock seconds for the whole pipeline.
    pub wall_seconds: f64,
    /// Why triggering failed, for verdicts that warrant an explanation
    /// (any not-triggerable verdict, loop budget, or deadline — see
    /// [`Verdict::post_mortem_event`]). Synthesized from the directed
    /// engine's death note and the flight-record tail of this job.
    pub post_mortem: Option<PostMortem>,
    /// How many times the batch runner attempted this job (1 unless a
    /// [`RetryPolicy`] re-ran a transient failure). Single-pair
    /// [`verify`] calls always report 1.
    ///
    /// [`RetryPolicy`]: octo_faults::RetryPolicy
    pub attempts: u32,
}

impl VerificationReport {
    fn failure(reason: FailureReason) -> VerificationReport {
        VerificationReport {
            verdict: Verdict::Failure { reason },
            ep_name: None,
            s_crash: None,
            t_crash: None,
            ep_entries: 0,
            p1_insts: 0,
            taint_stats: None,
            bunch_bytes: Vec::new(),
            symex_stats: None,
            p4_insts: 0,
            prescreen: false,
            prepare_seconds: 0.0,
            p4_seconds: 0.0,
            wall_seconds: 0.0,
            post_mortem: None,
            attempts: 1,
        }
    }

    /// Synthesizes the degraded report for a job whose pipeline panicked.
    ///
    /// The batch runner calls this from inside the worker after catching
    /// the unwind, while the job's trace guard is still installed — so the
    /// post-mortem tail captures the events leading up to the panic.
    pub fn from_panic(panic_msg: String) -> VerificationReport {
        let mut report = VerificationReport::failure(FailureReason::Internal {
            panic_msg: panic_msg.clone(),
        });
        report.post_mortem = Some(PostMortem {
            event: "panic".to_string(),
            ep_entries: 0,
            total_entries: 0,
            constraints: 0,
            last_constraint: None,
            detail: format!("job panicked: {panic_msg}"),
            tail: octo_trace::job_tail(32),
        });
        report
    }

    /// The report for a job the batch (or service) drained before it
    /// could run — or whose in-flight attempt was cut short by a drain.
    /// Carries no post-mortem: a drained job is *incomplete*, not
    /// diagnosable, and service journals deliberately do not persist it
    /// as a terminal verdict (the job is resubmitted on restart).
    pub fn from_cancelled() -> VerificationReport {
        VerificationReport::failure(FailureReason::Cancelled)
    }

    /// The reformed PoC, when one was generated and works.
    pub fn poc_prime(&self) -> Option<&PocFile> {
        match &self.verdict {
            Verdict::Triggered { poc_prime, .. } => Some(poc_prime),
            _ => None,
        }
    }
}

/// The cacheable prefix of the pipeline: everything derived from
/// `(S, poc, ℓ, taint/vm config)` alone — preprocessing (identify `ep` on
/// the crash stack of `S`) plus the P1 crash-primitive extraction.
///
/// A `PreparedSource` is independent of `T`, so one value serves every
/// target cloned from the same source; [`crate::batch::run_batch`] keys
/// it by content hash in an artifact cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedSource {
    /// `ep` in `S`'s function namespace.
    pub ep: FuncId,
    /// `ep`'s name (identical in `T`, since the code was cloned).
    pub ep_name: String,
    /// The crash `poc` causes in `S`.
    pub s_crash: CrashReport,
    /// The crash primitives `q` (one bunch per `ep` entry).
    pub primitives: CrashPrimitives,
    /// How many times `S` entered `ep`.
    pub ep_entries: u32,
    /// Instructions the P1 taint run executed.
    pub p1_insts: u64,
    /// P1 taint-engine counters.
    pub taint: TaintStats,
}

impl PreparedSource {
    /// Approximate in-memory size, for cache byte accounting.
    pub fn approx_bytes(&self) -> u64 {
        let bunch_bytes: usize = (0..self.primitives.entry_count())
            .map(|k| {
                self.primitives
                    .bunch(k)
                    .map(|b| b.dense_bytes().len())
                    .unwrap_or(0)
                    + self.primitives.args(k).map(<[u64]>::len).unwrap_or(0) * 8
            })
            .sum();
        (std::mem::size_of::<PreparedSource>() + self.ep_name.len() + bunch_bytes) as u64
    }
}

/// Why [`prepare`] failed, keeping whatever it had already learned so
/// failure reports stay as informative as the unsplit pipeline's.
#[derive(Debug, Clone)]
pub struct PrepareFailure {
    /// The failure cause (maps 1:1 onto the final verdict).
    pub reason: FailureReason,
    /// `ep`'s name, when preprocessing got that far.
    pub ep_name: Option<String>,
    /// Crash of `S` under `poc`, when preprocessing got that far.
    pub s_crash: Option<CrashReport>,
}

impl PrepareFailure {
    fn new(reason: FailureReason) -> PrepareFailure {
        PrepareFailure {
            reason,
            ep_name: None,
            s_crash: None,
        }
    }

    /// Expands the failure into a full report. The caller stamps
    /// `wall_seconds`.
    pub fn to_report(&self) -> VerificationReport {
        let mut report = VerificationReport::failure(self.reason.clone());
        report.ep_name = self.ep_name.clone();
        report.s_crash = self.s_crash.clone();
        report
    }
}

/// Runs preprocessing and P1 over `S` (the `T`-independent prefix).
///
/// # Errors
/// Fails when `poc` does not crash `S`, or crashes it outside `ℓ` (see
/// [`PrepareFailure`]); both map onto [`Verdict::Failure`] causes.
// The Err carries the diagnostic crash report by value; the failure path
// runs at most once per batch source group (the result is cached), so a
// large cold-path variant beats boxing on every inspection.
#[allow(clippy::result_large_err)]
pub fn prepare(
    s: &Program,
    poc: &PocFile,
    shared: &[String],
    config: &PipelineConfig,
) -> Result<PreparedSource, PrepareFailure> {
    // --- Preprocessing: find ep on the crash stack of S. ---
    let ep_info = match identify_ep(s, poc, shared, config.vm_limits) {
        Ok(info) => info,
        Err(PreprocessError::NoCrash { exit_code }) => {
            return Err(PrepareFailure::new(FailureReason::PocDoesNotCrashS {
                exit_code,
            }))
        }
        Err(PreprocessError::NoSharedFrame | PreprocessError::SharedSetEmpty) => {
            return Err(PrepareFailure::new(FailureReason::EpNotOnCrashStack))
        }
    };

    // --- P1: context-aware taint analysis over S. ---
    let shared_ids = s.resolve_names(shared.iter().map(String::as_str));
    let taint_config = TaintConfig {
        ep: ep_info.ep,
        shared: shared_ids,
        granularity: config.taint_granularity,
        context: config.taint_context,
    };
    let extraction = match extract_with_limits(s, poc, &taint_config, config.vm_limits) {
        Ok(e) => e,
        Err(err) => {
            let reason = match err {
                TaintError::NoCrash { exit_code } => FailureReason::PocDoesNotCrashS { exit_code },
                TaintError::EpNeverEntered => FailureReason::EpNotOnCrashStack,
            };
            return Err(PrepareFailure {
                reason,
                ep_name: Some(ep_info.ep_name),
                s_crash: Some(ep_info.s_crash),
            });
        }
    };
    Ok(PreparedSource {
        ep: ep_info.ep,
        ep_name: ep_info.ep_name,
        s_crash: ep_info.s_crash,
        primitives: extraction.primitives,
        ep_entries: extraction.ep_entries,
        p1_insts: extraction.insts,
        taint: extraction.stats,
    })
}

/// Verifies whether the vulnerability propagated from `S` to `T` can still
/// be triggered (the whole OctoPoCs pipeline).
///
/// Never panics on malformed inputs; every abnormal condition maps to a
/// [`Verdict::Failure`] with a diagnostic [`FailureReason`].
pub fn verify(input: &SoftwarePairInput<'_>, config: &PipelineConfig) -> VerificationReport {
    let start = Instant::now();
    match prepare(input.s, input.poc, input.shared, config) {
        Ok(prep) => {
            let prepare_seconds = start.elapsed().as_secs_f64();
            let mut report = verify_suffix(&prep, input, config, None, &NullObserver, start);
            report.prepare_seconds = prepare_seconds;
            report
        }
        Err(fail) => {
            let mut report = fail.to_report();
            report.wall_seconds = start.elapsed().as_secs_f64();
            report.prepare_seconds = report.wall_seconds;
            report
        }
    }
}

/// Runs the `T`-dependent pipeline suffix (P0 pre-screen, CFG recovery,
/// P2–P4) against an already-prepared source prefix.
///
/// `cancel` is polled cooperatively by the directed engine; when it fires
/// (per-job deadline, batch cancellation) the verdict is
/// [`Verdict::Failure`] with [`FailureReason::Deadline`] instead of the
/// job stalling its batch.
pub fn verify_prepared(
    prep: &PreparedSource,
    input: &SoftwarePairInput<'_>,
    config: &PipelineConfig,
    cancel: Option<&CancelToken>,
) -> VerificationReport {
    verify_prepared_observed(prep, input, config, cancel, &NullObserver)
}

/// [`verify_prepared`] with a [`SpanObserver`] receiving the `"symex"`
/// and `"p4"` phase spans as they finish (the batch runner bridges these
/// into its [`octo_sched::Event`] stream and metrics registry).
pub fn verify_prepared_observed(
    prep: &PreparedSource,
    input: &SoftwarePairInput<'_>,
    config: &PipelineConfig,
    cancel: Option<&CancelToken>,
    obs: &dyn SpanObserver,
) -> VerificationReport {
    verify_suffix(prep, input, config, cancel, obs, Instant::now())
}

/// The suffix with an explicit start instant, so [`verify`] can bill the
/// prefix and suffix to one wall clock.
fn verify_suffix(
    prep: &PreparedSource,
    input: &SoftwarePairInput<'_>,
    config: &PipelineConfig,
    cancel: Option<&CancelToken>,
    obs: &dyn SpanObserver,
    start: Instant,
) -> VerificationReport {
    let mut report = VerificationReport {
        verdict: Verdict::Failure {
            reason: FailureReason::Budget,
        },
        ep_name: Some(prep.ep_name.clone()),
        s_crash: Some(prep.s_crash.clone()),
        t_crash: None,
        ep_entries: prep.ep_entries,
        p1_insts: prep.p1_insts,
        taint_stats: Some(prep.taint),
        bunch_bytes: (0..prep.primitives.entry_count())
            .map(|k| {
                prep.primitives
                    .bunch(k)
                    .map(|b| b.dense_bytes().len() as u64)
                    .unwrap_or(0)
            })
            .collect(),
        symex_stats: None,
        p4_insts: 0,
        prescreen: false,
        prepare_seconds: 0.0,
        p4_seconds: 0.0,
        wall_seconds: 0.0,
        post_mortem: None,
        attempts: 1,
    };
    let extraction = &prep.primitives;

    // --- Resolve ep in T (clone name). ---
    let Some(ep_t) = input.t.func_by_name(&prep.ep_name) else {
        report.verdict = Verdict::Failure {
            reason: FailureReason::EpMissingInT {
                name: prep.ep_name.clone(),
            },
        };
        report.wall_seconds = start.elapsed().as_secs_f64();
        return report;
    };

    // --- P0 (opt-in): static pre-screen over T's call graph. ---
    //
    // Runs after `ep` is resolved in `T` (so EpMissingInT keeps priority)
    // and before CFG recovery (so an unstitchable `T` still reports the
    // Idx-15 CfgConstruction failure when the screen stays silent). The
    // screen is conservative: it only speaks when the conclusion holds
    // for *every* execution, so a positive answer makes the symbolic
    // phases unnecessary.
    if config.static_prescreen {
        let recorded: Vec<Vec<u64>> = (0..extraction.entry_count())
            .filter_map(|k| extraction.args(k).map(<[u64]>::to_vec))
            .collect();
        if let Some(outcome) = octo_lint::prescreen_ep(input.t, ep_t, &recorded) {
            report.prescreen = true;
            report.verdict = match outcome {
                octo_lint::Prescreen::EpUnreachable => Verdict::NotTriggerable {
                    reason: NotTriggerableReason::EpNotCalled,
                },
                octo_lint::Prescreen::ArgsNeverMatch { .. } => Verdict::NotTriggerable {
                    reason: NotTriggerableReason::UnsatisfiableConstraints,
                },
            };
            attach_post_mortem(&mut report, prep);
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
    }

    // --- CFG of T + backward path finding. ---
    let cfg = match build_cfg(input.t, config.cfg_mode) {
        Ok(c) => c,
        Err(e) => {
            // The Idx-15 failure mode: the tool cannot recover T's CFG.
            report.verdict = Verdict::Failure {
                reason: FailureReason::CfgConstruction(e),
            };
            report.wall_seconds = start.elapsed().as_secs_f64();
            return report;
        }
    };
    let map = DistanceMap::compute(input.t, &cfg, ep_t);

    // --- P2 + P3: directed symbolic execution and combining. ---
    let directed_config = DirectedConfig {
        file_len: config.resolve_file_len(input.poc.len()),
        theta: config.theta,
        max_fallbacks: config.max_fallbacks,
        step_budget: config.symex_step_budget,
        loop_acceleration: config.loop_acceleration,
        ..DirectedConfig::default()
    };
    let mut engine = DirectedEngine::new(input.t, ep_t, &map, extraction, directed_config);
    if let Some(token) = cancel {
        engine = engine.with_cancel(token.clone());
    }
    let symex_span = Span::start("symex").with_observer(obs);
    let (outcome, stats) = engine.run();
    symex_span.finish();
    report.symex_stats = Some(stats);

    report.verdict = match outcome {
        DirectedOutcome::EpUnreachable => Verdict::NotTriggerable {
            reason: NotTriggerableReason::EpNotCalled,
        },
        DirectedOutcome::ProgramDead => Verdict::NotTriggerable {
            reason: NotTriggerableReason::ProgramDead,
        },
        DirectedOutcome::Unsat => Verdict::NotTriggerable {
            reason: NotTriggerableReason::UnsatisfiableConstraints,
        },
        DirectedOutcome::LoopBudget => Verdict::Failure {
            reason: FailureReason::LoopBudget,
        },
        DirectedOutcome::Budget => Verdict::Failure {
            reason: FailureReason::Budget,
        },
        // A cancelled run is a deadline failure unless the cancel token
        // was escalated by the watchdog, in which case the job was hung
        // (silent heartbeat) rather than merely slow.
        DirectedOutcome::Cancelled => Verdict::Failure {
            reason: if cancel.is_some_and(CancelToken::was_escalated) {
                FailureReason::Hung
            } else {
                FailureReason::Deadline
            },
        },
        DirectedOutcome::Injected => Verdict::Failure {
            reason: FailureReason::Injected {
                site: "solver-solve",
            },
        },
        // Fault site: a spurious non-crash replay — poc' exists but the
        // concrete run is pretended away (insts 0, no crash).
        DirectedOutcome::PocGenerated { .. }
            if octo_faults::should_inject(octo_faults::FaultSite::P4Replay) =>
        {
            octo_trace::emit(TraceKind::P4Replay {
                insts: 0,
                crashed: false,
            });
            Verdict::Failure {
                reason: FailureReason::Injected { site: "p4-replay" },
            }
        }
        DirectedOutcome::PocGenerated {
            poc: poc_prime,
            guiding,
            ..
        } => {
            // --- P4: run T with poc' and check for the propagated crash. ---
            let shared_t = input
                .t
                .resolve_names(input.shared.iter().map(String::as_str));
            let mut vm = Vm::new(input.t, poc_prime.bytes()).with_limits(config.vm_limits);
            let p4_span = Span::start("p4").with_observer(obs);
            let outcome = vm.run();
            report.p4_seconds = p4_span.finish();
            report.p4_insts = vm.insts_executed();
            octo_trace::emit(TraceKind::P4Replay {
                insts: report.p4_insts,
                crashed: matches!(outcome, RunOutcome::Crash(_)),
            });
            match outcome {
                RunOutcome::Crash(crash) if crash.backtrace.any_in(&shared_t) => {
                    // Type-I iff the *original* poc already satisfies all
                    // constraints T imposes — its guiding input would have
                    // worked unchanged.
                    let kind = if guiding.eval_file(input.poc.bytes()) {
                        TriggerKind::TypeI
                    } else {
                        TriggerKind::TypeII
                    };
                    let crash_class = crash.kind.class();
                    report.t_crash = Some(crash);
                    Verdict::Triggered {
                        kind,
                        poc_prime,
                        crash_class,
                    }
                }
                RunOutcome::Crash(crash) => {
                    // Crash outside ℓ: not the propagated vulnerability.
                    report.t_crash = Some(crash);
                    Verdict::Failure {
                        reason: FailureReason::PocPrimeDidNotCrash { poc_prime },
                    }
                }
                RunOutcome::Exit(_) => Verdict::Failure {
                    reason: FailureReason::PocPrimeDidNotCrash { poc_prime },
                },
            }
        }
    };
    attach_post_mortem(&mut report, prep);
    report.wall_seconds = start.elapsed().as_secs_f64();
    report
}

/// Synthesizes the post-mortem for verdicts that warrant one (see
/// [`Verdict::post_mortem_event`]): the deciding event, the directed
/// engine's death note (where the last state died, on which `ep` entry,
/// under how many constraints), and the flight-record tail of this job.
/// Works without a recorder installed — the tail is simply empty.
fn attach_post_mortem(report: &mut VerificationReport, prep: &PreparedSource) {
    let Some(event) = report.verdict.post_mortem_event() else {
        return;
    };
    let death = report.symex_stats.as_ref().and_then(|s| s.death.as_ref());
    let detail = if report.prescreen {
        "decided statically by the P0 pre-screen; no symbolic execution ran".to_string()
    } else if let Some(note) = death {
        format!(
            "last state died of {} at fallback depth {}",
            note.reason, note.fallback_depth
        )
    } else {
        "the directed engine found no path from T's entry toward ep (empty distance map)"
            .to_string()
    };
    report.post_mortem = Some(PostMortem {
        event: event.to_string(),
        ep_entries: death.map_or(0, |n| n.ep_entries),
        total_entries: prep.ep_entries,
        constraints: death.map_or(0, |n| n.constraints),
        last_constraint: death.and_then(|n| n.last_constraint.clone()),
        detail,
        tail: octo_trace::job_tail(32),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    /// Shared vulnerable function used by both S and T below: crashes when
    /// its byte argument is 0x41.
    const SHARED: &str = r#"
func shared(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn s_program() -> Program {
        let src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        parse_program(&src).unwrap()
    }

    fn verify_pair(t_src: &str, poc: &[u8]) -> VerificationReport {
        let s = s_program();
        let t = parse_program(t_src).unwrap();
        let poc = PocFile::from(poc);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        verify(&input, &PipelineConfig::default())
    }

    #[test]
    fn type_i_when_original_guiding_input_fits() {
        // T is byte-compatible with S (same layout), so poc itself works.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Triggered { kind, .. } => assert_eq!(*kind, TriggerKind::TypeI),
            other => panic!("expected Type-I, got {other:?}"),
        }
        assert_eq!(report.ep_name.as_deref(), Some("shared"));
        assert!(report.verdict.poc_generated());
    }

    #[test]
    fn type_ii_when_t_needs_different_header() {
        // T requires a magic byte the original poc lacks.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    m = getc fd
    ok = eq m, 0x99
    br ok, go, rej
go:
    b = getc fd
    call shared(b)
    halt 0
rej:
    halt 1
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Triggered {
                kind, poc_prime, ..
            } => {
                assert_eq!(*kind, TriggerKind::TypeII);
                assert_eq!(poc_prime.byte(0), 0x99);
                assert_eq!(poc_prime.byte(1), 0x41);
            }
            other => panic!("expected Type-II, got {other:?}"),
        }
    }

    #[test]
    fn type_iii_when_ep_not_called() {
        let t_src = format!(
            r#"
func main() {{
entry:
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::NotTriggerable { reason } => {
                assert_eq!(*reason, NotTriggerableReason::EpNotCalled)
            }
            other => panic!("expected Type-III, got {other:?}"),
        }
        assert!(report.verdict.verified());
        assert!(!report.verdict.poc_generated());
    }

    #[test]
    fn type_iii_when_argument_hardcoded() {
        // T calls shared only with a constant 0x10 — the 0x41 argument
        // recorded in S can never be delivered.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    call shared(0x10)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::NotTriggerable { reason } => {
                assert_eq!(*reason, NotTriggerableReason::UnsatisfiableConstraints)
            }
            other => panic!("expected Type-III/unsat, got {other:?}"),
        }
    }

    #[test]
    fn failure_when_cfg_unrecoverable() {
        // T dispatches through a computed goto with no address-taken
        // candidates (the Idx-15 shape).
        let t_src = format!(
            r#"
func main() {{
entry:
    t = 0xB10C_0000_0000_0002
    ijmp t
unreached:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        match &report.verdict {
            Verdict::Failure {
                reason: FailureReason::CfgConstruction(e),
            } => assert_eq!(e.func, "main"),
            other => panic!("expected CFG failure, got {other:?}"),
        }
        assert!(!report.verdict.verified());
    }

    #[test]
    fn failure_when_poc_does_not_crash_s() {
        let t_src = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        let report = verify_pair(&t_src, b"Z");
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::PocDoesNotCrashS { exit_code: 0 }
            }
        ));
    }

    #[test]
    fn failure_when_ep_missing_in_t() {
        let t = parse_program("func main() {\nentry:\n halt 0\n}\n").unwrap();
        let s = s_program();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let report = verify(&input, &PipelineConfig::default());
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::EpMissingInT { .. }
            }
        ));
    }

    fn verify_pair_prescreened(t_src: &str, poc: &[u8]) -> VerificationReport {
        let s = s_program();
        let t = parse_program(t_src).unwrap();
        let poc = PocFile::from(poc);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        verify(&input, &PipelineConfig::default().with_static_prescreen())
    }

    #[test]
    fn prescreen_decides_dead_ep_without_symex() {
        let t_src = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::NotTriggerable {
                reason: NotTriggerableReason::EpNotCalled
            }
        ));
        assert!(report.prescreen, "P0 should have decided this pair");
        assert!(report.symex_stats.is_none(), "no symbolic execution ran");
    }

    #[test]
    fn prescreen_decides_hardcoded_argument_without_symex() {
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n call shared(0x10)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::NotTriggerable {
                reason: NotTriggerableReason::UnsatisfiableConstraints
            }
        ));
        assert!(report.prescreen);
        assert!(report.symex_stats.is_none());
    }

    #[test]
    fn prescreen_stays_silent_on_triggerable_pairs() {
        // The Type-I pair: ep is reachable with a data-dependent argument,
        // so P0 must pass through and the verdict must be unchanged.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::Triggered {
                kind: TriggerKind::TypeI,
                ..
            }
        ));
        assert!(!report.prescreen);
        assert!(report.symex_stats.is_some());
    }

    #[test]
    fn prescreen_preserves_cfg_failure() {
        // The Idx-15 shape: the screen must not mask the CFG failure.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n t = add b, 2\n \
             ijmp t\nunreached:\n call shared(b)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair_prescreened(&t_src, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::CfgConstruction(_)
            }
        ));
        assert!(!report.prescreen);
    }

    #[test]
    fn every_failure_path_records_wall_time() {
        // Regression: `VerificationReport::failure` used to hardcode
        // `wall_seconds: 0.0` and the early-exit paths kept it.
        let t_safe = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        // Path 1: poc does not crash S.
        let report = verify_pair(&t_safe, b"Z");
        assert!(matches!(report.verdict, Verdict::Failure { .. }));
        assert!(report.wall_seconds > 0.0, "NoCrash path: {report:?}");
        // Path 2: ep missing in T.
        let t = parse_program("func main() {\nentry:\n halt 0\n}\n").unwrap();
        let s = s_program();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let report = verify(&input, &PipelineConfig::default());
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::EpMissingInT { .. }
            }
        ));
        assert!(report.wall_seconds > 0.0, "EpMissingInT path");
        // Path 3: CFG construction failure (Idx-15 shape).
        let t_ijmp = format!(
            "func main() {{\nentry:\n t = 0xB10C_0000_0000_0002\n ijmp t\nunreached:\n \
             fd = open\n b = getc fd\n call shared(b)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair(&t_ijmp, b"A");
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::CfgConstruction(_)
            }
        ));
        assert!(report.wall_seconds > 0.0, "CfgConstruction path");
    }

    #[test]
    fn prepare_then_verify_prepared_matches_verify() {
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let s = s_program();
        let t = parse_program(&t_src).unwrap();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let config = PipelineConfig::default();
        let whole = verify(&input, &config);
        let prep = prepare(&s, &poc, &shared, &config).expect("prefix succeeds");
        assert!(prep.approx_bytes() > 0);
        let split = verify_prepared(&prep, &input, &config, None);
        assert_eq!(whole.verdict.type_label(), split.verdict.type_label());
        assert_eq!(whole.ep_name, split.ep_name);
        assert_eq!(whole.ep_entries, split.ep_entries);
        assert_eq!(whole.p1_insts, split.p1_insts);
        assert_eq!(whole.p4_insts, split.p4_insts);
    }

    #[test]
    fn expired_deadline_yields_deadline_failure() {
        // A Type-I pair with an already-expired per-job deadline: the
        // directed engine must yield instead of running, and the verdict
        // must be the dedicated Deadline failure.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let s = s_program();
        let t = parse_program(&t_src).unwrap();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let config = PipelineConfig::default();
        let prep = prepare(&s, &poc, &shared, &config).expect("prefix succeeds");
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let report = verify_prepared(&prep, &input, &config, Some(&token));
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::Deadline
            }
        ));
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn report_collects_phase_statistics() {
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    b = getc fd
    call shared(b)
    halt 0
}}
{SHARED}
"#
        );
        let report = verify_pair(&t_src, b"A");
        assert!(report.p1_insts > 0);
        assert!(report.p4_insts > 0);
        assert!(report.symex_stats.is_some());
        assert_eq!(report.ep_entries, 1);
        assert!(report.s_crash.is_some());
        assert!(report.t_crash.is_some());
        assert!(report.poc_prime().is_some());
        // Observability fields: the prefix and P4 are billed separately,
        // and the P1 engine counters travel with the report.
        assert!(report.prepare_seconds > 0.0);
        assert!(report.prepare_seconds < report.wall_seconds);
        assert!(report.p4_seconds > 0.0);
        let taint = report.taint_stats.expect("prefix succeeded");
        assert!(taint.bytes_uploaded > 0);
        // One ep entry → one bunch. Its dense payload may be empty (the
        // tainted byte reaches `shared` through an argument register,
        // not memory), which is exactly what the size metric shows.
        assert_eq!(report.bunch_bytes.len(), 1);
    }

    #[test]
    fn post_mortems_attach_to_not_triggerable_and_deadline_verdicts() {
        // Type-III / ep never called: no death note (the engine never
        // found a path), so the entry count at death is 0.
        let t_dead = format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}");
        let report = verify_pair(&t_dead, b"A");
        let pm = report
            .post_mortem
            .as_ref()
            .expect("Type-III gets a post-mortem");
        assert_eq!(pm.event, "ep-unreachable");
        assert_eq!(pm.total_entries, 1);
        assert!(!pm.detail.is_empty());
        assert!(pm.tail.is_empty(), "no recorder installed");

        // Type-III / hardcoded argument: the final solve is unsat, and the
        // death note carries the dying path's constraint summary.
        let t_hard = format!(
            "func main() {{\nentry:\n fd = open\n call shared(0x10)\n halt 0\n}}\n{SHARED}"
        );
        let report = verify_pair(&t_hard, b"A");
        let pm = report
            .post_mortem
            .as_ref()
            .expect("unsat gets a post-mortem");
        assert_eq!(pm.event, "unsat");
        assert!(pm.detail.contains("died of"), "{}", pm.detail);

        // Prescreened verdicts say so in the detail line.
        let report = verify_pair_prescreened(&t_dead, b"A");
        let pm = report
            .post_mortem
            .as_ref()
            .expect("prescreen gets a post-mortem");
        assert_eq!(pm.event, "ep-unreachable");
        assert!(pm.detail.contains("pre-screen"), "{}", pm.detail);

        // Deadline verdicts name the deadline event.
        let t_ok = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let s = s_program();
        let t = parse_program(&t_ok).unwrap();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let config = PipelineConfig::default();
        let prep = prepare(&s, &poc, &shared, &config).expect("prefix succeeds");
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let report = verify_prepared(&prep, &input, &config, Some(&token));
        let pm = report
            .post_mortem
            .as_ref()
            .expect("deadline gets a post-mortem");
        assert_eq!(pm.event, "deadline");

        // Triggered verdicts carry none.
        let report = verify_pair(&t_ok, b"A");
        assert!(report.verdict.poc_generated());
        assert!(report.post_mortem.is_none());
    }

    #[test]
    fn escalated_cancel_maps_to_hung_not_deadline() {
        // A pre-escalated token (what the watchdog produces for a silent
        // job) must yield the dedicated Hung failure, with a post-mortem.
        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let s = s_program();
        let t = parse_program(&t_src).unwrap();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let config = PipelineConfig::default();
        let prep = prepare(&s, &poc, &shared, &config).expect("prefix succeeds");
        let token = CancelToken::new();
        token.escalate();
        let report = verify_prepared(&prep, &input, &config, Some(&token));
        assert!(matches!(
            report.verdict,
            Verdict::Failure {
                reason: FailureReason::Hung
            }
        ));
        let pm = report
            .post_mortem
            .as_ref()
            .expect("hung gets a post-mortem");
        assert_eq!(pm.event, "hung");
    }

    #[test]
    fn injected_solver_fault_degrades_the_verdict() {
        use octo_faults::{FaultPlan, FaultSite, JobFaults};
        use std::sync::Arc;

        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        // Probability 1.0: *every* solve is injected. The quick-feasible
        // pre-checks swallow injections as "not refuted", so the final
        // solve — the one that decides the verdict — is injected too.
        let plan = Arc::new(FaultPlan::new(7).probability(FaultSite::SolverSolve, None, 1.0));
        let ctx = Arc::new(JobFaults::new(&plan, 0));
        let guard = octo_faults::install(&ctx);
        let report = verify_pair(&t_src, b"A");
        drop(guard);
        assert!(
            matches!(
                report.verdict,
                Verdict::Failure {
                    reason: FailureReason::Injected {
                        site: "solver-solve"
                    }
                }
            ),
            "{:?}",
            report.verdict
        );
        let pm = report
            .post_mortem
            .as_ref()
            .expect("injected faults get a post-mortem");
        assert_eq!(pm.event, "fault-injected");
        assert!(ctx.fired() >= 1);

        // Without the plan installed the same pair triggers normally.
        let clean = verify_pair(&t_src, b"A");
        assert!(clean.verdict.poc_generated());
    }

    #[test]
    fn injected_p4_replay_reports_a_spurious_non_crash() {
        use octo_faults::{FaultPlan, FaultSite, JobFaults};
        use std::sync::Arc;

        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let plan = Arc::new(FaultPlan::new(7).nth(FaultSite::P4Replay, None, 1));
        let ctx = Arc::new(JobFaults::new(&plan, 0));
        let guard = octo_faults::install(&ctx);
        let report = verify_pair(&t_src, b"A");
        drop(guard);
        assert!(
            matches!(
                report.verdict,
                Verdict::Failure {
                    reason: FailureReason::Injected { site: "p4-replay" }
                }
            ),
            "{:?}",
            report.verdict
        );
        assert_eq!(report.p4_insts, 0, "the replay was pretended away");
        assert!(report.t_crash.is_none());
        assert_eq!(ctx.fired(), 1);
    }

    #[test]
    fn observer_sees_symex_and_p4_spans() {
        use std::sync::Mutex;

        struct Recorder(Mutex<Vec<(&'static str, f64)>>);
        impl SpanObserver for Recorder {
            fn span_finished(&self, name: &'static str, seconds: f64) {
                self.0.lock().unwrap().push((name, seconds));
            }
        }

        let t_src = format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        );
        let s = s_program();
        let t = parse_program(&t_src).unwrap();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let input = SoftwarePairInput {
            s: &s,
            t: &t,
            poc: &poc,
            shared: &shared,
        };
        let config = PipelineConfig::default();
        let prep = prepare(&s, &poc, &shared, &config).expect("prefix succeeds");
        let obs = Recorder(Mutex::new(Vec::new()));
        let report = verify_prepared_observed(&prep, &input, &config, None, &obs);
        assert!(report.verdict.poc_generated());
        let spans = obs.0.into_inner().unwrap();
        let names: Vec<&str> = spans.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["symex", "p4"], "spans fire in phase order");
        assert!(spans.iter().all(|(_, s)| *s >= 0.0));
        let (_, p4) = spans[1];
        assert!((p4 - report.p4_seconds).abs() < 1e-9);
    }
}
