//! Verification verdicts — the Table II result taxonomy.

use std::fmt;

use octo_cfg::CfgError;
use octo_poc::PocFile;

/// Why a triggered verdict is Type-I or Type-II (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// The guiding input of `poc` and `poc'` coincide: the original PoC
    /// already satisfies every constraint `T` imposes (Idx 1–6).
    TypeI,
    /// The guiding input had to change (e.g. a container-format re-wrap,
    /// Idx 7–9).
    TypeII,
}

impl fmt::Display for TriggerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerKind::TypeI => f.write_str("Type-I"),
            TriggerKind::TypeII => f.write_str("Type-II"),
        }
    }
}

/// Why the vulnerability is verified *not triggerable* (Type-III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotTriggerableReason {
    /// `ep` is never called from the entry of `T` (verdict case ii).
    EpNotCalled,
    /// Directed execution reached a program-dead state: no feasible path
    /// leads into `ℓ` (verdict case iii).
    ProgramDead,
    /// The combined constraints are unsatisfiable — e.g. `T` reuses the
    /// vulnerable function "in an environment in which the tag value used
    /// in causing the vulnerability could not be delivered" (Idx 10–12),
    /// or a patch-added validation conflicts with the crash primitives
    /// (Idx 13–14).
    UnsatisfiableConstraints,
}

impl fmt::Display for NotTriggerableReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotTriggerableReason::EpNotCalled => f.write_str("ep is not called in T"),
            NotTriggerableReason::ProgramDead => f.write_str("program-dead state reached"),
            NotTriggerableReason::UnsatisfiableConstraints => {
                f.write_str("constraints unsatisfiable")
            }
        }
    }
}

/// Why verification failed (neither triggered nor verified-safe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// CFG recovery of `T` failed — the paper's Idx-15 case ("angr did not
    /// correctly create the CFG of pdfinfo").
    CfgConstruction(CfgError),
    /// A loop state exceeded θ on every candidate path (§III-D's declared
    /// failure mode).
    LoopBudget,
    /// A step or solver budget ran out without a verdict.
    Budget,
    /// The per-job deadline fired (or the batch scheduler cancelled the
    /// job) before directed execution reached a verdict.
    Deadline,
    /// The original PoC did not crash `S` — the input pair is invalid.
    PocDoesNotCrashS {
        /// Exit code of the clean run.
        exit_code: u64,
    },
    /// `S` crashed outside `ℓ`: the shared-function set does not cover the
    /// vulnerability.
    EpNotOnCrashStack,
    /// The shared entry point does not exist in `T` under its clone name.
    EpMissingInT {
        /// The missing function name.
        name: String,
    },
    /// `poc'` was generated but did not crash `T` in the shared code — the
    /// reform was wrong (this is how the context-free Table III baseline
    /// fails).
    PocPrimeDidNotCrash {
        /// The generated (non-working) PoC, for diagnosis.
        poc_prime: PocFile,
    },
    /// The job panicked inside the pipeline. The panic was caught by the
    /// scheduler's isolation envelope; the batch kept running and this
    /// verdict records what the payload said.
    Internal {
        /// The panic payload, downcast to a string (or a placeholder).
        panic_msg: String,
    },
    /// The watchdog escalated the job: its heartbeat went silent for the
    /// configured quiet period and the cancel token was fired early,
    /// before the per-job deadline.
    Hung,
    /// A deterministic fault plan (octo-faults) injected a failure at the
    /// named site. Only ever produced under an installed [`FaultPlan`]
    /// (chaos tests, CI `chaos` job) — never in production runs.
    ///
    /// [`FaultPlan`]: octo_faults::FaultPlan
    Injected {
        /// The fault-site label (e.g. `"solver-solve"`, `"p4-replay"`).
        site: &'static str,
    },
    /// The batch (or service) was drained — SIGINT, a `drain` request,
    /// or daemon shutdown — before this job could complete. Unlike
    /// [`FailureReason::Deadline`], this is deliberately **not**
    /// transient: a draining run must not burn its retry budget, and a
    /// service journal treats the job as incomplete (it is resubmitted
    /// on restart rather than recorded as a terminal verdict).
    Cancelled,
}

impl FailureReason {
    /// Stable kebab-case label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            FailureReason::CfgConstruction(_) => "cfg-construction",
            FailureReason::LoopBudget => "loop-budget",
            FailureReason::Budget => "budget",
            FailureReason::Deadline => "deadline",
            FailureReason::PocDoesNotCrashS { .. } => "poc-does-not-crash-s",
            FailureReason::EpNotOnCrashStack => "ep-not-on-crash-stack",
            FailureReason::EpMissingInT { .. } => "ep-missing-in-t",
            FailureReason::PocPrimeDidNotCrash { .. } => "poc-prime-did-not-crash",
            FailureReason::Internal { .. } => "internal",
            FailureReason::Hung => "hung",
            FailureReason::Injected { .. } => "injected",
            FailureReason::Cancelled => "cancelled",
        }
    }

    /// Whether a retry could plausibly produce a different outcome.
    ///
    /// Deadlines, watchdog escalations, panics, and injected faults are
    /// environmental: rerunning the same job may succeed. Everything else
    /// is a deterministic property of the input pair and retrying would
    /// only reproduce it.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FailureReason::Deadline
                | FailureReason::Hung
                | FailureReason::Internal { .. }
                | FailureReason::Injected { .. }
        )
    }
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::CfgConstruction(e) => write!(f, "CFG construction failed: {e}"),
            FailureReason::LoopBudget => f.write_str("loop state exceeded θ"),
            FailureReason::Budget => f.write_str("analysis budget exhausted"),
            FailureReason::Deadline => f.write_str("per-job deadline exceeded (cancelled)"),
            FailureReason::PocDoesNotCrashS { exit_code } => {
                write!(f, "original poc does not crash S (exit {exit_code})")
            }
            FailureReason::EpNotOnCrashStack => {
                f.write_str("S crashed outside the shared code area")
            }
            FailureReason::EpMissingInT { name } => {
                write!(f, "shared entry point `{name}` missing in T")
            }
            FailureReason::PocPrimeDidNotCrash { .. } => {
                f.write_str("generated poc' did not crash T")
            }
            FailureReason::Internal { panic_msg } => {
                write!(f, "internal error (job panicked: {panic_msg})")
            }
            FailureReason::Hung => f.write_str("job hung (watchdog escalated the cancel token)"),
            FailureReason::Injected { site } => write!(f, "fault injected at site `{site}`"),
            FailureReason::Cancelled => f.write_str("run drained before the job completed"),
        }
    }
}

/// The verification result for one `(S, T, poc, ℓ)` input.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The propagated vulnerability is still triggerable; `poc'` is the
    /// working reformed PoC. Requires immediate patching.
    Triggered {
        /// Type-I or Type-II.
        kind: TriggerKind,
        /// The reformed PoC that crashes `T`.
        poc_prime: PocFile,
        /// Crash class observed in `T` (CWE-style label).
        crash_class: &'static str,
    },
    /// Verified: the propagated vulnerable code cannot be triggered in `T`
    /// (Type-III).
    NotTriggerable {
        /// Which of the paper's conditions established it.
        reason: NotTriggerableReason,
    },
    /// Verification failed.
    Failure {
        /// The failure cause.
        reason: FailureReason,
    },
}

impl Verdict {
    /// Whether a working `poc'` was produced (the Table II `poc'` column).
    pub fn poc_generated(&self) -> bool {
        matches!(self, Verdict::Triggered { .. })
    }

    /// Whether verification succeeded (triggered *or* verified-safe — the
    /// Table II "Verification" column).
    pub fn verified(&self) -> bool {
        !matches!(self, Verdict::Failure { .. })
    }

    /// The post-mortem event label for verdicts that warrant one, `None`
    /// otherwise.
    ///
    /// A post-mortem explains *why triggering failed*: every
    /// not-triggerable verdict qualifies (`"ep-unreachable"`,
    /// `"program-dead"`, `"unsat"`), as do the engine give-ups
    /// (`"loop-dead"`, `"deadline"`) and the fault-tolerance verdicts
    /// (`"panic"`, `"hung"`, `"fault-injected"`). Triggered verdicts and
    /// input-side failures (bad PoC, missing `ep`, CFG trouble) do not.
    pub fn post_mortem_event(&self) -> Option<&'static str> {
        match self {
            Verdict::NotTriggerable { reason } => Some(match reason {
                NotTriggerableReason::EpNotCalled => "ep-unreachable",
                NotTriggerableReason::ProgramDead => "program-dead",
                NotTriggerableReason::UnsatisfiableConstraints => "unsat",
            }),
            Verdict::Failure {
                reason: FailureReason::LoopBudget,
            } => Some("loop-dead"),
            Verdict::Failure {
                reason: FailureReason::Deadline,
            } => Some("deadline"),
            Verdict::Failure {
                reason: FailureReason::Internal { .. },
            } => Some("panic"),
            Verdict::Failure {
                reason: FailureReason::Hung,
            } => Some("hung"),
            Verdict::Failure {
                reason: FailureReason::Injected { .. },
            } => Some("fault-injected"),
            _ => None,
        }
    }

    /// Short label for table rendering (`Type-I`, `Type-II`, `Type-III`,
    /// `Failure`).
    pub fn type_label(&self) -> &'static str {
        match self {
            Verdict::Triggered {
                kind: TriggerKind::TypeI,
                ..
            } => "Type-I",
            Verdict::Triggered {
                kind: TriggerKind::TypeII,
                ..
            } => "Type-II",
            Verdict::NotTriggerable { .. } => "Type-III",
            Verdict::Failure { .. } => "Failure",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Triggered {
                kind, crash_class, ..
            } => write!(f, "triggered ({kind}, crash {crash_class})"),
            Verdict::NotTriggerable { reason } => write!(f, "not triggerable ({reason})"),
            Verdict::Failure { reason } => write!(f, "verification failure ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_predicates() {
        let t = Verdict::Triggered {
            kind: TriggerKind::TypeI,
            poc_prime: PocFile::default(),
            crash_class: "CWE-119",
        };
        assert_eq!(t.type_label(), "Type-I");
        assert!(t.poc_generated());
        assert!(t.verified());

        let n = Verdict::NotTriggerable {
            reason: NotTriggerableReason::EpNotCalled,
        };
        assert_eq!(n.type_label(), "Type-III");
        assert!(!n.poc_generated());
        assert!(n.verified());

        let x = Verdict::Failure {
            reason: FailureReason::Budget,
        };
        assert_eq!(x.type_label(), "Failure");
        assert!(!x.verified());
    }

    #[test]
    fn post_mortem_events_cover_exactly_the_not_triggered_verdicts() {
        let ev = |v: &Verdict| v.post_mortem_event();
        let nt = |reason| Verdict::NotTriggerable { reason };
        assert_eq!(
            ev(&nt(NotTriggerableReason::EpNotCalled)),
            Some("ep-unreachable")
        );
        assert_eq!(
            ev(&nt(NotTriggerableReason::ProgramDead)),
            Some("program-dead")
        );
        assert_eq!(
            ev(&nt(NotTriggerableReason::UnsatisfiableConstraints)),
            Some("unsat")
        );
        let fail = |reason| Verdict::Failure { reason };
        assert_eq!(ev(&fail(FailureReason::LoopBudget)), Some("loop-dead"));
        assert_eq!(ev(&fail(FailureReason::Deadline)), Some("deadline"));
        assert_eq!(
            ev(&fail(FailureReason::Internal {
                panic_msg: "boom".into()
            })),
            Some("panic")
        );
        assert_eq!(ev(&fail(FailureReason::Hung)), Some("hung"));
        assert_eq!(
            ev(&fail(FailureReason::Injected { site: "p4-replay" })),
            Some("fault-injected")
        );
        assert_eq!(ev(&fail(FailureReason::Budget)), None);
        assert_eq!(ev(&fail(FailureReason::EpNotOnCrashStack)), None);
        assert_eq!(
            ev(&fail(FailureReason::Cancelled)),
            None,
            "a drained job is incomplete, not diagnosable"
        );
        let t = Verdict::Triggered {
            kind: TriggerKind::TypeI,
            poc_prime: PocFile::default(),
            crash_class: "CWE-119",
        };
        assert_eq!(ev(&t), None);
    }

    #[test]
    fn transience_tracks_the_environmental_failures_only() {
        assert!(FailureReason::Deadline.is_transient());
        assert!(FailureReason::Hung.is_transient());
        assert!(FailureReason::Internal {
            panic_msg: "boom".into()
        }
        .is_transient());
        assert!(FailureReason::Injected {
            site: "solver-solve"
        }
        .is_transient());
        assert!(!FailureReason::Budget.is_transient());
        assert!(!FailureReason::LoopBudget.is_transient());
        assert!(!FailureReason::EpNotOnCrashStack.is_transient());
        assert!(
            !FailureReason::Cancelled.is_transient(),
            "a drain must not trigger the retry loop"
        );
        assert_eq!(FailureReason::Cancelled.label(), "cancelled");
        assert_eq!(FailureReason::Hung.label(), "hung");
        assert_eq!(
            FailureReason::Injected {
                site: "solver-solve"
            }
            .label(),
            "injected"
        );
    }

    #[test]
    fn displays_are_informative() {
        let v = Verdict::NotTriggerable {
            reason: NotTriggerableReason::UnsatisfiableConstraints,
        };
        assert!(v.to_string().contains("unsatisfiable"));
        let v = Verdict::Failure {
            reason: FailureReason::EpMissingInT {
                name: "decode".into(),
            },
        };
        assert!(v.to_string().contains("decode"));
    }
}
