//! # octopocs — verification of propagated vulnerable code with reformed PoCs.
//!
//! This crate is the paper's primary contribution: given the original
//! vulnerable software `S`, the propagated software `T`, the original
//! malformed-file PoC, and the shared function set `ℓ` (as a vulnerable
//! clone detector such as VUDDY would report it), [`verify`] decides
//! whether the propagated vulnerability can still be *triggered* in `T`.
//!
//! The pipeline follows §III of the paper exactly:
//!
//! | phase | function | this implementation |
//! |---|---|---|
//! | Preprocessing | find `ep` from the crash backtrace of `S` | [`preprocess`] |
//! | P1 | extract crash primitives `q` via context-aware taint analysis | [`octo_taint`] |
//! | P2 | generate guiding inputs via directed symbolic execution | [`octo_symex::DirectedEngine`] |
//! | P3 | combine `q` and the guiding constraints into `poc'` | [`octo_symex::DirectedEngine`] |
//! | P4 | run `T` on `poc'` and check for the propagated crash | [`pipeline`] |
//!
//! The outcome is a [`Verdict`] in the paper's Table II taxonomy:
//! *Type-I* (the original guiding input already fits `T`), *Type-II* (the
//! guiding input had to change), *Type-III* (verified **not** triggerable:
//! `ep` never called, program-dead, or unsatisfiable constraints), or
//! *Failure*.
//!
//! ```
//! use octo_ir::parse::parse_program;
//! use octo_poc::PocFile;
//! use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};
//!
//! // S reads a byte and passes it to the shared (cloned) function, which
//! // crashes on 0x41. T wraps the same shared function behind a magic
//! // byte check.
//! let s = parse_program(r#"
//! func main() {
//! entry:
//!     fd = open
//!     b = getc fd
//!     call shared(b)
//!     halt 0
//! }
//! func shared(v) {
//! entry:
//!     c = eq v, 0x41
//!     br c, boom, fine
//! boom:
//!     trap 1
//! fine:
//!     ret
//! }
//! "#).expect("valid S");
//! let t = parse_program(r#"
//! func main() {
//! entry:
//!     fd = open
//!     magic = getc fd
//!     ok = eq magic, 0x54
//!     br ok, go, rej
//! go:
//!     b = getc fd
//!     call shared(b)
//!     halt 0
//! rej:
//!     halt 1
//! }
//! func shared(v) {
//! entry:
//!     c = eq v, 0x41
//!     br c, boom, fine
//! boom:
//!     trap 1
//! fine:
//!     ret
//! }
//! "#).expect("valid T");
//! let poc = PocFile::from(&b"A"[..]);
//! let input = SoftwarePairInput {
//!     s: &s,
//!     t: &t,
//!     poc: &poc,
//!     shared: &["shared".to_string()],
//! };
//! let report = verify(&input, &PipelineConfig::default());
//! match report.verdict {
//!     Verdict::Triggered { poc_prime, .. } => {
//!         // T needs the 0x54 magic first, then the crash byte.
//!         assert_eq!(poc_prime.byte(0), 0x54);
//!         assert_eq!(poc_prime.byte(1), 0x41);
//!     }
//!     other => panic!("expected triggered, got {other:?}"),
//! }
//! ```
#![warn(missing_docs)]

pub mod batch;
pub mod blob;
pub mod config;
pub mod minimize;
pub mod pipeline;
pub mod portfolio;
pub mod preprocess;
pub mod scan;
pub mod service;
pub mod verdict;

pub use batch::{
    prefix_cache_key, run_batch, BatchEntry, BatchJob, BatchOptions, BatchReport, BatchRuntime,
};
pub use config::PipelineConfig;
pub use minimize::{minimize_poc, MinimizeStats};
pub use octo_faults::{FaultPlan, FaultRule, FaultSite, RetryPolicy, Trigger};
pub use octo_sched::WatchdogConfig;
pub use octo_store::{BlobStore, GcReport, StoreStats, VerifyReport};
pub use octo_trace::{FlightRecorder, PostMortem};
pub use pipeline::{
    prepare, verify, verify_prepared, verify_prepared_observed, PrepareFailure, PreparedSource,
    SoftwarePairInput, VerificationReport,
};
pub use portfolio::{
    render_portfolio, verify_portfolio, verify_portfolio_with_faults, Job, PortfolioEntry, Urgency,
};
pub use preprocess::{identify_ep, PreprocessError};
pub use scan::{
    corpus_scan_inputs, expand_scan, run_scan, PairCandidates, ScanExpansion, ScanReport,
    ScanSource, ScanTarget,
};
pub use service::{batch_job_to_spec, spec_to_batch_job, ServeExecutor};
pub use verdict::{FailureReason, NotTriggerableReason, TriggerKind, Verdict};
