//! The bridge between the engine and the `octo-serve` daemon layer:
//! [`ServeExecutor`] plugs the batch runtime into
//! [`octo_serve::JobExecutor`], and the spec converters let the client
//! subcommands ship [`BatchJob`]s over the wire.
//!
//! One executor backs one daemon process. It owns a [`BatchRuntime`]
//! (artifact cache, metrics registry, watchdog, retry policy, fault
//! plan) shared across every job the daemon ever runs — so a re-scan of
//! an already-prepared source hits the cache exactly as it would inside
//! one `octopocs batch` invocation — plus the run-level cancel token
//! that `shutdown` (or SIGINT/SIGTERM) fires to wind in-flight jobs
//! down as [`FailureReason::Cancelled`].

use std::sync::Mutex;
use std::time::Instant;

use octo_ir::parse::parse_program;
use octo_ir::printer::print_program;
use octo_obs::MetricsRegistry;
use octo_poc::PocFile;
use octo_sched::{CancelToken, EventSink};
use octo_serve::proto::{from_hex, to_hex};
use octo_serve::{ExecJob, ExecOutcome, JobExecutor, JobSpec, Priority, VerdictSummary};

use crate::batch::{BatchJob, BatchOptions, BatchRuntime};
use crate::config::PipelineConfig;
use crate::verdict::{FailureReason, Verdict};

/// Converts a wire spec into an owned batch job. Fails on unparsable
/// programs or hex (the daemon validates at admission, so reaching this
/// error from a worker indicates a journal edited by hand).
pub fn spec_to_batch_job(spec: &JobSpec) -> Result<BatchJob, String> {
    let s = parse_program(&spec.s_text).map_err(|e| format!("program `s`: {e}"))?;
    let t = parse_program(&spec.t_text).map_err(|e| format!("program `t`: {e}"))?;
    let poc = PocFile::from(from_hex(&spec.poc_hex)?);
    Ok(BatchJob {
        name: spec.name.clone(),
        s,
        t,
        poc,
        shared: spec.shared.clone(),
    })
}

/// Converts an owned batch job into its wire spec.
pub fn batch_job_to_spec(job: &BatchJob, priority: Priority) -> JobSpec {
    JobSpec {
        name: job.name.clone(),
        priority,
        s_text: print_program(&job.s),
        t_text: print_program(&job.t),
        poc_hex: to_hex(job.poc.bytes()),
        shared: job.shared.clone(),
    }
}

/// The daemon's verification engine: the full OctoPoCs pipeline behind
/// one long-lived [`BatchRuntime`].
pub struct ServeExecutor {
    runtime: BatchRuntime,
    cancel: CancelToken,
    /// Post-mortems are engine-side state; keep the last failure per
    /// run_job call observable through [`ExecOutcome`] only.
    errors: Mutex<Vec<String>>,
}

impl ServeExecutor {
    /// An executor running `config` under `options`. The options'
    /// run-level cancel token is created if absent so
    /// [`JobExecutor::cancel_all`] always has something to fire.
    pub fn new(config: &PipelineConfig, options: &BatchOptions) -> ServeExecutor {
        let mut options = options.clone();
        let cancel = options.cancel.clone().unwrap_or_default();
        options.cancel = Some(cancel.clone());
        ServeExecutor {
            runtime: BatchRuntime::new(config, &options),
            cancel,
            errors: Mutex::new(Vec::new()),
        }
    }

    /// The run-level cancel token (wire this to the drain signals).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Refreshes the derived gauges (cache, uptime, watchdog) and
    /// snapshots the registry into `recorder` — the octo-scope rate
    /// sampler calls this on its interval so `/metrics/rates` windows
    /// reflect live figures.
    pub fn sample_rates(&self, recorder: &octo_obs::RateRecorder, elapsed_micros: u64) {
        self.runtime.refresh_metrics();
        recorder.record(self.runtime.metrics(), elapsed_micros);
    }

    /// Conversion errors encountered by workers (empty in healthy
    /// operation; populated only from hand-corrupted journals).
    pub fn conversion_errors(&self) -> Vec<String> {
        self.errors.lock().expect("errors poisoned").clone()
    }
}

impl JobExecutor for ServeExecutor {
    fn run(&self, job: &ExecJob, worker: usize, sink: &dyn EventSink) -> ExecOutcome {
        let batch_job = match spec_to_batch_job(&job.spec) {
            Ok(batch_job) => batch_job,
            Err(e) => {
                self.errors
                    .lock()
                    .expect("errors poisoned")
                    .push(format!("job {}: {e}", job.id));
                return ExecOutcome {
                    verdict: VerdictSummary {
                        verdict: "Failure".to_string(),
                        poc_generated: false,
                        verified: false,
                        attempts: 1,
                        quarantined: false,
                    },
                    post_mortem: Some(format!("unrunnable job: {e}")),
                    cancelled: false,
                };
            }
        };
        // The daemon already measured queue wait; from the runtime's
        // point of view the job starts now.
        let entry = self
            .runtime
            .run_job(job.id as usize, worker, &batch_job, Instant::now(), sink);
        let cancelled = matches!(
            &entry.report.verdict,
            Verdict::Failure {
                reason: FailureReason::Cancelled
            }
        );
        ExecOutcome {
            verdict: VerdictSummary {
                verdict: entry.report.verdict.type_label().to_string(),
                poc_generated: entry.report.verdict.poc_generated(),
                verified: entry.report.verdict.verified(),
                attempts: entry.report.attempts,
                quarantined: entry.quarantined,
            },
            post_mortem: entry
                .report
                .post_mortem
                .as_ref()
                .map(|pm| pm.render_human()),
            cancelled,
        }
    }

    fn registry(&self) -> &MetricsRegistry {
        self.runtime.metrics()
    }

    fn metrics_json(&self) -> String {
        self.runtime.refresh_metrics();
        self.runtime.metrics().render_json()
    }

    fn metrics_prometheus(&self) -> String {
        self.runtime.refresh_metrics();
        self.runtime.metrics().render_prometheus()
    }

    fn cancel_all(&self) {
        self.cancel.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_serve::daemon::Daemon;
    use octo_serve::SubmitError;
    use std::sync::Arc;

    const S: &str = "func main() {\nentry:\n  fd = open\n  b = getc fd\n  call shared(b)\n  \
                     halt 0\n}\nfunc shared(v) {\nentry:\n  c = eq v, 0x41\n  br c, boom, fine\n\
                     boom:\n  trap 1\nfine:\n  ret\n}\n";

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            priority: Priority::Bulk,
            s_text: S.to_string(),
            t_text: S.to_string(),
            poc_hex: "41".to_string(),
            shared: vec!["shared".to_string()],
        }
    }

    #[test]
    fn specs_round_trip_through_batch_jobs() {
        let job = spec_to_batch_job(&spec("rt")).unwrap();
        let back = batch_job_to_spec(&job, Priority::Bulk);
        assert_eq!(back.name, "rt");
        assert_eq!(back.poc_hex, "41");
        assert_eq!(back.shared, vec!["shared".to_string()]);
        // Printed programs re-parse to the same batch job.
        let again = spec_to_batch_job(&back).unwrap();
        assert_eq!(print_program(&again.s), print_program(&job.s));
    }

    #[test]
    fn executor_runs_a_real_job_through_the_daemon() {
        let executor = Arc::new(ServeExecutor::new(
            &PipelineConfig::default(),
            &BatchOptions {
                workers: 1,
                ..BatchOptions::default()
            },
        ));
        let daemon = Daemon::new(executor.clone(), None, 8);
        daemon.submit(spec("pair")).unwrap();
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        let rows = daemon.results();
        assert_eq!(rows.len(), 1);
        // Identical S and T: the original PoC triggers directly.
        assert_eq!(rows[0].verdict.verdict, "Type-I");
        assert!(rows[0].verdict.poc_generated);
        assert!(executor.conversion_errors().is_empty());
        // The serve_* metrics live in the same registry as the batch
        // metrics, so one scrape carries both.
        let names = executor.registry().names();
        assert!(names.iter().any(|n| n == "serve_admissions_total"));
        assert!(names.iter().any(|n| n == "batch_jobs_total"));
    }

    #[test]
    fn cancel_all_drains_queued_jobs_as_interrupted() {
        let executor = Arc::new(ServeExecutor::new(
            &PipelineConfig::default(),
            &BatchOptions {
                workers: 1,
                ..BatchOptions::default()
            },
        ));
        let daemon = Daemon::new(executor.clone(), None, 8);
        daemon.submit(spec("doomed")).unwrap();
        daemon.shutdown();
        let workers = daemon.start_workers(1);
        for w in workers {
            w.join().unwrap();
        }
        // Shutdown before any worker started: the job is never run and
        // never journaled as done.
        assert!(daemon.results().is_empty());
        assert!(executor.cancel_token().is_cancelled());
        // A fresh submit is refused while draining.
        assert!(matches!(
            daemon.submit(spec("late")),
            Err(SubmitError::Rejected(_))
        ));
    }
}
