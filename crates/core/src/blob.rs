//! Versioned binary serialization for [`PreparedSource`] — the payload
//! the disk blob store (`octo-store`) persists.
//!
//! The format is hand-rolled little-endian with length-prefixed
//! collections, mirroring the workspace's no-external-deps rule for
//! JSON. Two properties matter more than compactness:
//!
//! * **Exact round-trip** — `from_blob(to_blob(p)) == p` for every
//!   `PreparedSource` the pipeline can produce, so a disk cache hit is
//!   indistinguishable from recomputation and can never perturb a
//!   verdict.
//! * **Total decoding** — `from_blob` returns `Err` on truncated,
//!   bit-flipped, version-skewed, or trailing-garbage input. It never
//!   panics and never over-allocates on a hostile length prefix, because
//!   corrupted blobs are an *expected* input (the store quarantines on
//!   `Err` and recomputes).
//!
//! The leading [`BLOB_VERSION`] is the schema of *this payload*; the
//! store's outer frame (magic, checksum) has its own version and guards
//! against torn writes before this decoder ever runs.

use octo_ir::{FuncId, RegionKind, Width};
use octo_poc::{Bunch, CrashPrimitives};
use octo_taint::TaintStats;
use octo_vm::{Backtrace, CrashKind, CrashReport};

use crate::pipeline::PreparedSource;

/// Payload schema version. Bump on any layout change; decoders reject
/// other versions (the store treats that as a clean miss, not an error).
pub const BLOB_VERSION: u16 = 1;

/// Serializes a [`PreparedSource`] to its versioned binary form.
pub fn to_blob(prep: &PreparedSource) -> Vec<u8> {
    let mut out = Vec::with_capacity(prep.approx_bytes() as usize + 64);
    put_u16(&mut out, BLOB_VERSION);
    put_u32(&mut out, prep.ep.0);
    put_str(&mut out, &prep.ep_name);
    put_crash(&mut out, &prep.s_crash);
    put_primitives(&mut out, &prep.primitives);
    put_u32(&mut out, prep.ep_entries);
    put_u64(&mut out, prep.p1_insts);
    put_u64(&mut out, prep.taint.bytes_uploaded);
    put_u64(&mut out, prep.taint.peak_tainted_addrs);
    put_u64(&mut out, prep.taint.taint_records);
    out
}

/// Deserializes a blob produced by [`to_blob`].
///
/// Any defect — truncation, version skew, an invalid tag, a length
/// prefix that overruns the buffer, trailing bytes — yields `Err` with a
/// diagnostic; the function never panics.
pub fn from_blob(bytes: &[u8]) -> Result<PreparedSource, String> {
    let mut r = Reader::new(bytes);
    let version = r.u16()?;
    if version != BLOB_VERSION {
        return Err(format!(
            "blob version {version} (decoder speaks {BLOB_VERSION})"
        ));
    }
    let ep = FuncId(r.u32()?);
    let ep_name = r.str()?;
    let s_crash = read_crash(&mut r)?;
    let primitives = read_primitives(&mut r)?;
    let ep_entries = r.u32()?;
    let p1_insts = r.u64()?;
    let taint = TaintStats {
        bytes_uploaded: r.u64()?,
        peak_tainted_addrs: r.u64()?,
        taint_records: r.u64()?,
    };
    r.finish()?;
    Ok(PreparedSource {
        ep,
        ep_name,
        s_crash,
        primitives,
        ep_entries,
        p1_insts,
        taint,
    })
}

// ---------------------------------------------------------------- encode

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_crash(out: &mut Vec<u8>, crash: &CrashReport) {
    match crash.kind {
        CrashKind::OutOfBounds { addr, region } => {
            put_u8(out, 0);
            put_u64(out, addr);
            put_u8(
                out,
                match region {
                    None => 0,
                    Some(RegionKind::Heap) => 1,
                    Some(RegionKind::Stack) => 2,
                },
            );
        }
        CrashKind::NullDeref { addr } => {
            put_u8(out, 1);
            put_u64(out, addr);
        }
        CrashKind::DivByZero => put_u8(out, 2),
        CrashKind::IntegerOverflow { width } => {
            put_u8(out, 3);
            put_u8(
                out,
                match width {
                    Width::W1 => 1,
                    Width::W2 => 2,
                    Width::W4 => 4,
                    Width::W8 => 8,
                },
            );
        }
        CrashKind::Trap { code } => {
            put_u8(out, 4);
            put_u64(out, code);
        }
        CrashKind::InfiniteLoop => put_u8(out, 5),
        CrashKind::StackOverflow => put_u8(out, 6),
        CrashKind::BadIndirect { value } => {
            put_u8(out, 7);
            put_u64(out, value);
        }
        CrashKind::BadFileDescriptor { fd } => {
            put_u8(out, 8);
            put_u64(out, fd);
        }
    }
    put_u32(out, crash.func.0);
    put_u32(out, crash.block.0);
    put_u64(out, crash.inst_idx as u64);
    put_u32(out, crash.backtrace.frames().len() as u32);
    for (id, name) in crash.backtrace.frames() {
        put_u32(out, id.0);
        put_str(out, name);
    }
    put_u64(out, crash.insts_executed);
}

fn put_primitives(out: &mut Vec<u8>, prims: &CrashPrimitives) {
    put_u32(out, prims.entry_count() as u32);
    for k in 0..prims.entry_count() {
        let bunch = prims.bunch(k).expect("entry index in range");
        let args = prims.args(k).expect("entry index in range");
        put_u32(out, bunch.seq);
        put_u32(out, bunch.len() as u32);
        for (offset, value) in bunch.iter() {
            put_u32(out, offset);
            put_u8(out, value);
        }
        put_u32(out, args.len() as u32);
        for arg in args {
            put_u64(out, *arg);
        }
    }
}

// ---------------------------------------------------------------- decode

/// Bounds-checked little-endian cursor. Every accessor returns `Err`
/// instead of reading past the end.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len() - self.pos
                )
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length prefix for `count` elements of at least `elem_bytes`
    /// each. Rejecting prefixes the remaining buffer cannot possibly
    /// satisfy keeps a bit-flipped length from forcing a huge allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let count = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if count.saturating_mul(elem_bytes) > remaining {
            return Err(format!(
                "length prefix {count} x {elem_bytes}B exceeds remaining {remaining}B"
            ));
        }
        Ok(count)
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string not UTF-8".to_string())
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            ))
        }
    }
}

fn read_crash(r: &mut Reader<'_>) -> Result<CrashReport, String> {
    let kind = match r.u8()? {
        0 => {
            let addr = r.u64()?;
            let region = match r.u8()? {
                0 => None,
                1 => Some(RegionKind::Heap),
                2 => Some(RegionKind::Stack),
                tag => return Err(format!("bad region tag {tag}")),
            };
            CrashKind::OutOfBounds { addr, region }
        }
        1 => CrashKind::NullDeref { addr: r.u64()? },
        2 => CrashKind::DivByZero,
        3 => CrashKind::IntegerOverflow {
            width: match r.u8()? {
                1 => Width::W1,
                2 => Width::W2,
                4 => Width::W4,
                8 => Width::W8,
                tag => return Err(format!("bad width tag {tag}")),
            },
        },
        4 => CrashKind::Trap { code: r.u64()? },
        5 => CrashKind::InfiniteLoop,
        6 => CrashKind::StackOverflow,
        7 => CrashKind::BadIndirect { value: r.u64()? },
        8 => CrashKind::BadFileDescriptor { fd: r.u64()? },
        tag => return Err(format!("bad crash-kind tag {tag}")),
    };
    let func = FuncId(r.u32()?);
    let block = octo_ir::BlockId(r.u32()?);
    let inst_idx = usize::try_from(r.u64()?).map_err(|_| "inst_idx exceeds usize".to_string())?;
    let frame_count = r.count(8)?;
    let mut frames = Vec::with_capacity(frame_count);
    for _ in 0..frame_count {
        let id = FuncId(r.u32()?);
        let name = r.str()?;
        frames.push((id, name));
    }
    Ok(CrashReport {
        kind,
        func,
        block,
        inst_idx,
        backtrace: Backtrace::new(frames),
        insts_executed: r.u64()?,
    })
}

fn read_primitives(r: &mut Reader<'_>) -> Result<CrashPrimitives, String> {
    let entries = r.count(12)?;
    let mut prims = CrashPrimitives::new();
    for _ in 0..entries {
        let seq = r.u32()?;
        let mut bunch = Bunch::new(seq);
        let pairs = r.count(5)?;
        for _ in 0..pairs {
            let offset = r.u32()?;
            let value = r.u8()?;
            bunch.add(offset, value);
        }
        let arg_count = r.count(8)?;
        let mut args = Vec::with_capacity(arg_count);
        for _ in 0..arg_count {
            args.push(r.u64()?);
        }
        prims.push(bunch, args);
    }
    Ok(prims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::BlockId;

    fn sample() -> PreparedSource {
        let mut prims = CrashPrimitives::new();
        let mut b1 = Bunch::new(1);
        b1.add(0, 0x41);
        b1.add(3, 0xff);
        let mut b2 = Bunch::new(2);
        b2.add(7, 0x00);
        prims.push(b1, vec![0, u64::MAX]);
        prims.push(b2, vec![]);
        PreparedSource {
            ep: FuncId(3),
            ep_name: "vuln_parse".to_string(),
            s_crash: CrashReport {
                kind: CrashKind::OutOfBounds {
                    addr: 0xdead_beef,
                    region: Some(RegionKind::Heap),
                },
                func: FuncId(5),
                block: BlockId(2),
                inst_idx: usize::MAX,
                backtrace: Backtrace::new(vec![
                    (FuncId(0), "main".to_string()),
                    (FuncId(5), "memcpy_ish".to_string()),
                ]),
                insts_executed: 1_234_567,
            },
            ep_entries: 2,
            p1_insts: 42,
            primitives: prims,
            taint: TaintStats {
                bytes_uploaded: 9,
                peak_tainted_addrs: 4,
                taint_records: 3,
            },
        }
    }

    #[test]
    fn round_trips_exactly() {
        let prep = sample();
        let blob = to_blob(&prep);
        let back = from_blob(&blob).expect("decode");
        assert_eq!(back, prep);
        assert_eq!(to_blob(&back), blob, "re-encode is byte-identical");
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let blob = to_blob(&sample());
        for cut in 0..blob.len() {
            assert!(
                from_blob(&blob[..cut]).is_err(),
                "truncation at {cut}/{} decoded",
                blob.len()
            );
        }
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut blob = to_blob(&sample());
        blob[0] = blob[0].wrapping_add(1);
        let err = from_blob(&blob).unwrap_err();
        assert!(err.contains("version"), "unexpected error: {err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = to_blob(&sample());
        blob.push(0);
        assert!(from_blob(&blob).unwrap_err().contains("trailing"));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A u32::MAX frame count right where the backtrace length lives
        // must be caught by the remaining-bytes guard, not attempted.
        let mut blob = to_blob(&sample());
        let name_len = "vuln_parse".len();
        // version(2) + ep(4) + name len(4) + name + kind tag(1) + addr(8)
        // + region(1) + func(4) + block(4) + inst_idx(8) = frame count.
        let at = 2 + 4 + 4 + name_len + 1 + 8 + 1 + 4 + 4 + 8;
        blob[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_blob(&blob).unwrap_err().contains("length prefix"));
    }
}
