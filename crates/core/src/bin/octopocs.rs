//! `octopocs` — command-line verification of propagated vulnerable code.
//!
//! ```text
//! octopocs --s S.mir --t T.mir --poc poc.bin --shared f1,f2 [--out poc_prime.bin]
//!          [--minimize] [--theta N] [--accelerate-loops] [--static-cfg]
//!          [--context-free] [--prescreen] [--json]
//! octopocs lint program.mir [--format human|json] [--canonical]
//! octopocs clone --s S.mir --t T.mir [--threshold X] [--top-k N]
//!          [--min-insts N] [--json]
//! octopocs scan (--corpus | --s S.mir --poc poc.bin --target T.mir...)
//!          [--threshold X] [--top-k N] [--workers N] [--deadline-secs S]
//!          [--json | --verdicts-json] [--candidates-json PATH] [--events]
//!          [--metrics-json PATH] [--metrics-prom PATH]
//! octopocs batch (--corpus | --jobs FILE) [--workers N] [--deadline-secs S]
//!          [--json | --verdicts-json] [--events] [--metrics-json PATH]
//!          [--metrics-prom PATH] [--trace-chrome PATH] [--trace-jsonl PATH]
//!          [--post-mortem] [--theta N]
//!          [--accelerate-loops] [--static-cfg] [--context-free] [--prescreen]
//!          [--fault-plan FILE] [--retry N] [--retry-backoff-ms MS]
//!          [--watchdog-quiet-secs S]
//! octopocs submit (--corpus | --s S.mir --t T.mir --poc poc.bin --shared f1,f2
//!          | --scan --s S.mir --poc poc.bin --target T.mir...)
//!          [--priority interactive|bulk] [--socket PATH | --tcp ADDR]
//! octopocs status [--id N] [--metrics-json PATH] [--socket PATH | --tcp ADDR]
//! octopocs watch --id N [--socket PATH | --tcp ADDR]
//! octopocs results [--wait] [--verdicts-json] [--socket PATH | --tcp ADDR]
//! octopocs drain [--shutdown] [--socket PATH | --tcp ADDR]
//! octopocs top --http ADDR [--windows N] [--json]
//! ```
//!
//! `S.mir`/`T.mir` are MicroIR assembly files (the dialect of
//! `octo_ir::parse`); `poc.bin` is the original PoC; `--shared` lists the
//! cloned function names (`ℓ`) as a clone detector reports them. Exit code
//! 0 = triggered (a working `poc'` exists; written to `--out` when given),
//! 1 = verified not triggerable, 2 = verification failure, 3 = usage or
//! input error.
//!
//! The `lint` subcommand runs the `octo-lint` static analyses over one
//! MicroIR program and prints the diagnostics (severity, function/block
//! location, rule id). Exit code 0 = clean or warnings only, 1 = at least
//! one error-severity diagnostic, 3 = unreadable or unparsable input.
//! `--canonical` instead prints the program's canonical normal form
//! (entry-first DFS block order, dense register/label renumbering) —
//! renamed/reordered clones print identically, so the output is directly
//! diffable.
//!
//! The `clone` subcommand retrieves cloned-function candidates between
//! two programs using `octo-clone` static fingerprints (no verification;
//! exit 0 = candidates found, 1 = none). The `scan` subcommand goes end
//! to end: it discovers the shared set ℓ per target and verifies every
//! discovered `(S, poc, Tᵢ, ℓᵢ)` job on the batch scheduler
//! (`--candidates-json` writes the stable retrieval document CI diffs
//! against `tests/golden/clone_candidates.json`). See
//! `docs/clone-scanning.md`.
//!
//! The `batch` subcommand verifies a whole job set on the work-stealing
//! scheduler with the shared artifact cache (see `octopocs::batch`).
//! `--corpus` runs the 15 Table II pairs; `--jobs FILE` reads one job per
//! line (`name S.mir T.mir poc.bin f1,f2`; `#` starts a comment).
//! `--json` emits the full machine-readable report, `--verdicts-json` the
//! stable verdicts-only document that CI diffs against its golden file,
//! and `--events` streams progress events to stderr. `--metrics-json` and
//! `--metrics-prom` write the run's metrics registry (counters, gauges,
//! phase histograms; see `docs/observability.md`) to a file as JSON or
//! Prometheus text exposition. `--trace-chrome` records the run in a
//! flight recorder and writes a Chrome Trace Event Format file (load it
//! in `chrome://tracing` or Perfetto; one lane per worker);
//! `--trace-jsonl` writes the same events as JSON lines. `--post-mortem`
//! prints, for every not-triggerable or deadline verdict, why the
//! directed engine gave up (deciding event, `ep` entry count at death,
//! dying state's constraints, flight-record tail).
//!
//! Robustness knobs (see `docs/robustness.md`): `--fault-plan FILE`
//! loads a deterministic fault-injection plan (JSON; seed + per-site
//! rules) and replays it byte-for-byte; `--retry N` attempts each job up
//! to N times on transient failures (deadline, hung, panic, injected
//! fault), quarantining jobs that still fail; `--retry-backoff-ms MS`
//! sets the base backoff between attempts; `--watchdog-quiet-secs S`
//! spawns a watchdog that escalates a job whose heartbeat stays silent
//! for S seconds. Exit code 0 = the batch ran (whatever the verdicts),
//! 3 = usage or input error, 130 = drained by SIGINT/SIGTERM (the first
//! signal winds every in-flight job down cooperatively and the partial
//! report — metrics files included — is still written; a second signal
//! force-exits).
//!
//! The `submit`, `status`, `watch`, `results`, and `drain` subcommands
//! are clients of a running `octopocsd` daemon (see `docs/service.md`):
//! `submit` admits jobs — the 15-pair corpus, one explicit pair, or a
//! client-side clone-scan expansion (`--scan`, same knobs as `octopocs
//! scan`) — and prints one `accepted <id> <name>` line per job (exit 1
//! if any submission was rejected by backpressure); `status` shows the
//! queue (or one job with `--id`, or writes the daemon's metrics
//! registry with `--metrics-json`); `watch` streams one job's progress
//! events as JSON lines until its verdict; `results` prints finished
//! verdicts (`--wait` blocks until the queue empties, `--verdicts-json`
//! emits the same stable document as `octopocs batch --verdicts-json`);
//! `drain` asks the daemon to finish queued work and exit
//! (`--shutdown` cancels in-flight jobs instead, leaving them for
//! journal replay).

use std::process::ExitCode;

use octo_ir::parse::parse_program;
use octo_poc::PocFile;
use octo_serve::{Client, Endpoint, Priority as ServePriority, Request, Response};
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

struct Args {
    s_path: String,
    t_path: String,
    poc_path: String,
    shared: Vec<String>,
    out: Option<String>,
    minimize: bool,
    theta: Option<u32>,
    accelerate_loops: bool,
    static_cfg: bool,
    context_free: bool,
    prescreen: bool,
    json: bool,
}

fn usage() -> String {
    "usage: octopocs --s S.mir --t T.mir --poc poc.bin --shared f1,f2 \
     [--out poc_prime.bin] [--minimize] [--theta N] [--accelerate-loops] \
     [--static-cfg] [--context-free] [--prescreen] [--json]\n       \
     octopocs lint program.mir [--format human|json] [--canonical]\n       \
     octopocs clone --s S.mir --t T.mir [--threshold X] [--top-k N] \
     [--min-insts N] [--json]\n       \
     octopocs scan (--corpus | --s S.mir --poc poc.bin --target T.mir...) \
     [--threshold X] [--top-k N] [--workers N] [--deadline-secs S] \
     [--cache-dir DIR] [--json | --verdicts-json] [--candidates-json PATH] \
     [--events] [--metrics-json PATH] [--metrics-prom PATH]\n       \
     octopocs batch (--corpus | --jobs FILE) [--workers N] \
     [--deadline-secs S] [--cache-dir DIR] [--json | --verdicts-json] \
     [--events] [--metrics-json PATH] [--metrics-prom PATH] \
     [--trace-chrome PATH] [--trace-jsonl PATH] [--post-mortem] [--theta N] \
     [--accelerate-loops] [--static-cfg] [--context-free] [--prescreen] \
     [--fault-plan FILE] [--retry N] [--retry-backoff-ms MS] \
     [--watchdog-quiet-secs S]\n       \
     octopocs cache (stats | verify | gc) --cache-dir DIR [--json] \
     [--keep-generations N] [--max-age-secs S]\n       \
     octopocs submit (--corpus | --s S.mir --t T.mir --poc poc.bin --shared f1,f2 | \
     --scan --s S.mir --poc poc.bin --target T.mir...) \
     [--priority interactive|bulk] [--socket PATH | --tcp ADDR]\n       \
     octopocs status [--id N] [--metrics-json PATH] [--socket PATH | --tcp ADDR]\n       \
     octopocs watch --id N [--socket PATH | --tcp ADDR]\n       \
     octopocs results [--wait] [--verdicts-json] [--socket PATH | --tcp ADDR]\n       \
     octopocs drain [--shutdown] [--socket PATH | --tcp ADDR]\n       \
     octopocs top --http ADDR [--windows N] [--json]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        s_path: String::new(),
        t_path: String::new(),
        poc_path: String::new(),
        shared: Vec::new(),
        out: None,
        minimize: false,
        theta: None,
        accelerate_loops: false,
        static_cfg: false,
        context_free: false,
        prescreen: false,
        json: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--s" => args.s_path = value("--s")?,
            "--t" => args.t_path = value("--t")?,
            "--poc" => args.poc_path = value("--poc")?,
            "--shared" => {
                args.shared = value("--shared")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--out" => args.out = Some(value("--out")?),
            "--theta" => {
                args.theta = Some(
                    value("--theta")?
                        .parse()
                        .map_err(|e| format!("bad --theta: {e}"))?,
                )
            }
            "--minimize" => args.minimize = true,
            "--accelerate-loops" => args.accelerate_loops = true,
            "--static-cfg" => args.static_cfg = true,
            "--context-free" => args.context_free = true,
            "--prescreen" => args.prescreen = true,
            "--json" => args.json = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.s_path.is_empty() || args.t_path.is_empty() || args.poc_path.is_empty() {
        return Err(format!("--s, --t and --poc are required\n{}", usage()));
    }
    if args.shared.is_empty() {
        return Err(format!(
            "--shared must list at least one function\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn load_program(path: &str) -> Result<octo_ir::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let p = parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    octo_ir::validate::validate(&p).map_err(|es| {
        format!(
            "{path}: {}",
            es.first().map(ToString::to_string).unwrap_or_default()
        )
    })?;
    Ok(p)
}

/// The `octopocs lint` subcommand: static analysis of one program.
fn lint_main(argv: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut canonical = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--canonical" => canonical = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("human") => json = false,
                other => {
                    eprintln!(
                        "bad --format `{}` (expected human|json)",
                        other.unwrap_or("")
                    );
                    return ExitCode::from(3);
                }
            },
            "--help" | "-h" => {
                eprintln!("{}", usage());
                return ExitCode::from(3);
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => {
                eprintln!("unknown lint argument `{other}`\n{}", usage());
                return ExitCode::from(3);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("lint: a program file is required\n{}", usage());
        return ExitCode::from(3);
    };
    // Parse only — structural validation is the lint's own VAL001 rule,
    // so invalid programs are reported, not rejected.
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(3);
        }
    };
    let program = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(3);
        }
    };
    if canonical {
        // Canonicalization mode: print the normal form (entry-first DFS
        // block order, dense register/label renumbering) instead of the
        // diagnostics. `parse(print_canonical(p))` is a fixed point, so
        // the output is diffable across renamed/reordered variants.
        print!("{}", octo_ir::printer::print_program_canonical(&program));
        return ExitCode::SUCCESS;
    }
    let report = octo_lint::lint_program(&program);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.error_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses the retrieval knobs shared by `clone` and `scan`.
fn parse_clone_params(
    flag: &str,
    value: &mut dyn FnMut(&str) -> Result<String, String>,
    params: &mut octo_clone::CloneParams,
) -> Result<bool, String> {
    match flag {
        "--threshold" => {
            params.threshold = value("--threshold")?
                .parse()
                .map_err(|e| format!("bad --threshold: {e}"))?;
            if !(0.0..=1.0).contains(&params.threshold) {
                return Err("--threshold must be in [0, 1]".to_string());
            }
        }
        "--top-k" => {
            params.top_k = value("--top-k")?
                .parse()
                .map_err(|e| format!("bad --top-k: {e}"))?;
            if params.top_k == 0 {
                return Err("--top-k must be at least 1".to_string());
            }
        }
        "--min-insts" => {
            params.min_insts = value("--min-insts")?
                .parse()
                .map_err(|e| format!("bad --min-insts: {e}"))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// The `octopocs clone` subcommand: retrieve clone candidates between
/// two programs (no verification). Exit 0 = at least one candidate,
/// 1 = none, 3 = usage or input error.
fn clone_main(argv: &[String]) -> ExitCode {
    let mut s_path = String::new();
    let mut t_path = String::new();
    let mut params = octo_clone::CloneParams::default();
    let mut json = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--s" => s_path = value("--s")?,
                "--t" => t_path = value("--t")?,
                "--json" => json = true,
                "--help" | "-h" => return Err(String::new()),
                other => {
                    if !parse_clone_params(other, &mut value, &mut params)? {
                        return Err(format!("unknown clone flag `{other}`"));
                    }
                }
            }
            Ok(())
        })();
        if let Err(msg) = result {
            if msg.is_empty() {
                eprintln!("{}", usage());
            } else {
                eprintln!("{msg}\n{}", usage());
            }
            return ExitCode::from(3);
        }
    }
    if s_path.is_empty() || t_path.is_empty() {
        eprintln!("clone: --s and --t are required\n{}", usage());
        return ExitCode::from(3);
    }
    let (s, t) = match (load_program(&s_path), load_program(&t_path)) {
        (Ok(s), Ok(t)) => (s, t),
        (s, t) => {
            for msg in [s.err(), t.err()].into_iter().flatten() {
                eprintln!("error: {msg}");
            }
            return ExitCode::from(3);
        }
    };
    let expansion = octopocs::expand_scan(
        &[octopocs::ScanSource {
            name: s_path.clone(),
            s,
            poc: PocFile::new(Vec::new()),
        }],
        &[octopocs::ScanTarget {
            name: t_path.clone(),
            t,
        }],
        &params,
    );
    if json {
        print!("{}", expansion.render_candidates_json());
    } else {
        print!("{}", expansion.render_candidates_human());
    }
    if expansion.candidate_count() > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The `octopocs scan` subcommand: discover ℓ per target and verify
/// every discovered pair on the batch scheduler. Exit 0 = the scan ran,
/// 3 = usage or input error.
fn scan_main(argv: &[String]) -> ExitCode {
    let mut corpus = false;
    let mut s_path = String::new();
    let mut poc_path = String::new();
    let mut target_paths: Vec<String> = Vec::new();
    let mut params = octo_clone::CloneParams::default();
    let mut options = BatchOptions::default();
    let config = PipelineConfig::default();
    let mut json = false;
    let mut verdicts_json = false;
    let mut candidates_json: Option<String> = None;
    let mut events = false;
    let mut metrics_json: Option<String> = None;
    let mut metrics_prom: Option<String> = None;
    let mut it = argv.iter();
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--corpus" => corpus = true,
                "--s" => s_path = value("--s")?,
                "--poc" => poc_path = value("--poc")?,
                "--target" => target_paths.push(value("--target")?),
                "--workers" => {
                    options.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?;
                    if options.workers == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                }
                "--deadline-secs" => {
                    let secs: f64 = value("--deadline-secs")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--deadline-secs must be positive".to_string());
                    }
                    options.deadline = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--cache-dir" => {
                    options.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?))
                }
                "--json" => json = true,
                "--verdicts-json" => verdicts_json = true,
                "--candidates-json" => candidates_json = Some(value("--candidates-json")?),
                "--events" => events = true,
                "--metrics-json" => metrics_json = Some(value("--metrics-json")?),
                "--metrics-prom" => metrics_prom = Some(value("--metrics-prom")?),
                "--help" | "-h" => return Err(String::new()),
                other => {
                    if !parse_clone_params(other, &mut value, &mut params)? {
                        return Err(format!("unknown scan flag `{other}`"));
                    }
                }
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }
    if corpus == (!s_path.is_empty() || !target_paths.is_empty()) {
        return parse_error(
            "exactly one of --corpus or (--s/--poc/--target...) is required".to_string(),
        );
    }
    if json && verdicts_json {
        return parse_error("--json and --verdicts-json are mutually exclusive".to_string());
    }
    let (sources, targets) = if corpus {
        octopocs::corpus_scan_inputs()
    } else {
        if s_path.is_empty() || poc_path.is_empty() || target_paths.is_empty() {
            return parse_error("scan needs --s, --poc and at least one --target".to_string());
        }
        let s = match load_program(&s_path) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(3);
            }
        };
        let poc_bytes = match std::fs::read(&poc_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {poc_path}: {e}");
                return ExitCode::from(3);
            }
        };
        let mut targets = Vec::new();
        for path in &target_paths {
            match load_program(path) {
                Ok(t) => targets.push(octopocs::ScanTarget {
                    name: path.clone(),
                    t,
                }),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(3);
                }
            }
        }
        (
            vec![octopocs::ScanSource {
                name: s_path.clone(),
                s,
                poc: PocFile::new(poc_bytes),
            }],
            targets,
        )
    };

    let stderr_sink = |event: octo_sched::Event| eprintln!("{}", event.render_human());
    let report = if events {
        octopocs::run_scan(&sources, &targets, &params, &config, &options, &stderr_sink)
    } else {
        octopocs::run_scan(
            &sources,
            &targets,
            &params,
            &config,
            &options,
            &octo_sched::NullSink,
        )
    };

    let outputs: Vec<(&Option<String>, String)> = vec![
        (&candidates_json, report.expansion.render_candidates_json()),
        (&metrics_json, report.batch.metrics.render_json()),
        (&metrics_prom, report.batch.metrics.render_prometheus()),
    ];
    for (path, content) in outputs {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }

    if verdicts_json {
        print!("{}", report.batch.render_verdicts_json());
    } else if json {
        println!("{}", report.batch.render_json());
    } else {
        print!("{}", report.expansion.render_candidates_human());
        print!("{}", report.batch.render_human());
    }
    ExitCode::SUCCESS
}

/// Reads a `--jobs` file: one job per whitespace-separated line
/// (`name S.mir T.mir poc.bin f1,f2`), `#` starting a comment.
fn load_job_file(path: &str) -> Result<Vec<BatchJob>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut jobs = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [name, s_path, t_path, poc_path, shared] = fields[..] else {
            return Err(format!(
                "{path}:{}: expected `name S.mir T.mir poc.bin f1,f2`, got {} fields",
                lineno + 1,
                fields.len()
            ));
        };
        let poc_bytes = std::fs::read(poc_path)
            .map_err(|e| format!("{path}:{}: {poc_path}: {e}", lineno + 1))?;
        jobs.push(BatchJob {
            name: name.to_string(),
            s: load_program(s_path).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            t: load_program(t_path).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            poc: PocFile::new(poc_bytes),
            shared: shared
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        });
    }
    if jobs.is_empty() {
        return Err(format!("{path}: no jobs"));
    }
    Ok(jobs)
}

/// The Table II corpus as a batch job set.
fn corpus_jobs() -> Vec<BatchJob> {
    octo_corpus::all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

/// The `octopocs batch` subcommand: scheduled batch verification.
fn batch_main(argv: &[String]) -> ExitCode {
    let mut corpus = false;
    let mut jobs_path: Option<String> = None;
    let mut options = BatchOptions::default();
    let mut config = PipelineConfig::default();
    let mut json = false;
    let mut verdicts_json = false;
    let mut events = false;
    let mut metrics_json: Option<String> = None;
    let mut metrics_prom: Option<String> = None;
    let mut trace_chrome: Option<String> = None;
    let mut trace_jsonl: Option<String> = None;
    let mut post_mortem = false;
    let mut it = argv.iter();
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--corpus" => corpus = true,
                "--jobs" => jobs_path = Some(value("--jobs")?),
                "--workers" => {
                    options.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?;
                    if options.workers == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                }
                "--deadline-secs" => {
                    let secs: f64 = value("--deadline-secs")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--deadline-secs must be positive".to_string());
                    }
                    options.deadline = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--theta" => {
                    config.theta = value("--theta")?
                        .parse()
                        .map_err(|e| format!("bad --theta: {e}"))?
                }
                "--accelerate-loops" => config.loop_acceleration = true,
                "--static-cfg" => config.cfg_mode = octo_cfg::CfgMode::Static,
                "--context-free" => config.taint_context = octo_taint::ContextMode::ContextFree,
                "--prescreen" => config.static_prescreen = true,
                "--cache-dir" => {
                    options.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?))
                }
                "--json" => json = true,
                "--verdicts-json" => verdicts_json = true,
                "--events" => events = true,
                "--fault-plan" => {
                    let path = value("--fault-plan")?;
                    let text =
                        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                    let plan = octopocs::FaultPlan::parse_json(&text)
                        .map_err(|e| format!("{path}: {e}"))?;
                    options.faults = Some(std::sync::Arc::new(plan));
                }
                "--retry" => {
                    options.retry.max_attempts = value("--retry")?
                        .parse()
                        .map_err(|e| format!("bad --retry: {e}"))?;
                    if options.retry.max_attempts == 0 {
                        return Err("--retry must be at least 1".to_string());
                    }
                }
                "--retry-backoff-ms" => {
                    let ms: u64 = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|e| format!("bad --retry-backoff-ms: {e}"))?;
                    if ms == 0 {
                        return Err(
                            "--retry-backoff-ms must be positive (omit the flag for no backoff)"
                                .to_string(),
                        );
                    }
                    options.retry.base_backoff = std::time::Duration::from_millis(ms);
                }
                "--watchdog-quiet-secs" => {
                    let secs: f64 = value("--watchdog-quiet-secs")?
                        .parse()
                        .map_err(|e| format!("bad --watchdog-quiet-secs: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--watchdog-quiet-secs must be positive".to_string());
                    }
                    options.watchdog = Some(octopocs::WatchdogConfig::with_quiet(
                        std::time::Duration::from_secs_f64(secs),
                    ));
                }
                "--metrics-json" => metrics_json = Some(value("--metrics-json")?),
                "--metrics-prom" => metrics_prom = Some(value("--metrics-prom")?),
                "--trace-chrome" => trace_chrome = Some(value("--trace-chrome")?),
                "--trace-jsonl" => trace_jsonl = Some(value("--trace-jsonl")?),
                "--post-mortem" => post_mortem = true,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown batch flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }
    if corpus == jobs_path.is_some() {
        return parse_error("exactly one of --corpus or --jobs is required".to_string());
    }
    if json && verdicts_json {
        return parse_error("--json and --verdicts-json are mutually exclusive".to_string());
    }
    let jobs = if corpus {
        corpus_jobs()
    } else {
        match load_job_file(jobs_path.as_deref().expect("checked above")) {
            Ok(jobs) => jobs,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(3);
            }
        }
    };

    // A flight recorder only when an export asked for one; otherwise
    // tracing stays a no-op in every engine.
    let recorder = (trace_chrome.is_some() || trace_jsonl.is_some())
        .then(|| std::sync::Arc::new(octopocs::FlightRecorder::with_default_capacity()));
    options.trace = recorder.clone();

    // Graceful drain on the first SIGINT/SIGTERM: the run-level token
    // winds every in-flight job down as `Cancelled`, the partial report
    // (metrics files included) is still written, and the exit code
    // flips to 130. A second signal force-exits immediately.
    let drain = octo_sched::CancelToken::new();
    if octo_sched::install_drain_signals(&drain) {
        options.cancel = Some(drain.clone());
    }

    let stderr_sink = |event: octo_sched::Event| eprintln!("{}", event.render_human());
    let report = if events {
        run_batch(&jobs, &config, &options, &stderr_sink)
    } else {
        run_batch(&jobs, &config, &options, &octo_sched::NullSink)
    };

    let mut outputs: Vec<(&Option<String>, String)> = vec![
        (&metrics_json, report.metrics.render_json()),
        (&metrics_prom, report.metrics.render_prometheus()),
    ];
    if let Some(rec) = &recorder {
        let snapshot = rec.snapshot();
        if rec.dropped() > 0 {
            eprintln!(
                "trace: ring overflowed, {} oldest events overwritten",
                rec.dropped()
            );
        }
        outputs.push((&trace_chrome, octo_trace::chrome::render_chrome(&snapshot)));
        let mut lines = String::new();
        for e in &snapshot {
            lines.push_str(&e.render_json());
            lines.push('\n');
        }
        outputs.push((&trace_jsonl, lines));
    }
    for (path, content) in outputs {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }

    if post_mortem {
        let mortems = report.render_post_mortems();
        let text = if mortems.is_empty() {
            "no post-mortems: no job ended not-triggerable or on a deadline\n".to_string()
        } else {
            mortems
        };
        // Keep machine-readable stdout intact when a JSON mode is on.
        if json || verdicts_json {
            eprint!("{text}");
        } else {
            print!("{text}");
        }
    }

    if verdicts_json {
        print!("{}", report.render_verdicts_json());
    } else if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if drain.is_cancelled() {
        let incomplete = report
            .entries
            .iter()
            .filter(|e| {
                matches!(
                    &e.report.verdict,
                    Verdict::Failure {
                        reason: octopocs::FailureReason::Cancelled
                    }
                )
            })
            .count();
        eprintln!("batch: drained by signal; {incomplete} job(s) incomplete");
        return ExitCode::from(130);
    }
    ExitCode::SUCCESS
}

/// The `octopocs cache` subcommand: offline maintenance of a disk
/// artifact cache (`--cache-dir`) — `stats`, `verify` (re-check every
/// blob's frame and checksum), `gc` (prune by generation/age, sweep
/// orphan temp files). See docs/caching.md.
fn cache_main(argv: &[String]) -> ExitCode {
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    let Some(action) = argv.first().map(String::as_str) else {
        return parse_error("cache needs an action: stats, verify or gc".to_string());
    };
    if !matches!(action, "stats" | "verify" | "gc") {
        return parse_error(format!("unknown cache action `{action}`"));
    }
    let mut cache_dir: Option<String> = None;
    let mut json = false;
    let mut keep_generations: Option<u64> = None;
    let mut max_age_secs: Option<u64> = None;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
                "--json" => json = true,
                "--keep-generations" => {
                    keep_generations = Some(
                        value("--keep-generations")?
                            .parse()
                            .map_err(|e| format!("bad --keep-generations: {e}"))?,
                    )
                }
                "--max-age-secs" => {
                    max_age_secs = Some(
                        value("--max-age-secs")?
                            .parse()
                            .map_err(|e| format!("bad --max-age-secs: {e}"))?,
                    )
                }
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown cache flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }
    let Some(dir) = cache_dir else {
        return parse_error("cache needs --cache-dir DIR".to_string());
    };
    if (keep_generations.is_some() || max_age_secs.is_some()) && action != "gc" {
        return parse_error("--keep-generations/--max-age-secs only apply to gc".to_string());
    }
    let store = octopocs::BlobStore::open(std::path::Path::new(&dir));
    if store.is_degraded() {
        eprintln!("error: {dir} is not usable as a cache directory");
        return ExitCode::from(2);
    }
    match action {
        "stats" => {
            let stats = store.stats();
            if json {
                println!(
                    "{{\"entries\":{},\"generation\":{},\"degraded\":{}}}",
                    stats.entries, stats.generation, stats.degraded
                );
            } else {
                println!(
                    "cache {dir}: {} entries, generation {}",
                    stats.entries, stats.generation
                );
            }
            ExitCode::SUCCESS
        }
        "verify" => {
            let report = store.verify();
            if json {
                let keys: Vec<String> = report
                    .corrupt
                    .iter()
                    .map(|k| format!("\"{k:016x}\""))
                    .collect();
                println!(
                    "{{\"valid\":{},\"corrupt\":[{}],\"orphan_temps\":{}}}",
                    report.valid,
                    keys.join(","),
                    report.orphan_temps
                );
            } else {
                for key in &report.corrupt {
                    println!("corrupt: {key:016x}");
                }
                println!(
                    "verified {dir}: {} valid, {} corrupt, {} orphan temp file(s)",
                    report.valid,
                    report.corrupt.len(),
                    report.orphan_temps
                );
            }
            if report.corrupt.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            let report = store.gc(keep_generations, max_age_secs);
            if json {
                println!(
                    "{{\"removed\":{},\"kept\":{},\"temps_swept\":{}}}",
                    report.removed, report.kept, report.temps_swept
                );
            } else {
                println!(
                    "gc {dir}: removed {}, kept {}, swept {} temp file(s)",
                    report.removed, report.kept, report.temps_swept
                );
            }
            ExitCode::SUCCESS
        }
    }
}

// ---------------------------------------------------------------------------
// Service client subcommands: thin drivers of a running `octopocsd`
// daemon over the `octo-serve` wire protocol (see docs/service.md).

/// Connects to the daemon. The default endpoint is the daemon's default
/// Unix socket, `octopocsd.sock`, in the current directory.
fn service_connect(socket: Option<String>, tcp: Option<String>) -> Result<Client, String> {
    let endpoint = match (socket, tcp) {
        (Some(_), Some(_)) => return Err("--socket and --tcp are mutually exclusive".to_string()),
        (_, Some(addr)) => Endpoint::Tcp(addr),
        (path, None) => Endpoint::Unix(path.unwrap_or_else(|| "octopocsd.sock".to_string()).into()),
    };
    Client::connect(&endpoint)
}

/// The `octopocs submit` subcommand: admit jobs into a running daemon.
/// Exit 0 = every job accepted, 1 = at least one rejected (backpressure
/// or invalid), 3 = usage or connection error.
fn submit_main(argv: &[String]) -> ExitCode {
    let mut corpus = false;
    let mut scan = false;
    let mut s_path = String::new();
    let mut t_path = String::new();
    let mut poc_path = String::new();
    let mut shared: Vec<String> = Vec::new();
    let mut target_paths: Vec<String> = Vec::new();
    let mut params = octo_clone::CloneParams::default();
    let mut priority: Option<ServePriority> = None;
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut it = argv.iter();
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--corpus" => corpus = true,
                "--scan" => scan = true,
                "--s" => s_path = value("--s")?,
                "--t" => t_path = value("--t")?,
                "--poc" => poc_path = value("--poc")?,
                "--shared" => {
                    shared = value("--shared")?
                        .split(',')
                        .map(str::to_string)
                        .filter(|s| !s.is_empty())
                        .collect()
                }
                "--target" => target_paths.push(value("--target")?),
                "--priority" => {
                    priority = Some(
                        ServePriority::parse(&value("--priority")?)
                            .map_err(|e| format!("bad --priority: {e}"))?,
                    )
                }
                "--socket" => socket = Some(value("--socket")?),
                "--tcp" => tcp = Some(value("--tcp")?),
                "--help" | "-h" => return Err(String::new()),
                other => {
                    if !parse_clone_params(other, &mut value, &mut params)? {
                        return Err(format!("unknown submit flag `{other}`"));
                    }
                }
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }
    let single = !s_path.is_empty() && !scan;
    if usize::from(corpus) + usize::from(scan) + usize::from(single) != 1 {
        return parse_error(
            "exactly one of --corpus, --scan, or (--s/--t/--poc/--shared) is required".to_string(),
        );
    }
    // Corpus/scan expansions default to bulk; a single pair is a human
    // waiting and defaults to interactive.
    let (jobs, default_priority) = if corpus {
        (corpus_jobs(), ServePriority::Bulk)
    } else if scan {
        if s_path.is_empty() || poc_path.is_empty() || target_paths.is_empty() {
            return parse_error("--scan needs --s, --poc and at least one --target".to_string());
        }
        let s = match load_program(&s_path) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(3);
            }
        };
        let poc = match std::fs::read(&poc_path) {
            Ok(bytes) => PocFile::new(bytes),
            Err(e) => {
                eprintln!("error: {poc_path}: {e}");
                return ExitCode::from(3);
            }
        };
        let mut targets = Vec::new();
        for path in &target_paths {
            match load_program(path) {
                Ok(t) => targets.push(octopocs::ScanTarget {
                    name: path.clone(),
                    t,
                }),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(3);
                }
            }
        }
        let expansion = octopocs::expand_scan(
            &[octopocs::ScanSource {
                name: s_path.clone(),
                s,
                poc,
            }],
            &targets,
            &params,
        );
        (expansion.jobs, ServePriority::Bulk)
    } else {
        if t_path.is_empty() || poc_path.is_empty() || shared.is_empty() {
            return parse_error("submit needs --s, --t, --poc and --shared".to_string());
        }
        let (s, t, poc_bytes) = match (
            load_program(&s_path),
            load_program(&t_path),
            std::fs::read(&poc_path),
        ) {
            (Ok(s), Ok(t), Ok(p)) => (s, t, p),
            (s, t, p) => {
                for msg in [
                    s.err(),
                    t.err(),
                    p.err().map(|e| format!("{poc_path}: {e}")),
                ]
                .into_iter()
                .flatten()
                {
                    eprintln!("error: {msg}");
                }
                return ExitCode::from(3);
            }
        };
        (
            vec![BatchJob {
                name: format!("{s_path} => {t_path}"),
                s,
                t,
                poc: PocFile::new(poc_bytes),
                shared,
            }],
            ServePriority::Interactive,
        )
    };
    let priority = priority.unwrap_or(default_priority);

    let mut client = match service_connect(socket, tcp) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    let mut refused = 0usize;
    for job in &jobs {
        let spec = octopocs::batch_job_to_spec(job, priority);
        match client.request(&Request::Submit { job: spec }) {
            Ok(Response::Accepted { id }) => println!("accepted {id} {}", job.name),
            Ok(Response::Rejected { reason }) => {
                eprintln!("rejected {}: {reason}", job.name);
                refused += 1;
            }
            Ok(Response::Error { message }) => {
                eprintln!("error {}: {message}", job.name);
                refused += 1;
            }
            Ok(other) => {
                eprintln!("error {}: unexpected response {}", job.name, other.render());
                refused += 1;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        }
    }
    if refused > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses the shared `--socket`/`--tcp`/`--id`-style flags of the small
/// client subcommands. Returns `Err` on unknown flags.
struct ClientArgs {
    socket: Option<String>,
    tcp: Option<String>,
    id: Option<u64>,
    metrics_json: Option<String>,
    wait: bool,
    verdicts_json: bool,
    shutdown: bool,
}

fn parse_client_args(argv: &[String], subcommand: &str) -> Result<ClientArgs, String> {
    let mut args = ClientArgs {
        socket: None,
        tcp: None,
        id: None,
        metrics_json: None,
        wait: false,
        verdicts_json: false,
        shutdown: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--id" => {
                args.id = Some(
                    value("--id")?
                        .parse()
                        .map_err(|e| format!("bad --id: {e}"))?,
                )
            }
            "--metrics-json" if subcommand == "status" => {
                args.metrics_json = Some(value("--metrics-json")?)
            }
            "--wait" if subcommand == "results" => args.wait = true,
            "--verdicts-json" if subcommand == "results" => args.verdicts_json = true,
            "--shutdown" if subcommand == "drain" => args.shutdown = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown {subcommand} flag `{other}`")),
        }
    }
    Ok(args)
}

fn render_job_status(j: &octo_serve::JobStatus) -> String {
    let verdict = j
        .verdict
        .as_ref()
        .map(|v| {
            format!(
                " verdict={}{}",
                v.verdict,
                if v.quarantined { " (quarantined)" } else { "" }
            )
        })
        .unwrap_or_default();
    format!(
        "job {} [{}] {} {}{verdict}",
        j.id,
        j.priority.label(),
        j.phase.label(),
        j.name
    )
}

/// The `octopocs status` subcommand. Exit 0 = answered, 1 = unknown job
/// id, 3 = usage or connection error.
fn status_main(argv: &[String]) -> ExitCode {
    let args = match parse_client_args(argv, "status") {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n{}", usage());
            return ExitCode::from(3);
        }
    };
    let mut client = match service_connect(args.socket, args.tcp) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    if let Some(path) = &args.metrics_json {
        match client.request(&Request::Metrics) {
            Ok(Response::Metrics { body }) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::from(3);
                }
            }
            Ok(other) => {
                eprintln!("error: unexpected response {}", other.render());
                return ExitCode::from(3);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        }
    }
    match client.request(&Request::Status { id: args.id }) {
        Ok(Response::Status(s)) => {
            println!(
                "queued: {} interactive + {} bulk (capacity {}), running: {}, done: {}{}",
                s.queued_interactive,
                s.queued_bulk,
                s.capacity,
                s.running,
                s.done,
                if s.draining { ", draining" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Ok(Response::Job(j)) => {
            println!("{}", render_job_status(&j));
            if let Some(pm) = &j.post_mortem {
                for line in pm.lines() {
                    println!("  {line}");
                }
            }
            ExitCode::SUCCESS
        }
        Ok(Response::Error { message }) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
        Ok(other) => {
            eprintln!("error: unexpected response {}", other.render());
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// The `octopocs watch` subcommand: stream one job's events as JSON
/// lines until its verdict. Exit 0 = done line received, 2 = the stream
/// ended in an error line, 3 = usage or connection error.
fn watch_main(argv: &[String]) -> ExitCode {
    let args = match parse_client_args(argv, "watch") {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n{}", usage());
            return ExitCode::from(3);
        }
    };
    let Some(id) = args.id else {
        eprintln!("watch needs --id\n{}", usage());
        return ExitCode::from(3);
    };
    let mut client = match service_connect(args.socket, args.tcp) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    if let Err(e) = client.send(&Request::Watch { id }) {
        eprintln!("error: {e}");
        return ExitCode::from(3);
    }
    loop {
        match client.recv() {
            Ok(Some(resp @ Response::Event(_))) => println!("{}", resp.render()),
            Ok(Some(resp @ Response::Done { .. })) => {
                println!("{}", resp.render());
                return ExitCode::SUCCESS;
            }
            Ok(Some(Response::Error { message })) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
            Ok(Some(other)) => {
                eprintln!("error: unexpected response {}", other.render());
                return ExitCode::from(2);
            }
            Ok(None) => {
                eprintln!("error: daemon closed the connection");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
}

/// The `octopocs results` subcommand. `--wait` blocks until the queue
/// is empty; `--verdicts-json` prints the same stable document as
/// `octopocs batch --verdicts-json`. Exit 0 = answered, 3 = usage or
/// connection error.
fn results_main(argv: &[String]) -> ExitCode {
    let args = match parse_client_args(argv, "results") {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n{}", usage());
            return ExitCode::from(3);
        }
    };
    let mut client = match service_connect(args.socket, args.tcp) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    if args.wait {
        loop {
            match client.request(&Request::Status { id: None }) {
                Ok(Response::Status(s)) => {
                    if s.queued_interactive + s.queued_bulk + s.running == 0 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Ok(other) => {
                    eprintln!("error: unexpected response {}", other.render());
                    return ExitCode::from(3);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    }
    match client.request(&Request::Results) {
        Ok(Response::Results { jobs }) => {
            if args.verdicts_json {
                // Byte-identical to `octopocs batch --verdicts-json`
                // (and the CI golden): rows in submission order.
                let mut out = String::from("{\"jobs\":[\n");
                for (i, row) in jobs.iter().enumerate() {
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",{}}}{}\n",
                        octo_serve::json::json_escape(&row.name),
                        row.verdict.render_fields(),
                        if i + 1 == jobs.len() { "" } else { "," }
                    ));
                }
                out.push_str("]}\n");
                print!("{out}");
            } else {
                for row in &jobs {
                    println!(
                        "{:>4}  {:<28} {}{}",
                        row.id,
                        row.verdict.verdict,
                        row.name,
                        if row.verdict.quarantined {
                            "  [quarantined]"
                        } else {
                            ""
                        }
                    );
                }
                println!("{} finished job(s)", jobs.len());
            }
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("error: unexpected response {}", other.render());
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// The `octopocs drain` subcommand: ask the daemon to finish queued
/// work and exit (`--shutdown` cancels in-flight jobs instead). Exit
/// 0 = acknowledged, 3 = usage or connection error.
fn drain_main(argv: &[String]) -> ExitCode {
    let args = match parse_client_args(argv, "drain") {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n{}", usage());
            return ExitCode::from(3);
        }
    };
    let mut client = match service_connect(args.socket, args.tcp) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    let request = if args.shutdown {
        Request::Shutdown
    } else {
        Request::Drain
    };
    match client.request(&request) {
        Ok(Response::Draining { pending }) => {
            println!("draining; {pending} job(s) still pending");
            ExitCode::SUCCESS
        }
        Ok(Response::ShuttingDown) => {
            println!("shutting down; incomplete jobs will replay from the journal");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("error: unexpected response {}", other.render());
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// Windowed rates computed client-side from `/metrics/rates`.
struct TopReport {
    windows: usize,
    span_seconds: f64,
    jobs_per_sec: f64,
    solves_per_sec: f64,
    cache_hits: u64,
    cache_lookups: u64,
    queued_interactive: u64,
    queued_bulk: u64,
    uptime_seconds: u64,
}

/// Sums counter deltas and reads end-of-span gauges from the last
/// `want` windows of a `/metrics/rates` body.
fn top_report(body: &str, want: usize) -> Result<TopReport, String> {
    let doc = octo_serve::json::parse_json(body).map_err(|e| format!("bad rates body: {e}"))?;
    let all = doc
        .get("windows")
        .and_then(|w| w.as_array())
        .ok_or("rates body has no windows array")?;
    if all.is_empty() {
        return Err("no rate windows yet (the daemon samples once a second)".to_string());
    }
    let windows = &all[all.len().saturating_sub(want.max(1))..];
    let first = windows.first().expect("non-empty span");
    let last = windows.last().expect("non-empty span");
    let span_us = last
        .get("end_us")
        .and_then(|v| v.as_u64())
        .zip(first.get("start_us").and_then(|v| v.as_u64()))
        .map(|(end, start)| end.saturating_sub(start))
        .ok_or("windows missing start_us/end_us")?;
    let span_seconds = span_us as f64 / 1_000_000.0;
    let delta = |name: &str| -> u64 {
        windows
            .iter()
            .filter_map(|w| {
                w.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(|v| v.as_u64())
            })
            .sum()
    };
    let gauge = |name: &str| -> u64 {
        last.get("gauges")
            .and_then(|g| g.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let per_sec = |total: u64| {
        if span_seconds > 0.0 {
            total as f64 / span_seconds
        } else {
            0.0
        }
    };
    let cache_hits = delta("cache_hits_total");
    let cache_lookups = cache_hits + delta("cache_misses_total");
    Ok(TopReport {
        windows: windows.len(),
        span_seconds,
        jobs_per_sec: per_sec(delta("batch_jobs_total")),
        solves_per_sec: per_sec(delta("solver_calls_total")),
        cache_hits,
        cache_lookups,
        queued_interactive: gauge("serve_queue_depth_interactive"),
        queued_bulk: gauge("serve_queue_depth_bulk"),
        uptime_seconds: gauge("serve_uptime_seconds"),
    })
}

/// The `octopocs top` subcommand: one-shot windowed throughput from a
/// daemon's octo-scope HTTP plane (`octopocsd --http`). Exit 0 = rates
/// printed, 1 = the plane answered but has no windows yet, 3 = usage or
/// connection error.
fn top_main(argv: &[String]) -> ExitCode {
    let mut http: Option<String> = None;
    let mut windows: usize = 10;
    let mut json = false;
    let mut it = argv.iter();
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--http" => http = Some(value("--http")?),
                "--windows" => {
                    windows = value("--windows")?
                        .parse()
                        .map_err(|e| format!("bad --windows: {e}"))?;
                    if windows == 0 {
                        return Err("--windows must be at least 1".to_string());
                    }
                }
                "--json" => json = true,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown top flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }
    let Some(addr) = http else {
        return parse_error("top needs --http ADDR (the daemon's --http address)".to_string());
    };
    let (status, body) =
        match octo_serve::http_get(&addr, "/metrics/rates", std::time::Duration::from_secs(5)) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        };
    if status != 200 {
        eprintln!("error: /metrics/rates answered {status}: {}", body.trim());
        return ExitCode::from(3);
    }
    let report = match top_report(&body, windows) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let hit_rate = if report.cache_lookups > 0 {
        report.cache_hits as f64 / report.cache_lookups as f64
    } else {
        0.0
    };
    if json {
        println!(
            "{{\"windows\":{},\"span_seconds\":{:.3},\"jobs_per_sec\":{:.4},\
             \"solves_per_sec\":{:.4},\"cache_hit_rate\":{:.4},\"cache_hits\":{},\
             \"cache_lookups\":{},\"queued_interactive\":{},\"queued_bulk\":{},\
             \"uptime_seconds\":{}}}",
            report.windows,
            report.span_seconds,
            report.jobs_per_sec,
            report.solves_per_sec,
            hit_rate,
            report.cache_hits,
            report.cache_lookups,
            report.queued_interactive,
            report.queued_bulk,
            report.uptime_seconds,
        );
    } else {
        println!(
            "octopocs top — last {} window(s), {:.1}s span",
            report.windows, report.span_seconds
        );
        println!("  jobs/s:         {:.2}", report.jobs_per_sec);
        println!("  solves/s:       {:.2}", report.solves_per_sec);
        println!(
            "  cache hit-rate: {:.1}% ({} hit(s) / {} lookup(s))",
            hit_rate * 100.0,
            report.cache_hits,
            report.cache_lookups
        );
        println!(
            "  queue:          {} interactive + {} bulk; uptime {}s",
            report.queued_interactive, report.queued_bulk, report.uptime_seconds
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lint") {
        return lint_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("batch") {
        return batch_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("clone") {
        return clone_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("scan") {
        return scan_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("cache") {
        return cache_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("submit") {
        return submit_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("status") {
        return status_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("watch") {
        return watch_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("results") {
        return results_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("drain") {
        return drain_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("top") {
        return top_main(&argv[1..]);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(3);
        }
    };
    let (s, t, poc_bytes) = match (
        load_program(&args.s_path),
        load_program(&args.t_path),
        std::fs::read(&args.poc_path),
    ) {
        (Ok(s), Ok(t), Ok(p)) => (s, t, p),
        (s, t, p) => {
            for msg in [
                s.err(),
                t.err(),
                p.err().map(|e| format!("{}: {e}", args.poc_path)),
            ]
            .into_iter()
            .flatten()
            {
                eprintln!("error: {msg}");
            }
            return ExitCode::from(3);
        }
    };

    let mut config = PipelineConfig::default();
    if let Some(theta) = args.theta {
        config = config.with_theta(theta);
    }
    if args.accelerate_loops {
        config = config.accelerate_loops();
    }
    if args.static_cfg {
        config = config.static_cfg();
    }
    if args.context_free {
        config = config.context_free();
    }
    if args.prescreen {
        config = config.with_static_prescreen();
    }

    let poc = PocFile::new(poc_bytes);
    let input = SoftwarePairInput {
        s: &s,
        t: &t,
        poc: &poc,
        shared: &args.shared,
    };
    let report = verify(&input, &config);

    if args.json {
        // Hand-rolled JSON keeps the core crate dependency-free.
        println!(
            "{{\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{},\"ep\":\"{}\",\
             \"ep_entries\":{},\"prescreen\":{},\"wall_seconds\":{:.6}}}",
            report.verdict.type_label(),
            report.verdict.poc_generated(),
            report.verdict.verified(),
            report.ep_name.as_deref().unwrap_or(""),
            report.ep_entries,
            report.prescreen,
            report.wall_seconds,
        );
    } else {
        println!("verdict    : {}", report.verdict);
        if let Some(ep) = &report.ep_name {
            println!("ep         : {ep} ({} entries in S)", report.ep_entries);
        }
        if report.prescreen {
            println!("prescreen  : verdict decided statically in P0");
        }
        println!("time       : {:.3}s", report.wall_seconds);
    }

    match &report.verdict {
        Verdict::Triggered { poc_prime, .. } => {
            let poc_prime = if args.minimize {
                let shared_ids = t.resolve_names(args.shared.iter().map(String::as_str));
                let (min, stats) =
                    octopocs::minimize_poc(&t, poc_prime, &shared_ids, octo_vm::Limits::default());
                if !args.json {
                    println!(
                        "minimized  : {} -> {} bytes ({} zeroed, {} execs)",
                        stats.len_before, stats.len_after, stats.bytes_zeroed, stats.execs
                    );
                }
                min
            } else {
                poc_prime.clone()
            };
            let poc_prime = &poc_prime;
            if let Some(out) = &args.out {
                if let Err(e) = std::fs::write(out, poc_prime.bytes()) {
                    eprintln!("error writing {out}: {e}");
                    return ExitCode::from(3);
                }
                if !args.json {
                    println!("poc' written to {out} ({} bytes)", poc_prime.len());
                }
            } else if !args.json {
                println!("poc' hexdump:\n{}", poc_prime.hexdump());
            }
            ExitCode::SUCCESS
        }
        Verdict::NotTriggerable { .. } => ExitCode::from(1),
        Verdict::Failure { .. } => ExitCode::from(2),
    }
}
