//! `octopocsd` — the long-running OctoPoCs verification daemon.
//!
//! ```text
//! octopocsd [--socket PATH] [--tcp ADDR] [--http ADDR] [--journal PATH]
//!           [--workers N] [--capacity N] [--deadline-secs S]
//!           [--retry N] [--retry-backoff-ms MS] [--watchdog-quiet-secs S]
//!           [--fault-plan FILE] [--theta N] [--accelerate-loops]
//!           [--static-cfg] [--context-free] [--prescreen]
//!           [--metrics-json PATH]
//! ```
//!
//! The daemon listens on a Unix socket (default `octopocsd.sock`, plus
//! an optional TCP address), accepts line-delimited JSON requests (see
//! `docs/service.md`), and runs every admitted `(S, T, poc, ℓ)` job on
//! the shared batch runtime — artifact cache, metrics registry, retry
//! policy, watchdog, and fault plan all behave exactly as they do under
//! `octopocs batch`. Jobs are journaled to `--journal` (default
//! `octopocsd.journal`) before they are enqueued and their verdicts
//! journaled on completion, so killing the daemon mid-batch and
//! restarting it on the same journal resubmits the incomplete jobs
//! under their original ids and converges to the same verdicts.
//!
//! Admission is bounded: at most `--capacity` jobs may wait (running
//! jobs do not count), and a submission over the bound is answered with
//! an explicit `rejected` line — the daemon never blocks a client on a
//! full queue. Interactive-priority jobs are always dequeued ahead of
//! bulk jobs.
//!
//! With `--http ADDR` the daemon additionally serves octo-scope, the
//! read-only HTTP observability plane (`/healthz`, `/metrics`,
//! `/metrics/rates`, `/jobs`, `/jobs/<id>` — see
//! `docs/observability.md`), and a sampler thread snapshots the metrics
//! registry once a second into a 64-window rate ring.
//!
//! Lifecycle: a `drain` request stops admissions, finishes the queue,
//! and exits; a `shutdown` request (or SIGINT/SIGTERM) also cancels
//! in-flight jobs cooperatively — they come back as incomplete, not as
//! verdicts. A second signal force-exits with status 130. On a clean
//! exit the daemon writes `--metrics-json` (when given) and removes the
//! socket file. Exit code 0 = clean drain/shutdown via the protocol,
//! 130 = exit forced or initiated by a signal, 3 = usage or startup
//! error.

use std::process::ExitCode;
use std::sync::Arc;

use octo_sched::{drain_signal_count, install_drain_signals, CancelToken};
use octo_serve::{serve, Daemon, Journal, ServerConfig};
use octopocs::batch::BatchOptions;
use octopocs::{PipelineConfig, ServeExecutor};

fn usage() -> String {
    "usage: octopocsd [--socket PATH] [--tcp ADDR] [--http ADDR] [--journal PATH] \
     [--cache-dir DIR] [--workers N] \
     [--capacity N] [--deadline-secs S] [--retry N] [--retry-backoff-ms MS] \
     [--watchdog-quiet-secs S] [--fault-plan FILE] [--theta N] [--accelerate-loops] \
     [--static-cfg] [--context-free] [--prescreen] [--metrics-json PATH]"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut socket = std::path::PathBuf::from("octopocsd.sock");
    let mut tcp: Option<String> = None;
    let mut http: Option<String> = None;
    let mut journal_path = std::path::PathBuf::from("octopocsd.journal");
    let mut capacity: usize = 64;
    let mut options = BatchOptions::default();
    let mut config = PipelineConfig::default();
    let mut metrics_json: Option<String> = None;
    let mut it = argv.iter();
    let parse_error = |msg: String| {
        if msg.is_empty() {
            eprintln!("{}", usage());
        } else {
            eprintln!("{msg}\n{}", usage());
        }
        ExitCode::from(3)
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--socket" => socket = value("--socket")?.into(),
                "--tcp" => tcp = Some(value("--tcp")?),
                "--http" => http = Some(value("--http")?),
                "--journal" => journal_path = value("--journal")?.into(),
                "--cache-dir" => {
                    options.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?))
                }
                "--capacity" => {
                    capacity = value("--capacity")?
                        .parse()
                        .map_err(|e| format!("bad --capacity: {e}"))?;
                    if capacity == 0 {
                        return Err("--capacity must be at least 1".to_string());
                    }
                }
                "--workers" => {
                    options.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?;
                    if options.workers == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                }
                "--deadline-secs" => {
                    let secs: f64 = value("--deadline-secs")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-secs: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--deadline-secs must be positive".to_string());
                    }
                    options.deadline = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--retry" => {
                    options.retry.max_attempts = value("--retry")?
                        .parse()
                        .map_err(|e| format!("bad --retry: {e}"))?;
                    if options.retry.max_attempts == 0 {
                        return Err("--retry must be at least 1".to_string());
                    }
                }
                "--retry-backoff-ms" => {
                    let ms: u64 = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|e| format!("bad --retry-backoff-ms: {e}"))?;
                    if ms == 0 {
                        return Err(
                            "--retry-backoff-ms must be positive (omit the flag for no backoff)"
                                .to_string(),
                        );
                    }
                    options.retry.base_backoff = std::time::Duration::from_millis(ms);
                }
                "--watchdog-quiet-secs" => {
                    let secs: f64 = value("--watchdog-quiet-secs")?
                        .parse()
                        .map_err(|e| format!("bad --watchdog-quiet-secs: {e}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("--watchdog-quiet-secs must be positive".to_string());
                    }
                    options.watchdog = Some(octopocs::WatchdogConfig::with_quiet(
                        std::time::Duration::from_secs_f64(secs),
                    ));
                }
                "--fault-plan" => {
                    let path = value("--fault-plan")?;
                    let text =
                        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                    let plan = octopocs::FaultPlan::parse_json(&text)
                        .map_err(|e| format!("{path}: {e}"))?;
                    options.faults = Some(Arc::new(plan));
                }
                "--theta" => {
                    config.theta = value("--theta")?
                        .parse()
                        .map_err(|e| format!("bad --theta: {e}"))?
                }
                "--accelerate-loops" => config.loop_acceleration = true,
                "--static-cfg" => config.cfg_mode = octo_cfg::CfgMode::Static,
                "--context-free" => config.taint_context = octo_taint::ContextMode::ContextFree,
                "--prescreen" => config.static_prescreen = true,
                "--metrics-json" => metrics_json = Some(value("--metrics-json")?),
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown octopocsd flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return parse_error(msg);
        }
    }

    // The run-level drain token: SIGINT/SIGTERM fire it (the second
    // signal force-exits), a `shutdown` request fires it through the
    // executor. Every in-flight job's token is derived from it.
    let drain = CancelToken::new();
    options.cancel = Some(drain.clone());
    install_drain_signals(&drain);

    let (journal, replay) = match Journal::open(&journal_path) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("octopocsd: {e}");
            return ExitCode::from(3);
        }
    };
    let replayed = replay.incomplete().len();
    let restored = replay.verdicts.len();

    let executor = Arc::new(ServeExecutor::new(&config, &options));
    let daemon = Daemon::new(executor.clone(), Some(journal), capacity);
    daemon.restore(replay);
    if replayed > 0 || restored > 0 {
        eprintln!(
            "octopocsd: journal {}: {restored} finished job(s) restored, \
             {replayed} incomplete job(s) resubmitted",
            journal_path.display()
        );
    }
    let workers = daemon.start_workers(options.workers);
    eprintln!(
        "octopocsd: listening on {}{} ({} worker(s), capacity {capacity})",
        socket.display(),
        tcp.as_deref()
            .map(|a| format!(" and tcp {a}"))
            .unwrap_or_default(),
        options.workers
    );

    // octo-scope: the HTTP observability plane plus its rate sampler.
    // Both threads stop on drain or daemon completion and are detached —
    // they hold only Arcs and never touch the JSON-protocol listeners.
    if let Some(addr) = &http {
        let listener = match octo_serve::bind_http(addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("octopocsd: {e}");
                return ExitCode::from(3);
            }
        };
        let bound = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        eprintln!("octopocsd: observability plane on http://{bound}");
        let rates = Arc::new(octo_obs::RateRecorder::new(64));
        {
            let rates = Arc::clone(&rates);
            let executor = Arc::clone(&executor);
            let stop = drain.clone();
            let daemon = daemon.clone();
            std::thread::spawn(move || {
                let started = std::time::Instant::now();
                while !stop.is_cancelled() && !daemon.finished() {
                    executor.sample_rates(&rates, started.elapsed().as_micros() as u64);
                    // Sub-second sleeps so shutdown is prompt.
                    for _ in 0..10 {
                        if stop.is_cancelled() || daemon.finished() {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                }
            });
        }
        {
            let stop = drain.clone();
            let daemon = daemon.clone();
            std::thread::spawn(move || {
                octo_serve::serve_http(&daemon, Some(rates), listener, &stop);
            });
        }
    }

    let server_config = ServerConfig {
        socket: socket.clone(),
        tcp,
    };
    if let Err(e) = serve(&daemon, &server_config, &drain) {
        eprintln!("octopocsd: {e}");
        return ExitCode::from(3);
    }
    for handle in workers {
        let _ = handle.join();
    }
    // Journal hygiene: an orderly exit rewrites the journal down to
    // the jobs a restart would resubmit, so a long-lived daemon's
    // journal does not grow without bound across restarts.
    match daemon.compact_journal() {
        Some(Ok(kept)) => eprintln!(
            "octopocsd: journal {} compacted ({kept} incomplete job(s) kept)",
            journal_path.display()
        ),
        Some(Err(e)) => eprintln!("octopocsd: {e}"),
        None => {}
    }
    for error in executor.conversion_errors() {
        eprintln!("octopocsd: {error}");
    }
    if let Some(path) = metrics_json {
        if let Err(e) = std::fs::write(&path, daemon.metrics_json()) {
            eprintln!("octopocsd: error writing {path}: {e}");
        }
    }
    let status = daemon.status();
    eprintln!(
        "octopocsd: exiting ({} job(s) done, {} left for replay)",
        status.done,
        status.queued_interactive + status.queued_bulk + status.running
    );
    if drain_signal_count() > 0 {
        ExitCode::from(130)
    } else {
        ExitCode::SUCCESS
    }
}
