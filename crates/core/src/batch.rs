//! Batch verification: the §VII triage workload made operational.
//!
//! One vulnerable source `S` typically fans out to many propagated
//! targets `T₁…Tₙ` (every VUDDY/TransferFuzz-style report has this
//! shape). [`run_batch`] runs a whole job set through the pipeline on a
//! work-stealing scheduler ([`octo_sched::run_jobs`]) with:
//!
//! * a **content-addressed artifact cache** for the pipeline prefix
//!   ([`crate::pipeline::prepare`]): jobs sharing
//!   `(S, poc, ℓ, taint/vm config)` pay for preprocessing and P1 taint
//!   extraction exactly once (single-flight), with hit/miss/byte stats;
//! * a **per-job deadline** delivered as a cooperative
//!   [`octo_sched::CancelToken`] into the directed engine, so a runaway
//!   symbolic-execution job yields a
//!   [`crate::verdict::FailureReason::Deadline`] verdict
//!   instead of stalling the batch;
//! * a **structured progress-event stream** (job started / phase
//!   finished / cache hit / job done, with per-phase wall times),
//!   consumable as human log lines or JSON lines via any
//!   [`octo_sched::EventSink`].
//!
//! Results come back in submission order regardless of worker count, so
//! batch output is deterministic and diffable (the CI golden file relies
//! on this).

use std::time::{Duration, Instant};

use octo_ir::printer::print_program;
use octo_ir::Program;
use octo_poc::PocFile;
use octo_sched::{
    run_jobs, ArtifactCache, CacheStats, CancelToken, Event, EventSink, KeyHasher, SchedStats,
};

use crate::config::PipelineConfig;
use crate::pipeline::{
    prepare, verify_prepared, PrepareFailure, PreparedSource, SoftwarePairInput, VerificationReport,
};
use crate::portfolio::Urgency;

/// One owned batch job (the borrowing [`crate::portfolio::Job`] is for
/// in-process callers; batch jobs own their programs so they can be
/// loaded from files or the corpus and shipped across worker threads).
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (e.g. `"idx10 CVE-2016-10095 tiffsplit->opj_compress"`).
    pub name: String,
    /// The original vulnerable software.
    pub s: Program,
    /// The propagated software.
    pub t: Program,
    /// The original PoC (crashes `S`).
    pub poc: PocFile,
    /// Names of the shared (cloned) functions.
    pub shared: Vec<String>,
}

/// Knobs for one batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (clamped to the job count; at least 1).
    pub workers: usize,
    /// Per-job wall-clock deadline for the pipeline suffix. `None` means
    /// jobs are bounded only by the engines' own step budgets.
    pub deadline: Option<Duration>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            deadline: None,
        }
    }
}

/// The content-address of a job's cacheable prefix.
///
/// Everything [`prepare`] reads is hashed: the *printed form* of `S`
/// (content, not identity), the PoC bytes, the shared set in order, and
/// the taint/VM configuration. Changing any ingredient changes the key;
/// `T` deliberately does not participate.
pub fn prefix_cache_key(
    s: &Program,
    poc: &PocFile,
    shared: &[String],
    config: &PipelineConfig,
) -> u64 {
    let mut h = KeyHasher::new();
    h.write_field(print_program(s).as_bytes());
    h.write_field(poc.bytes());
    h.write_u64(shared.len() as u64);
    for name in shared {
        h.write_field(name.as_bytes());
    }
    h.write_u64(config.taint_granularity as u64);
    h.write_u64(config.taint_context as u64);
    h.write_u64(config.vm_limits.max_insts);
    h.write_u64(config.vm_limits.max_call_depth as u64);
    h.finish()
}

/// One verified batch entry, in submission order.
#[derive(Debug)]
pub struct BatchEntry {
    /// Job name.
    pub name: String,
    /// Patch-urgency bucket of the verdict.
    pub urgency: Urgency,
    /// Whether the pipeline prefix came from the artifact cache.
    pub cache_hit: bool,
    /// The full verification report (`wall_seconds` covers the whole job
    /// as this batch executed it, cached prefix included).
    pub report: VerificationReport,
}

/// Everything a batch run produced.
#[derive(Debug)]
pub struct BatchReport {
    /// Entries in submission order.
    pub entries: Vec<BatchEntry>,
    /// Artifact-cache statistics.
    pub cache: CacheStats,
    /// Scheduler statistics.
    pub sched: SchedStats,
    /// Total wall-clock seconds for the batch.
    pub wall_seconds: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BatchReport {
    /// Entries re-ordered most-urgent-first (stable within a bucket).
    pub fn by_urgency(&self) -> Vec<&BatchEntry> {
        let mut refs: Vec<&BatchEntry> = self.entries.iter().collect();
        refs.sort_by_key(|e| e.urgency);
        refs
    }

    /// Human-readable run summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.by_urgency().into_iter().enumerate() {
            out.push_str(&format!(
                "{:>2}. {:<44} {:<9} {:<6} {:>8.3}s — {}\n",
                i + 1,
                e.name,
                e.report.verdict.type_label(),
                if e.cache_hit { "cached" } else { "" },
                e.report.wall_seconds,
                e.urgency.recommendation()
            ));
        }
        out.push_str(&format!(
            "cache: {} hits / {} misses ({} artifacts, {} bytes)\n",
            self.cache.hits, self.cache.misses, self.cache.entries, self.cache.bytes
        ));
        out.push_str(&format!(
            "sched: {} workers, {} steals ({} jobs moved), {:.3}s wall\n",
            self.sched.workers, self.sched.steals, self.sched.jobs_stolen, self.wall_seconds
        ));
        out
    }

    /// The full machine-readable report (includes timings, cache and
    /// scheduler statistics; **not** run-to-run stable).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{},\
                 \"urgency\":\"{}\",\"cache_hit\":{},\"prescreen\":{},\"wall_seconds\":{:.6}}}{}\n",
                json_escape(&e.name),
                e.report.verdict.type_label(),
                e.report.verdict.poc_generated(),
                e.report.verdict.verified(),
                e.urgency.recommendation(),
                e.cache_hit,
                e.report.prescreen,
                e.report.wall_seconds,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "],\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"bytes\":{}}},\
             \"sched\":{{\"workers\":{},\"steals\":{},\"jobs_stolen\":{}}},\
             \"wall_seconds\":{:.6}}}",
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            self.cache.bytes,
            self.sched.workers,
            self.sched.steals,
            self.sched.jobs_stolen,
            self.wall_seconds
        ));
        out
    }

    /// The *stable* machine-readable verdict list: submission order, no
    /// timings, no environment-dependent fields. This is what the CI
    /// golden file diffs against.
    pub fn render_verdicts_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{}}}{}\n",
                json_escape(&e.name),
                e.report.verdict.type_label(),
                e.report.verdict.poc_generated(),
                e.report.verdict.verified(),
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Size estimate for one cached prefix artifact.
pub(crate) fn prep_artifact_bytes(artifact: &Result<PreparedSource, PrepareFailure>) -> u64 {
    match artifact {
        Ok(p) => p.approx_bytes(),
        Err(_) => std::mem::size_of::<PrepareFailure>() as u64,
    }
}

/// Runs one job against the shared prefix cache. Used by both
/// [`run_batch`] and [`crate::portfolio::verify_portfolio`].
pub(crate) fn verify_with_cache(
    cache: &ArtifactCache<Result<PreparedSource, PrepareFailure>>,
    input: &SoftwarePairInput<'_>,
    config: &PipelineConfig,
    cancel: Option<&CancelToken>,
) -> (VerificationReport, bool, u64) {
    let start = Instant::now();
    let key = prefix_cache_key(input.s, input.poc, input.shared, config);
    let (prep, hit) = cache.get_or_compute(key, || {
        let artifact = prepare(input.s, input.poc, input.shared, config);
        let bytes = prep_artifact_bytes(&artifact);
        (artifact, bytes)
    });
    let mut report = match prep.as_ref() {
        Ok(p) => verify_prepared(p, input, config, cancel),
        Err(fail) => fail.to_report(),
    };
    // Bill the whole job (prefix, cached or not, plus suffix) to one
    // clock, matching the sequential `verify` semantics.
    report.wall_seconds = start.elapsed().as_secs_f64();
    (report, hit, key)
}

/// Verifies every job on the work-stealing scheduler and returns the
/// entries **in submission order** together with cache and scheduler
/// statistics. Progress is streamed into `sink` as it happens.
pub fn run_batch(
    jobs: &[BatchJob],
    config: &PipelineConfig,
    options: &BatchOptions,
    sink: &dyn EventSink,
) -> BatchReport {
    let start = Instant::now();
    let cache: ArtifactCache<Result<PreparedSource, PrepareFailure>> = ArtifactCache::new();
    let indices: Vec<usize> = (0..jobs.len()).collect();

    let (entries, sched) = run_jobs(indices, options.workers, |_worker, i| {
        let job = &jobs[i];
        let job_start = Instant::now();
        sink.emit(Event::JobStarted {
            job: i,
            name: job.name.clone(),
        });
        let input = SoftwarePairInput {
            s: &job.s,
            t: &job.t,
            poc: &job.poc,
            shared: &job.shared,
        };
        let prefix_start = Instant::now();
        let token = options.deadline.map(CancelToken::with_deadline);
        let (report, cache_hit, key) = verify_with_cache(&cache, &input, config, token.as_ref());
        if cache_hit {
            sink.emit(Event::CacheHit { job: i, key });
        } else {
            sink.emit(Event::PhaseFinished {
                job: i,
                phase: "prepare",
                seconds: prefix_start.elapsed().as_secs_f64(),
            });
        }
        if let Some(stats) = &report.symex_stats {
            sink.emit(Event::PhaseFinished {
                job: i,
                phase: "symex",
                seconds: stats.wall_seconds,
            });
        }
        sink.emit(Event::JobFinished {
            job: i,
            outcome: report.verdict.type_label().to_string(),
            seconds: job_start.elapsed().as_secs_f64(),
        });
        BatchEntry {
            name: job.name.clone(),
            urgency: Urgency::of(&report.verdict),
            cache_hit,
            report,
        }
    });

    BatchReport {
        entries,
        cache: cache.stats(),
        sched,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_sched::{EventLog, NullSink};
    use octo_vm::Limits;

    const SHARED: &str = r#"
func shared(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn s_program() -> Program {
        parse_program(&format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        ))
        .unwrap()
    }

    fn t_gated() -> Program {
        parse_program(&format!(
            "func main() {{\nentry:\n fd = open\n m = getc fd\n ok = eq m, 0x99\n \
             br ok, go, rej\ngo:\n b = getc fd\n call shared(b)\n halt 0\nrej:\n \
             halt 1\n}}\n{SHARED}"
        ))
        .unwrap()
    }

    fn t_safe() -> Program {
        parse_program(&format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}")).unwrap()
    }

    fn job(name: &str, t: Program) -> BatchJob {
        BatchJob {
            name: name.to_string(),
            s: s_program(),
            t,
            poc: PocFile::from(&b"A"[..]),
            shared: vec!["shared".to_string()],
        }
    }

    #[test]
    fn cache_key_depends_on_every_ingredient() {
        let config = PipelineConfig::default();
        let s = s_program();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let base = prefix_cache_key(&s, &poc, &shared, &config);

        // Same inputs → same key (content addressing, not identity).
        assert_eq!(
            base,
            prefix_cache_key(&s_program(), &PocFile::from(&b"A"[..]), &shared, &config)
        );
        // Different S.
        assert_ne!(base, prefix_cache_key(&t_safe(), &poc, &shared, &config));
        // Different poc.
        assert_ne!(
            base,
            prefix_cache_key(&s, &PocFile::from(&b"B"[..]), &shared, &config)
        );
        // Different shared set.
        assert_ne!(
            base,
            prefix_cache_key(&s, &poc, &["other".to_string()], &config)
        );
        // Different taint config (context mode, granularity).
        assert_ne!(
            base,
            prefix_cache_key(&s, &poc, &shared, &config.clone().context_free())
        );
        let coarse = PipelineConfig {
            taint_granularity: octo_taint::Granularity::Word,
            ..PipelineConfig::default()
        };
        assert_ne!(base, prefix_cache_key(&s, &poc, &shared, &coarse));
        // Different VM limits.
        let tight = PipelineConfig {
            vm_limits: Limits {
                max_insts: 1_000,
                ..Limits::default()
            },
            ..PipelineConfig::default()
        };
        assert_ne!(base, prefix_cache_key(&s, &poc, &shared, &tight));
    }

    #[test]
    fn shared_source_pays_prepare_once() {
        // Two targets cloned from one (S, poc): one prepare, one hit.
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let report = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert_eq!(report.cache.misses, 1, "P1 must run exactly once");
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.entries, 1);
        assert!(report.cache.bytes > 0);
        assert_eq!(report.entries.iter().filter(|e| e.cache_hit).count(), 1);
        // Both entries carry identical P1 statistics (same artifact).
        assert_eq!(
            report.entries[0].report.p1_insts,
            report.entries[1].report.p1_insts
        );
        assert!(report.entries[0].report.p1_insts > 0);
        // Verdicts in submission order.
        assert_eq!(report.entries[0].report.verdict.type_label(), "Type-II");
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-III");
    }

    #[test]
    fn distinct_configs_do_not_share_artifacts() {
        // The same pair under a different taint config must miss again.
        let jobs = vec![job("a", t_gated())];
        let cache_aware = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert_eq!(cache_aware.cache.misses, 1);
        let free = PipelineConfig::default().context_free();
        let cache_free = run_batch(&jobs, &free, &BatchOptions::default(), &NullSink);
        assert_eq!(
            cache_free.cache.misses, 1,
            "fresh cache, fresh config, fresh miss"
        );
    }

    #[test]
    fn batch_verdicts_match_sequential_verify() {
        let jobs = vec![
            job("gated", t_gated()),
            job("safe", t_safe()),
            job("same", s_program()),
        ];
        let config = PipelineConfig::default();
        let batch = run_batch(
            &jobs,
            &config,
            &BatchOptions {
                workers: 3,
                deadline: None,
            },
            &NullSink,
        );
        for (entry, job) in batch.entries.iter().zip(jobs.iter()) {
            let input = SoftwarePairInput {
                s: &job.s,
                t: &job.t,
                poc: &job.poc,
                shared: &job.shared,
            };
            let sequential = crate::pipeline::verify(&input, &config);
            assert_eq!(
                entry.report.verdict.type_label(),
                sequential.verdict.type_label(),
                "{}",
                job.name
            );
        }
    }

    #[test]
    fn event_stream_covers_the_lifecycle() {
        let jobs = vec![job("one", t_gated()), job("two", t_gated())];
        let log = EventLog::new();
        run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions {
                workers: 1,
                deadline: None,
            },
            &log,
        );
        let events = log.snapshot();
        let count = |f: &dyn Fn(&Event) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(count(&|e| matches!(e, Event::JobStarted { .. })), 2);
        assert_eq!(count(&|e| matches!(e, Event::JobFinished { .. })), 2);
        assert_eq!(count(&|e| matches!(e, Event::CacheHit { .. })), 1);
        assert!(
            count(&|e| matches!(
                e,
                Event::PhaseFinished {
                    phase: "prepare",
                    ..
                }
            )) == 1
        );
        assert!(count(&|e| matches!(e, Event::PhaseFinished { phase: "symex", .. })) >= 1);
        // Every event renders both ways.
        for e in &events {
            assert!(!e.render_human().is_empty());
            assert!(e.render_json().starts_with('{'));
        }
    }

    #[test]
    fn renderers_are_consistent() {
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let report = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        let human = report.render_human();
        assert!(human.contains("Type-II"), "{human}");
        assert!(human.contains("cache: 1 hits / 1 misses"), "{human}");
        let json = report.render_json();
        assert!(json.contains("\"cache_hit\":true"), "{json}");
        let stable = report.render_verdicts_json();
        assert!(
            stable.contains("\"name\":\"gated\",\"verdict\":\"Type-II\""),
            "{stable}"
        );
        assert!(
            !stable.contains("wall_seconds"),
            "stable output must not carry timings"
        );
        // Urgency ordering puts the triggered clone first.
        let ordered = report.by_urgency();
        assert_eq!(ordered[0].name, "gated");
    }

    #[test]
    fn per_job_deadline_fails_fast_without_stalling() {
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let options = BatchOptions {
            workers: 2,
            deadline: Some(Duration::ZERO),
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        // The symex-bound job dies on the deadline…
        assert_eq!(report.entries[0].report.verdict.type_label(), "Failure");
        assert!(matches!(
            report.entries[0].report.verdict,
            crate::verdict::Verdict::Failure {
                reason: crate::verdict::FailureReason::Deadline
            }
        ));
        // …but jobs decided before symex are unaffected.
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-III");
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(
            &[],
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert!(report.entries.is_empty());
        assert_eq!(report.cache.misses, 0);
    }
}
