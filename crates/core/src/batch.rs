//! Batch verification: the §VII triage workload made operational.
//!
//! One vulnerable source `S` typically fans out to many propagated
//! targets `T₁…Tₙ` (every VUDDY/TransferFuzz-style report has this
//! shape). [`run_batch`] runs a whole job set through the pipeline on a
//! work-stealing scheduler ([`octo_sched::run_jobs`]) with:
//!
//! * a **content-addressed artifact cache** for the pipeline prefix
//!   ([`crate::pipeline::prepare`]): jobs sharing
//!   `(S, poc, ℓ, taint/vm config)` pay for preprocessing and P1 taint
//!   extraction exactly once (single-flight), with hit/miss/byte stats;
//! * a **per-job deadline** delivered as a cooperative
//!   [`octo_sched::CancelToken`] into the directed engine, so a runaway
//!   symbolic-execution job yields a
//!   [`crate::verdict::FailureReason::Deadline`] verdict
//!   instead of stalling the batch;
//! * a **structured progress-event stream** (job started / phase
//!   finished / cache hit / job done, with per-phase wall times),
//!   consumable as human log lines or JSON lines via any
//!   [`octo_sched::EventSink`].
//!
//! Results come back in submission order regardless of worker count, so
//! batch output is deterministic and diffable (the CI golden file relies
//! on this).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use octo_faults::{FaultPlan, JobFaults, RetryPolicy};
use octo_ir::printer::print_program;
use octo_ir::Program;
use octo_obs::{Counter, Gauge, Histogram, MetricsRegistry, Span, SpanObserver};
use octo_poc::PocFile;
use octo_sched::{
    run_jobs, ArtifactCache, CacheStats, CancelToken, Event, EventClock, EventKind, EventSink,
    KeyHasher, SchedStats, Watchdog, WatchdogConfig,
};
use octo_store::{BlobStore, StoreStats};
use octo_trace::{FlightRecorder, TraceKind};

use crate::blob;
use crate::config::PipelineConfig;
use crate::pipeline::{
    prepare, verify_prepared_observed, PrepareFailure, PreparedSource, SoftwarePairInput,
    VerificationReport,
};
use crate::portfolio::Urgency;

/// One owned batch job (the borrowing [`crate::portfolio::Job`] is for
/// in-process callers; batch jobs own their programs so they can be
/// loaded from files or the corpus and shipped across worker threads).
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (e.g. `"idx10 CVE-2016-10095 tiffsplit->opj_compress"`).
    pub name: String,
    /// The original vulnerable software.
    pub s: Program,
    /// The propagated software.
    pub t: Program,
    /// The original PoC (crashes `S`).
    pub poc: PocFile,
    /// Names of the shared (cloned) functions.
    pub shared: Vec<String>,
}

/// Knobs for one batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (clamped to the job count; at least 1).
    pub workers: usize,
    /// Per-job wall-clock deadline for the pipeline suffix. `None` means
    /// jobs are bounded only by the engines' own step budgets.
    pub deadline: Option<Duration>,
    /// Flight recorder for the run. When set, every worker installs it
    /// for the duration of each job (tagged with the job's submission
    /// index and the worker id), so the engines' [`octo_trace`] events
    /// land in one ring; render with [`octo_trace::chrome::render_chrome`]
    /// or per-event JSON lines. `None` keeps tracing a no-op.
    pub trace: Option<Arc<FlightRecorder>>,
    /// Retry policy for transient failures (deadline, hung, panic,
    /// injected fault). The default attempts each job exactly once —
    /// identical to the pre-retry behavior.
    pub retry: RetryPolicy,
    /// Deterministic fault plan. When set, every job attempt runs with an
    /// installed [`octo_faults`] context keyed by the job's submission
    /// index, so the plan's injections replay byte-for-byte across runs
    /// and worker counts. `None` keeps every fault site inert.
    pub faults: Option<Arc<FaultPlan>>,
    /// Watchdog configuration. When set, a monitor thread observes every
    /// attempt's heartbeat (the directed engine beats its cancel token at
    /// a fixed step cadence) and escalates a silent job to its token
    /// before the global deadline, yielding
    /// [`crate::verdict::FailureReason::Hung`].
    pub watchdog: Option<WatchdogConfig>,
    /// Run-level drain token. When set, every attempt's per-job token is
    /// derived from it via [`CancelToken::child`], so firing this one
    /// token (Ctrl-C, a service `drain`/`shutdown` request) winds down
    /// every in-flight job cooperatively. Jobs cut short this way come
    /// back as [`crate::verdict::FailureReason::Cancelled`] — never
    /// retried, never quarantined — and jobs not yet started are skipped
    /// outright. `None` (the default) keeps batches un-drainable, the
    /// pre-existing behavior.
    pub cancel: Option<CancelToken>,
    /// Root directory of the disk artifact cache ([`octo_store`]). When
    /// set, prepared prefixes are written through to a crash-safe blob
    /// store so later runs (and daemon restarts) warm-start; corruption
    /// quarantines and recomputes, I/O failure degrades to memory-only.
    /// `None` (the default) keeps caching purely in-memory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            deadline: None,
            trace: None,
            retry: RetryPolicy::default(),
            faults: None,
            watchdog: None,
            cancel: None,
            cache_dir: None,
        }
    }
}

/// The content-address of a job's cacheable prefix.
///
/// Everything [`prepare`] reads is hashed: the *printed form* of `S`
/// (content, not identity), the PoC bytes, the shared set in order, and
/// the taint/VM configuration. Changing any ingredient changes the key;
/// `T` deliberately does not participate.
pub fn prefix_cache_key(
    s: &Program,
    poc: &PocFile,
    shared: &[String],
    config: &PipelineConfig,
) -> u64 {
    let mut h = KeyHasher::new();
    h.write_field(print_program(s).as_bytes());
    h.write_field(poc.bytes());
    h.write_u64(shared.len() as u64);
    for name in shared {
        h.write_field(name.as_bytes());
    }
    h.write_u64(config.taint_granularity as u64);
    h.write_u64(config.taint_context as u64);
    h.write_u64(config.vm_limits.max_insts);
    h.write_u64(config.vm_limits.max_call_depth as u64);
    h.finish()
}

/// One verified batch entry, in submission order.
#[derive(Debug)]
pub struct BatchEntry {
    /// Job name.
    pub name: String,
    /// Patch-urgency bucket of the verdict.
    pub urgency: Urgency,
    /// Whether the pipeline prefix came from the artifact cache.
    pub cache_hit: bool,
    /// Whether the job ended quarantined: its final attempt still failed
    /// transiently (deadline, hung, panic, injected fault), so the
    /// degraded verdict is preserved but flagged as unreliable.
    pub quarantined: bool,
    /// The full verification report (`wall_seconds` covers the whole job
    /// as this batch executed it, cached prefix included).
    pub report: VerificationReport,
}

/// Everything a batch run produced.
#[derive(Debug)]
pub struct BatchReport {
    /// Entries in submission order.
    pub entries: Vec<BatchEntry>,
    /// Submission indices of quarantined entries (ascending). A
    /// quarantined job exhausted its retry budget on transient failures;
    /// its entry is still present with the last attempt's verdict.
    pub quarantined: Vec<usize>,
    /// Artifact-cache statistics.
    pub cache: CacheStats,
    /// Disk blob-store statistics, when `--cache-dir` configured one.
    pub disk: Option<StoreStats>,
    /// Scheduler statistics.
    pub sched: SchedStats,
    /// Every metric the run recorded (see `docs/observability.md`);
    /// renderable as JSON or Prometheus text via
    /// [`MetricsRegistry::render_json`] /
    /// [`MetricsRegistry::render_prometheus`].
    pub metrics: MetricsRegistry,
    /// Total wall-clock seconds for the batch.
    pub wall_seconds: f64,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BatchReport {
    /// Entries re-ordered most-urgent-first (stable within a bucket).
    pub fn by_urgency(&self) -> Vec<&BatchEntry> {
        let mut refs: Vec<&BatchEntry> = self.entries.iter().collect();
        refs.sort_by_key(|e| e.urgency);
        refs
    }

    /// Human-readable run summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.by_urgency().into_iter().enumerate() {
            out.push_str(&format!(
                "{:>2}. {:<44} {:<9} {:<6} {:>8.3}s — {}\n",
                i + 1,
                e.name,
                e.report.verdict.type_label(),
                if e.cache_hit { "cached" } else { "" },
                e.report.wall_seconds,
                e.urgency.recommendation()
            ));
        }
        out.push_str("phases (seconds):\n");
        out.push_str(&format!(
            "    {:<44} {:>9} {:>9} {:>9}\n",
            "job", "prepare", "symex", "p4"
        ));
        for e in &self.entries {
            let symex = e
                .report
                .symex_stats
                .as_ref()
                .map(|s| format!("{:.3}", s.wall_seconds))
                .unwrap_or_else(|| "-".to_string());
            let p4 = if e.report.p4_insts > 0 {
                format!("{:.3}", e.report.p4_seconds)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "    {:<44} {:>9.3} {:>9} {:>9}\n",
                e.name, e.report.prepare_seconds, symex, p4
            ));
        }
        out.push_str(&format!(
            "cache: {} hits / {} misses ({} artifacts, {} bytes)\n",
            self.cache.hits, self.cache.misses, self.cache.entries, self.cache.bytes
        ));
        if let Some(disk) = &self.disk {
            out.push_str(&format!(
                "disk cache: {} hits / {} misses, {} writes, {} corrupt, {} quarantined, \
                 {} entries (generation {}){}\n",
                disk.hits,
                disk.misses,
                disk.writes,
                disk.corrupt,
                disk.quarantined,
                disk.entries,
                disk.generation,
                if disk.degraded {
                    " — DEGRADED to memory-only"
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!(
            "sched: {} workers, {} steals ({} jobs moved), {:.3}s wall\n",
            self.sched.workers, self.sched.steals, self.sched.jobs_stolen, self.wall_seconds
        ));
        if !self.quarantined.is_empty() {
            let names: Vec<&str> = self
                .quarantined
                .iter()
                .map(|&i| self.entries[i].name.as_str())
                .collect();
            out.push_str(&format!(
                "quarantined ({}): {}\n",
                names.len(),
                names.join(", ")
            ));
        }
        out
    }

    /// The full machine-readable report (includes timings, cache and
    /// scheduler statistics; **not** run-to-run stable).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            let symex_seconds = e
                .report
                .symex_stats
                .as_ref()
                .map(|s| format!("{:.6}", s.wall_seconds))
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{},\
                 \"urgency\":\"{}\",\"cache_hit\":{},\"prescreen\":{},\
                 \"attempts\":{},\"quarantined\":{},\
                 \"prepare_seconds\":{:.6},\"symex_seconds\":{},\"p4_seconds\":{:.6},\
                 \"wall_seconds\":{:.6}}}{}\n",
                json_escape(&e.name),
                e.report.verdict.type_label(),
                e.report.verdict.poc_generated(),
                e.report.verdict.verified(),
                e.urgency.recommendation(),
                e.cache_hit,
                e.report.prescreen,
                e.report.attempts,
                e.quarantined,
                e.report.prepare_seconds,
                symex_seconds,
                e.report.p4_seconds,
                e.report.wall_seconds,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        let quarantined: Vec<String> = self.quarantined.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "],\"quarantined\":[{}],\
             \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"bytes\":{}}},\
             \"sched\":{{\"workers\":{},\"steals\":{},\"jobs_stolen\":{}}},\
             \"wall_seconds\":{:.6}}}",
            quarantined.join(","),
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            self.cache.bytes,
            self.sched.workers,
            self.sched.steals,
            self.sched.jobs_stolen,
            self.wall_seconds
        ));
        out
    }

    /// Human-readable post-mortems for every entry that carries one
    /// (not-triggerable, loop-budget, and deadline verdicts — see
    /// [`crate::verdict::Verdict::post_mortem_event`]), in submission
    /// order. Empty when no job warranted one.
    pub fn render_post_mortems(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if let Some(pm) = &e.report.post_mortem {
                out.push_str(&format!("{}:\n", e.name));
                for line in pm.render_human().lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        out
    }

    /// The *stable* machine-readable verdict list: submission order, no
    /// timings, no environment-dependent fields (`attempts` and
    /// `quarantined` are deterministic — they depend only on the fault
    /// plan and retry policy, never on wall time). This is what the CI
    /// golden files diff against.
    pub fn render_verdicts_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{},\
                 \"attempts\":{},\"quarantined\":{}}}{}\n",
                json_escape(&e.name),
                e.report.verdict.type_label(),
                e.report.verdict.poc_generated(),
                e.report.verdict.verified(),
                e.report.attempts,
                e.quarantined,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Size estimate for one cached prefix artifact.
pub(crate) fn prep_artifact_bytes(artifact: &Result<PreparedSource, PrepareFailure>) -> u64 {
    match artifact {
        Ok(p) => p.approx_bytes(),
        Err(_) => std::mem::size_of::<PrepareFailure>() as u64,
    }
}

/// Runs one job against the shared prefix cache. Used by both
/// [`run_batch`] and [`crate::portfolio::verify_portfolio`].
///
/// `obs` receives the phase spans: `"prepare"` fires only when this call
/// actually computed the prefix (a cache miss); `"symex"` and `"p4"`
/// fire from inside the pipeline suffix.
///
/// `disk` is the durable write-through tier: on a memory miss the blob
/// store is consulted first (a frame-valid, decodable blob skips
/// `prepare` entirely — that is the warm start), and a freshly computed
/// `Ok` prefix is written back. A blob whose frame validated but whose
/// payload fails [`blob::from_blob`] is quarantined exactly like frame
/// corruption; the job recomputes and the hit flag reflects whether
/// *this job* ran `prepare`, so metric billing stays single-count.
pub(crate) fn verify_with_cache(
    cache: &ArtifactCache<Result<PreparedSource, PrepareFailure>>,
    disk: Option<&BlobStore>,
    input: &SoftwarePairInput<'_>,
    config: &PipelineConfig,
    cancel: Option<&CancelToken>,
    obs: &dyn SpanObserver,
) -> (VerificationReport, bool, u64) {
    let start = Instant::now();
    let key = prefix_cache_key(input.s, input.poc, input.shared, config);
    let disk_hit = std::cell::Cell::new(false);
    let (prep, mem_hit) = cache.get_or_compute(key, || {
        if let Some(store) = disk {
            if let Some(payload) = store.get(key) {
                match blob::from_blob(&payload) {
                    Ok(prep) => {
                        disk_hit.set(true);
                        let artifact = Ok(prep);
                        let bytes = prep_artifact_bytes(&artifact);
                        return (artifact, bytes);
                    }
                    // Checksum-valid frame around an undecodable payload
                    // (e.g. payload-version skew): quarantine it like any
                    // other corruption and fall through to recompute.
                    Err(_) => store.quarantine(key),
                }
            }
        }
        let span = Span::start("prepare").with_observer(obs);
        let artifact = prepare(input.s, input.poc, input.shared, config);
        span.finish();
        if let (Some(store), Ok(prep)) = (disk, &artifact) {
            // Only successful prefixes persist: failures are cheap to
            // recompute and their shape is not part of the blob schema.
            store.put(key, &blob::to_blob(prep));
        }
        let bytes = prep_artifact_bytes(&artifact);
        (artifact, bytes)
    });
    let hit = mem_hit || disk_hit.get();
    let prepare_seconds = start.elapsed().as_secs_f64();
    let mut report = match prep.as_ref() {
        Ok(p) => verify_prepared_observed(p, input, config, cancel, obs),
        Err(fail) => fail.to_report(),
    };
    // The prefix as *this job* paid for it: a full prepare on a miss, a
    // cache lookup (plus possibly waiting out another worker's
    // single-flight compute) on a hit.
    report.prepare_seconds = prepare_seconds;
    // Bill the whole job (prefix, cached or not, plus suffix) to one
    // clock, matching the sequential `verify` semantics.
    report.wall_seconds = start.elapsed().as_secs_f64();
    (report, hit, key)
}

/// Bridges pipeline phase spans into the batch event stream (stamped
/// with the job's submission index, the worker id, and a per-worker
/// monotonic timestamp) and into the flight recorder as `B`/`E` pairs.
struct SinkSpans<'a> {
    sink: &'a dyn EventSink,
    clock: &'a EventClock,
    job: usize,
    worker: usize,
}

impl SpanObserver for SinkSpans<'_> {
    fn span_started(&self, name: &'static str) {
        octo_trace::emit(TraceKind::SpanBegin { name });
    }

    fn span_finished(&self, name: &'static str, seconds: f64) {
        octo_trace::emit(TraceKind::SpanEnd { name });
        self.sink.emit(Event::new(
            self.clock.stamp(self.worker),
            self.worker,
            EventKind::PhaseFinished {
                job: self.job,
                phase: name,
                seconds,
            },
        ));
    }
}

/// Wall-time histogram bounds, microseconds (100µs … 10s).
const MICROS_BUCKETS: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bunch-payload histogram bounds, bytes.
const BUNCH_BUCKETS: [u64; 6] = [1, 4, 16, 64, 256, 1_024];

/// Clone-score histogram bounds, centi-units (`score * 100`).
pub(crate) const SCORE_CENTI_BUCKETS: [u64; 6] = [50, 60, 70, 80, 90, 100];

fn micros(seconds: f64) -> u64 {
    (seconds * 1e6) as u64
}

/// Pre-registered handles for every metric a batch run records, so the
/// per-job hot path touches only lock-free atomics (the registry's
/// name-lookup mutex is paid once, up front). The full catalogue is
/// documented in `docs/observability.md` and pinned by
/// `tests/golden/metrics_schema.txt`.
struct BatchMetrics {
    jobs_total: Arc<Counter>,
    verdict_type_i: Arc<Counter>,
    verdict_type_ii: Arc<Counter>,
    verdict_type_iii: Arc<Counter>,
    verdict_failure: Arc<Counter>,
    prescreen_decided: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    cache_disk_hits: Arc<Counter>,
    cache_disk_misses: Arc<Counter>,
    cache_disk_writes: Arc<Counter>,
    cache_disk_corrupt: Arc<Counter>,
    cache_disk_quarantined: Arc<Counter>,
    cache_disk_degraded: Arc<Gauge>,
    cache_disk_read_micros: Arc<Histogram>,
    cache_disk_write_micros: Arc<Histogram>,
    sched_workers: Arc<Gauge>,
    sched_steals: Arc<Counter>,
    sched_jobs_stolen: Arc<Counter>,
    p1_insts: Arc<Counter>,
    p4_insts: Arc<Counter>,
    taint_bytes_uploaded: Arc<Counter>,
    taint_records: Arc<Counter>,
    taint_peak_tainted_addrs: Arc<Gauge>,
    taint_bunch_bytes: Arc<Histogram>,
    symex_steps: Arc<Counter>,
    symex_backtracks: Arc<Counter>,
    symex_loop_retries: Arc<Counter>,
    symex_forced_branches: Arc<Counter>,
    symex_peak_mem_bytes: Arc<Gauge>,
    symex_peak_fallback_depth: Arc<Gauge>,
    solver_calls: Arc<Counter>,
    solver_interval_refutations: Arc<Counter>,
    solver_simplify_rewrites: Arc<Counter>,
    job_queue_latency: Arc<Histogram>,
    job_wall: Arc<Histogram>,
    phase_p1: Arc<Histogram>,
    phase_p2p3: Arc<Histogram>,
    phase_p4: Arc<Histogram>,
    retries: Arc<Counter>,
    quarantined: Arc<Counter>,
    panics: Arc<Counter>,
    faults_injected: Arc<Counter>,
    watchdog_fired: Arc<Counter>,
    uptime_seconds: Arc<Gauge>,
}

impl BatchMetrics {
    fn register(reg: &MetricsRegistry) -> BatchMetrics {
        // Clone-scan metrics are recorded by `crate::scan::run_scan` after
        // the batch returns; registered eagerly here so every run exposes
        // the full pinned schema (tests/golden/metrics_schema.txt).
        reg.counter("clone_candidates_total");
        reg.counter("clone_functions_fingerprinted_total");
        reg.counter("clone_pairs_compared_total");
        reg.counter("clone_scan_jobs_total");
        reg.histogram("clone_score_centi", &SCORE_CENTI_BUCKETS);
        // Service-queue metrics are recorded by the octopocsd daemon
        // (octo-serve) against this same registry; eagerly registered for
        // the same reason — one pinned schema whether the registry backs
        // a one-shot batch or a long-running service.
        reg.counter("serve_admissions_total");
        reg.counter("serve_rejections_total");
        reg.counter("serve_replays_total");
        reg.gauge("serve_queue_depth_bulk");
        reg.gauge("serve_queue_depth_interactive");
        reg.histogram("serve_queue_wait_micros", &MICROS_BUCKETS);
        // Build identity for scrapers: a constant-1 info-style gauge
        // carrying the crate version as a label.
        reg.info(
            "octopocs_build_info",
            &[("version", env!("CARGO_PKG_VERSION"))],
        );
        BatchMetrics {
            uptime_seconds: reg.gauge("serve_uptime_seconds"),
            jobs_total: reg.counter("batch_jobs_total"),
            verdict_type_i: reg.counter("batch_verdict_type_i_total"),
            verdict_type_ii: reg.counter("batch_verdict_type_ii_total"),
            verdict_type_iii: reg.counter("batch_verdict_type_iii_total"),
            verdict_failure: reg.counter("batch_verdict_failure_total"),
            prescreen_decided: reg.counter("batch_prescreen_decided_total"),
            cache_hits: reg.counter("cache_hits_total"),
            cache_misses: reg.counter("cache_misses_total"),
            cache_entries: reg.gauge("cache_entries"),
            cache_bytes: reg.gauge("cache_bytes"),
            cache_disk_hits: reg.counter("cache_disk_hits_total"),
            cache_disk_misses: reg.counter("cache_disk_misses_total"),
            cache_disk_writes: reg.counter("cache_disk_writes_total"),
            cache_disk_corrupt: reg.counter("cache_disk_corrupt_total"),
            cache_disk_quarantined: reg.counter("cache_disk_quarantined_total"),
            cache_disk_degraded: reg.gauge("cache_disk_degraded"),
            cache_disk_read_micros: reg.histogram("cache_disk_read_micros", &MICROS_BUCKETS),
            cache_disk_write_micros: reg.histogram("cache_disk_write_micros", &MICROS_BUCKETS),
            sched_workers: reg.gauge("sched_workers"),
            sched_steals: reg.counter("sched_steals_total"),
            sched_jobs_stolen: reg.counter("sched_jobs_stolen_total"),
            p1_insts: reg.counter("pipeline_p1_insts_total"),
            p4_insts: reg.counter("pipeline_p4_insts_total"),
            taint_bytes_uploaded: reg.counter("taint_bytes_uploaded_total"),
            taint_records: reg.counter("taint_records_total"),
            taint_peak_tainted_addrs: reg.gauge("taint_peak_tainted_addrs"),
            taint_bunch_bytes: reg.histogram("taint_bunch_bytes", &BUNCH_BUCKETS),
            symex_steps: reg.counter("symex_steps_total"),
            symex_backtracks: reg.counter("symex_backtracks_total"),
            symex_loop_retries: reg.counter("symex_loop_retries_total"),
            symex_forced_branches: reg.counter("symex_forced_branches_total"),
            symex_peak_mem_bytes: reg.gauge("symex_peak_mem_bytes"),
            symex_peak_fallback_depth: reg.gauge("symex_peak_fallback_depth"),
            solver_calls: reg.counter("solver_calls_total"),
            solver_interval_refutations: reg.counter("solver_interval_refutations_total"),
            solver_simplify_rewrites: reg.counter("solver_simplify_rewrites_total"),
            job_queue_latency: reg.histogram("job_queue_latency_micros", &MICROS_BUCKETS),
            job_wall: reg.histogram("job_wall_micros", &MICROS_BUCKETS),
            phase_p1: reg.histogram("phase_p1_micros", &MICROS_BUCKETS),
            phase_p2p3: reg.histogram("phase_p2p3_micros", &MICROS_BUCKETS),
            phase_p4: reg.histogram("phase_p4_micros", &MICROS_BUCKETS),
            retries: reg.counter("batch_retries_total"),
            quarantined: reg.counter("batch_quarantined_total"),
            panics: reg.counter("batch_panics_total"),
            faults_injected: reg.counter("batch_faults_injected_total"),
            watchdog_fired: reg.counter("batch_watchdog_fired_total"),
        }
    }

    /// Records one finished job. P1-side counters (taint, `p1_insts`,
    /// bunch sizes) are billed only when this job actually computed the
    /// prefix — cached artifacts would double-count work done once.
    fn record_job(&self, entry: &BatchEntry) {
        let report = &entry.report;
        self.jobs_total.inc();
        match report.verdict.type_label() {
            "Type-I" => self.verdict_type_i.inc(),
            "Type-II" => self.verdict_type_ii.inc(),
            "Type-III" => self.verdict_type_iii.inc(),
            _ => self.verdict_failure.inc(),
        }
        if report.prescreen {
            self.prescreen_decided.inc();
        }
        if entry.quarantined {
            self.quarantined.inc();
        }
        if report.attempts > 1 {
            self.retries.add(u64::from(report.attempts) - 1);
        }
        self.job_wall.observe(micros(report.wall_seconds));
        self.phase_p1.observe(micros(report.prepare_seconds));
        if !entry.cache_hit {
            self.p1_insts.add(report.p1_insts);
            if let Some(t) = report.taint_stats {
                self.taint_bytes_uploaded.add(t.bytes_uploaded);
                self.taint_records.add(t.taint_records);
                self.taint_peak_tainted_addrs
                    .record_max(t.peak_tainted_addrs);
            }
            for &bytes in &report.bunch_bytes {
                self.taint_bunch_bytes.observe(bytes);
            }
        }
        if let Some(s) = &report.symex_stats {
            self.symex_steps.add(s.total_steps);
            self.symex_backtracks.add(s.backtracks);
            self.symex_loop_retries.add(s.loop_retries);
            self.symex_forced_branches.add(s.forced_branches);
            self.symex_peak_mem_bytes.record_max(s.peak_mem_bytes);
            self.symex_peak_fallback_depth
                .record_max(s.peak_fallback_depth);
            self.solver_calls.add(s.solver_calls);
            self.solver_interval_refutations.add(s.interval_refutations);
            self.solver_simplify_rewrites.add(s.simplify_rewrites);
            self.phase_p2p3.observe(micros(s.wall_seconds));
        }
        if report.p4_insts > 0 {
            self.p4_insts.add(report.p4_insts);
            self.phase_p4.observe(micros(report.p4_seconds));
        }
    }

    /// Records run-level scheduler statistics (once per [`run_batch`],
    /// after all workers have joined).
    fn record_sched(&self, sched: &SchedStats) {
        self.sched_workers.set(sched.workers as u64);
        self.sched_steals.add(sched.steals);
        self.sched_jobs_stolen.add(sched.jobs_stolen);
    }
}

/// Adds `current - synced` to `counter` and advances the high-water mark,
/// so a monotonically growing source statistic (cache hits, watchdog
/// firings) can be re-synced into a counter any number of times without
/// double-billing. Safe under concurrent callers: `fetch_max` hands the
/// delta to exactly one of them.
fn sync_counter(counter: &Counter, synced: &std::sync::atomic::AtomicU64, current: u64) {
    let prev = synced.fetch_max(current, std::sync::atomic::Ordering::AcqRel);
    if current > prev {
        counter.add(current - prev);
    }
}

/// The long-lived execution substrate a batch (or a service) runs jobs
/// on: one artifact cache, one metrics registry, one event clock, one
/// optional watchdog — everything per-*run* that [`run_batch`] used to
/// hold in locals, extracted so a daemon can keep it warm across many
/// submissions. [`BatchRuntime::run_job`] is the whole per-job story
/// (trace/fault guards, retry-then-quarantine, cancellation, events,
/// metrics); [`run_batch`] is now a thin scheduler loop over it and the
/// `octopocsd` service calls it one job at a time.
pub struct BatchRuntime {
    cache: ArtifactCache<Result<PreparedSource, PrepareFailure>>,
    store: Option<Arc<BlobStore>>,
    metrics: MetricsRegistry,
    recorder: BatchMetrics,
    clock: EventClock,
    watchdog: Option<Watchdog>,
    options: BatchOptions,
    config: PipelineConfig,
    synced_cache_hits: std::sync::atomic::AtomicU64,
    synced_cache_misses: std::sync::atomic::AtomicU64,
    synced_watchdog_fired: std::sync::atomic::AtomicU64,
    synced_disk_hits: std::sync::atomic::AtomicU64,
    synced_disk_misses: std::sync::atomic::AtomicU64,
    synced_disk_writes: std::sync::atomic::AtomicU64,
    synced_disk_corrupt: std::sync::atomic::AtomicU64,
    synced_disk_quarantined: std::sync::atomic::AtomicU64,
    started_at: Instant,
}

impl std::fmt::Debug for BatchRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRuntime")
            .field("workers", &self.options.workers)
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl BatchRuntime {
    /// Builds the runtime: registers the full metric schema, spawns the
    /// watchdog (when configured), starts the event clock.
    pub fn new(config: &PipelineConfig, options: &BatchOptions) -> BatchRuntime {
        let metrics = MetricsRegistry::new();
        let recorder = BatchMetrics::register(&metrics);
        let store = options.cache_dir.as_ref().map(|dir| {
            let store = BlobStore::open(dir);
            store.attach_histograms(
                Arc::clone(&recorder.cache_disk_read_micros),
                Arc::clone(&recorder.cache_disk_write_micros),
            );
            Arc::new(store)
        });
        BatchRuntime {
            cache: ArtifactCache::new(),
            store,
            recorder,
            metrics,
            clock: EventClock::new(options.workers),
            watchdog: options.watchdog.map(Watchdog::spawn),
            options: options.clone(),
            config: config.clone(),
            synced_cache_hits: std::sync::atomic::AtomicU64::new(0),
            synced_cache_misses: std::sync::atomic::AtomicU64::new(0),
            synced_watchdog_fired: std::sync::atomic::AtomicU64::new(0),
            synced_disk_hits: std::sync::atomic::AtomicU64::new(0),
            synced_disk_misses: std::sync::atomic::AtomicU64::new(0),
            synced_disk_writes: std::sync::atomic::AtomicU64::new(0),
            synced_disk_corrupt: std::sync::atomic::AtomicU64::new(0),
            synced_disk_quarantined: std::sync::atomic::AtomicU64::new(0),
            started_at: Instant::now(),
        }
    }

    /// The disk blob store, when `--cache-dir` configured one.
    pub fn store(&self) -> Option<&Arc<BlobStore>> {
        self.store.as_ref()
    }

    /// Current disk-store statistics, when a store is configured.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_deref().map(BlobStore::stats)
    }

    /// The runtime's metrics registry (call
    /// [`BatchRuntime::refresh_metrics`] first for up-to-date cache and
    /// watchdog figures).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The pipeline configuration every job runs under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Current artifact-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Whether the run-level drain token has fired.
    pub fn drained(&self) -> bool {
        self.options
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// Re-syncs the registry's cache and watchdog metrics from their
    /// live sources. Idempotent and safe to call concurrently (deltas
    /// are high-water-marked, never double-billed); a service calls this
    /// on every metrics request, [`run_batch`] once at the end.
    pub fn refresh_metrics(&self) {
        self.recorder
            .uptime_seconds
            .set(self.started_at.elapsed().as_secs());
        let stats = self.cache.stats();
        sync_counter(
            &self.recorder.cache_hits,
            &self.synced_cache_hits,
            stats.hits,
        );
        sync_counter(
            &self.recorder.cache_misses,
            &self.synced_cache_misses,
            stats.misses,
        );
        self.recorder.cache_entries.set(stats.entries);
        self.recorder.cache_bytes.set(stats.bytes);
        if let Some(store) = self.store.as_deref() {
            let disk = store.stats();
            sync_counter(
                &self.recorder.cache_disk_hits,
                &self.synced_disk_hits,
                disk.hits,
            );
            sync_counter(
                &self.recorder.cache_disk_misses,
                &self.synced_disk_misses,
                disk.misses,
            );
            sync_counter(
                &self.recorder.cache_disk_writes,
                &self.synced_disk_writes,
                disk.writes,
            );
            sync_counter(
                &self.recorder.cache_disk_corrupt,
                &self.synced_disk_corrupt,
                disk.corrupt,
            );
            sync_counter(
                &self.recorder.cache_disk_quarantined,
                &self.synced_disk_quarantined,
                disk.quarantined,
            );
            self.recorder
                .cache_disk_degraded
                .set(u64::from(disk.degraded));
        }
        if let Some(dog) = &self.watchdog {
            sync_counter(
                &self.recorder.watchdog_fired,
                &self.synced_watchdog_fired,
                dog.fired(),
            );
        }
    }

    /// A fresh cancel token for one attempt — derived from the run-level
    /// drain token when one is set, carrying the per-job deadline when
    /// one is configured, `None` when nothing could ever fire it and the
    /// watchdog does not need a channel.
    fn attempt_token(&self) -> Option<CancelToken> {
        match (&self.options.cancel, self.options.deadline) {
            (Some(run), Some(d)) => Some(run.child_with_deadline(d)),
            (Some(run), None) => Some(run.child()),
            (None, Some(d)) => Some(CancelToken::with_deadline(d)),
            (None, None) => self.watchdog.as_ref().map(|_| CancelToken::new()),
        }
    }

    /// Runs one job to a finished [`BatchEntry`]: queue-latency
    /// accounting, trace and fault guards, the retry-then-quarantine
    /// attempt loop inside a panic envelope, lifecycle events into
    /// `sink`, and per-job metrics. `index` tags the job everywhere (the
    /// event stream, the trace ring, the fault context); `queued_at` is
    /// when the job was submitted (queue latency is measured from it).
    ///
    /// When the run-level drain token has fired, a job not yet started
    /// is skipped outright and an in-flight attempt that dies
    /// transiently is reported as
    /// [`crate::verdict::FailureReason::Cancelled`] instead of burning
    /// retries — but an attempt that *completes* during a drain keeps
    /// its real verdict.
    pub fn run_job(
        &self,
        index: usize,
        worker: usize,
        job: &BatchJob,
        queued_at: Instant,
        sink: &dyn EventSink,
    ) -> BatchEntry {
        let options = &self.options;
        let recorder = &self.recorder;
        // Queue latency: how long the job sat submitted-but-unclaimed.
        recorder
            .job_queue_latency
            .observe(micros(queued_at.elapsed().as_secs_f64()));
        let job_start = Instant::now();
        // Route this job's engine-level trace events (solver entries,
        // state deaths, bunch assertions, …) into the shared ring,
        // tagged with the submission index and worker lane.
        let _trace = options
            .trace
            .as_ref()
            .map(|rec| octo_trace::install(rec, index as u32, worker as u32));
        // One fault context per *job*, shared across attempts: occurrence
        // counters persist, so an Nth(1) rule fires on attempt 1 and the
        // retry runs clean (that is how a retry rescues an injected
        // fault), and the whole schedule replays byte-for-byte from
        // (seed, submission index) regardless of worker count.
        let faults_ctx = options
            .faults
            .as_ref()
            .map(|plan| Arc::new(JobFaults::new(plan, index as u32)));
        let _faults = faults_ctx.as_ref().map(octo_faults::install);
        sink.emit(Event::new(
            self.clock.stamp(worker),
            worker,
            EventKind::JobStarted {
                job: index,
                name: job.name.clone(),
            },
        ));
        let input = SoftwarePairInput {
            s: &job.s,
            t: &job.t,
            poc: &job.poc,
            shared: &job.shared,
        };
        let spans = SinkSpans {
            sink,
            clock: &self.clock,
            job: index,
            worker,
        };
        let max_attempts = options.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        let (report, cache_hit, key, quarantined) = if self.drained() {
            // Drained before this job ever started: skip the engines
            // entirely and synthesize the incomplete verdict.
            (VerificationReport::from_cancelled(), false, 0, false)
        } else {
            loop {
                // A fresh token per attempt: a previous attempt's
                // cancelled (or escalated) token must not pre-cancel the
                // retry. The watchdog watches each attempt independently.
                let token = self.attempt_token();
                let _watch = match (self.watchdog.as_ref(), token.as_ref()) {
                    (Some(dog), Some(t)) => Some(dog.watch(t)),
                    _ => None,
                };
                // The inner panic envelope. Catching here (rather than
                // relying on the scheduler's own envelope) keeps the trace
                // and fault guards installed while the degraded report is
                // synthesized — the post-mortem tail captures the events
                // leading up to the panic — and lets the retry loop treat a
                // panic like any other transient failure.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    verify_with_cache(
                        &self.cache,
                        self.store.as_deref(),
                        &input,
                        &self.config,
                        token.as_ref(),
                        &spans,
                    )
                }));
                let (mut report, cache_hit, key) = match caught {
                    Ok(r) => r,
                    Err(payload) => {
                        recorder.panics.inc();
                        let panic = octo_sched::JobPanic::from_payload(payload.as_ref());
                        (VerificationReport::from_panic(panic.message), false, 0)
                    }
                };
                report.attempts = attempt;
                let transient = matches!(
                    &report.verdict,
                    crate::verdict::Verdict::Failure { reason } if reason.is_transient()
                );
                if transient && self.drained() {
                    // The attempt most likely died *because* the drain
                    // fired its parent token (the engine reports that as
                    // a deadline or hang): report the job as incomplete,
                    // no retry, no quarantine.
                    let mut cancelled = VerificationReport::from_cancelled();
                    cancelled.attempts = attempt;
                    break (cancelled, cache_hit, key, false);
                }
                if transient && attempt < max_attempts {
                    let backoff = options.retry.backoff_for(index as u32, attempt);
                    octo_trace::emit(TraceKind::RetryScheduled {
                        attempt,
                        backoff_micros: backoff.as_micros() as u64,
                    });
                    // Mirror the retry into the lifecycle event stream so
                    // watchers (and the HTTP timelines built from the
                    // daemon's fanout) see each failed attempt with the
                    // heartbeat count the attempt token accumulated.
                    sink.emit(Event::new(
                        self.clock.stamp(worker),
                        worker,
                        EventKind::RetryScheduled {
                            job: index,
                            attempt,
                            backoff_micros: backoff.as_micros() as u64,
                            beats: token.as_ref().map_or(0, CancelToken::beats),
                        },
                    ));
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                    continue;
                }
                if transient {
                    octo_trace::emit(TraceKind::JobQuarantined { attempts: attempt });
                }
                break (report, cache_hit, key, transient);
            }
        };
        let mut report = report;
        if matches!(
            &report.verdict,
            crate::verdict::Verdict::Failure {
                reason: crate::verdict::FailureReason::Cancelled
            }
        ) {
            report.wall_seconds = job_start.elapsed().as_secs_f64();
        }
        if let Some(ctx) = &faults_ctx {
            recorder.faults_injected.add(ctx.fired());
        }
        if cache_hit {
            sink.emit(Event::new(
                self.clock.stamp(worker),
                worker,
                EventKind::CacheHit { job: index, key },
            ));
        }
        sink.emit(Event::new(
            self.clock.stamp(worker),
            worker,
            EventKind::JobFinished {
                job: index,
                outcome: report.verdict.type_label().to_string(),
                seconds: job_start.elapsed().as_secs_f64(),
            },
        ));
        let entry = BatchEntry {
            name: job.name.clone(),
            urgency: Urgency::of(&report.verdict),
            cache_hit,
            quarantined,
            report,
        };
        recorder.record_job(&entry);
        entry
    }
}

/// Verifies every job on the work-stealing scheduler and returns the
/// entries **in submission order** together with cache and scheduler
/// statistics. Progress is streamed into `sink` as it happens.
///
/// Each job attempt runs inside a panic envelope: a panicking pipeline
/// degrades to a [`crate::verdict::FailureReason::Internal`] verdict
/// (with a synthesized post-mortem) instead of taking the batch down.
/// Transient failures are retried per `options.retry`; a job whose final
/// attempt still fails transiently is *quarantined* — its degraded
/// verdict is kept and its index listed in [`BatchReport::quarantined`].
pub fn run_batch(
    jobs: &[BatchJob],
    config: &PipelineConfig,
    options: &BatchOptions,
    sink: &dyn EventSink,
) -> BatchReport {
    let start = Instant::now();
    let runtime = BatchRuntime::new(config, options);
    let indices: Vec<usize> = (0..jobs.len()).collect();

    let (results, sched) = run_jobs(indices, options.workers, |worker, i| {
        runtime.run_job(i, worker, &jobs[i], start, sink)
    });

    // A job can only reach the scheduler's own envelope by panicking in
    // the batch bookkeeping around the inner one (the pipeline itself is
    // caught above). Degrade it the same way: preserved batch, degraded
    // verdict, quarantined.
    let entries: Vec<BatchEntry> = results
        .into_iter()
        .enumerate()
        .map(|(i, result)| match result {
            Ok(entry) => entry,
            Err(panic) => {
                runtime.recorder.panics.inc();
                let mut report = VerificationReport::from_panic(panic.message);
                report.wall_seconds = start.elapsed().as_secs_f64();
                let entry = BatchEntry {
                    name: jobs[i].name.clone(),
                    urgency: Urgency::of(&report.verdict),
                    cache_hit: false,
                    quarantined: true,
                    report,
                };
                runtime.recorder.record_job(&entry);
                entry
            }
        })
        .collect();
    let quarantined: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.quarantined)
        .map(|(i, _)| i)
        .collect();

    runtime.refresh_metrics();
    runtime.recorder.record_sched(&sched);
    let cache = runtime.cache.stats();
    let disk = runtime.store_stats();
    // Destructure to join the watchdog thread before handing the
    // registry to the report (dropping `store` flushes its index).
    let BatchRuntime {
        metrics,
        watchdog,
        store,
        ..
    } = runtime;
    drop(watchdog);
    drop(store);
    BatchReport {
        entries,
        quarantined,
        cache,
        disk,
        sched,
        metrics,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_sched::{EventLog, NullSink};
    use octo_vm::Limits;

    const SHARED: &str = r#"
func shared(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    fn s_program() -> Program {
        parse_program(&format!(
            "func main() {{\nentry:\n fd = open\n b = getc fd\n call shared(b)\n \
             halt 0\n}}\n{SHARED}"
        ))
        .unwrap()
    }

    fn t_gated() -> Program {
        parse_program(&format!(
            "func main() {{\nentry:\n fd = open\n m = getc fd\n ok = eq m, 0x99\n \
             br ok, go, rej\ngo:\n b = getc fd\n call shared(b)\n halt 0\nrej:\n \
             halt 1\n}}\n{SHARED}"
        ))
        .unwrap()
    }

    fn t_safe() -> Program {
        parse_program(&format!("func main() {{\nentry:\n halt 0\n}}\n{SHARED}")).unwrap()
    }

    fn job(name: &str, t: Program) -> BatchJob {
        BatchJob {
            name: name.to_string(),
            s: s_program(),
            t,
            poc: PocFile::from(&b"A"[..]),
            shared: vec!["shared".to_string()],
        }
    }

    #[test]
    fn cache_key_depends_on_every_ingredient() {
        let config = PipelineConfig::default();
        let s = s_program();
        let poc = PocFile::from(&b"A"[..]);
        let shared = vec!["shared".to_string()];
        let base = prefix_cache_key(&s, &poc, &shared, &config);

        // Same inputs → same key (content addressing, not identity).
        assert_eq!(
            base,
            prefix_cache_key(&s_program(), &PocFile::from(&b"A"[..]), &shared, &config)
        );
        // Different S.
        assert_ne!(base, prefix_cache_key(&t_safe(), &poc, &shared, &config));
        // Different poc.
        assert_ne!(
            base,
            prefix_cache_key(&s, &PocFile::from(&b"B"[..]), &shared, &config)
        );
        // Different shared set.
        assert_ne!(
            base,
            prefix_cache_key(&s, &poc, &["other".to_string()], &config)
        );
        // Different taint config (context mode, granularity).
        assert_ne!(
            base,
            prefix_cache_key(&s, &poc, &shared, &config.clone().context_free())
        );
        let coarse = PipelineConfig {
            taint_granularity: octo_taint::Granularity::Word,
            ..PipelineConfig::default()
        };
        assert_ne!(base, prefix_cache_key(&s, &poc, &shared, &coarse));
        // Different VM limits.
        let tight = PipelineConfig {
            vm_limits: Limits {
                max_insts: 1_000,
                ..Limits::default()
            },
            ..PipelineConfig::default()
        };
        assert_ne!(base, prefix_cache_key(&s, &poc, &shared, &tight));
    }

    #[test]
    fn shared_source_pays_prepare_once() {
        // Two targets cloned from one (S, poc): one prepare, one hit.
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let report = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert_eq!(report.cache.misses, 1, "P1 must run exactly once");
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.cache.entries, 1);
        assert!(report.cache.bytes > 0);
        assert_eq!(report.entries.iter().filter(|e| e.cache_hit).count(), 1);
        // Both entries carry identical P1 statistics (same artifact).
        assert_eq!(
            report.entries[0].report.p1_insts,
            report.entries[1].report.p1_insts
        );
        assert!(report.entries[0].report.p1_insts > 0);
        // Verdicts in submission order.
        assert_eq!(report.entries[0].report.verdict.type_label(), "Type-II");
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-III");
    }

    #[test]
    fn distinct_configs_do_not_share_artifacts() {
        // The same pair under a different taint config must miss again.
        let jobs = vec![job("a", t_gated())];
        let cache_aware = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert_eq!(cache_aware.cache.misses, 1);
        let free = PipelineConfig::default().context_free();
        let cache_free = run_batch(&jobs, &free, &BatchOptions::default(), &NullSink);
        assert_eq!(
            cache_free.cache.misses, 1,
            "fresh cache, fresh config, fresh miss"
        );
    }

    #[test]
    fn batch_verdicts_match_sequential_verify() {
        let jobs = vec![
            job("gated", t_gated()),
            job("safe", t_safe()),
            job("same", s_program()),
        ];
        let config = PipelineConfig::default();
        let batch = run_batch(
            &jobs,
            &config,
            &BatchOptions {
                workers: 3,
                ..BatchOptions::default()
            },
            &NullSink,
        );
        for (entry, job) in batch.entries.iter().zip(jobs.iter()) {
            let input = SoftwarePairInput {
                s: &job.s,
                t: &job.t,
                poc: &job.poc,
                shared: &job.shared,
            };
            let sequential = crate::pipeline::verify(&input, &config);
            assert_eq!(
                entry.report.verdict.type_label(),
                sequential.verdict.type_label(),
                "{}",
                job.name
            );
        }
    }

    #[test]
    fn event_stream_covers_the_lifecycle() {
        let jobs = vec![job("one", t_gated()), job("two", t_gated())];
        let log = EventLog::new();
        run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions {
                workers: 1,
                ..BatchOptions::default()
            },
            &log,
        );
        let events = log.snapshot();
        let count = |f: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(count(&|k| matches!(k, EventKind::JobStarted { .. })), 2);
        assert_eq!(count(&|k| matches!(k, EventKind::JobFinished { .. })), 2);
        assert_eq!(count(&|k| matches!(k, EventKind::CacheHit { .. })), 1);
        assert!(
            count(&|k| matches!(
                k,
                EventKind::PhaseFinished {
                    phase: "prepare",
                    ..
                }
            )) == 1
        );
        assert!(count(&|k| matches!(k, EventKind::PhaseFinished { phase: "symex", .. })) >= 1);
        // Both gated jobs reach P4 (a poc' is generated for each).
        assert_eq!(
            count(&|k| matches!(k, EventKind::PhaseFinished { phase: "p4", .. })),
            2
        );
        // Every event renders both ways.
        for e in &events {
            assert!(!e.render_human().is_empty());
            assert!(e.render_json().starts_with('{'));
        }
        // One worker, one lane: the EventClock stamps must strictly
        // increase in emission order.
        for pair in events.windows(2) {
            assert_eq!(pair[0].worker, 0);
            assert!(
                pair[1].ts_micros > pair[0].ts_micros,
                "timestamps regressed: {} then {}",
                pair[0].ts_micros,
                pair[1].ts_micros
            );
        }
    }

    #[test]
    fn flight_recorder_captures_batch_and_post_mortems_render() {
        let rec = Arc::new(FlightRecorder::with_default_capacity());
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let options = BatchOptions {
            workers: 2,
            trace: Some(Arc::clone(&rec)),
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        assert!(!rec.is_empty(), "engines recorded trace events");
        let snapshot = rec.snapshot();
        // Both jobs appear, tagged with their submission index.
        assert!(snapshot.iter().any(|e| e.job == 0));
        assert!(snapshot.iter().any(|e| e.job == 1));
        // The ring renders to a valid Chrome trace with paired spans.
        let chrome = octo_trace::chrome::render_chrome(&snapshot);
        let stats = octo_trace::chrome::validate(&chrome).expect("valid trace");
        assert!(stats.pairs > 0, "span B/E pairs present");
        // The safe clone is Type-III: it alone carries a post-mortem.
        let pm = report.render_post_mortems();
        assert!(pm.contains("safe:"), "{pm}");
        assert!(pm.contains("ep-unreachable"), "{pm}");
        assert!(!pm.contains("gated:"), "triggered jobs get no post-mortem");
        // With a recorder installed the post-mortem carries a tail.
        let safe = &report.entries[1];
        let mortem = safe.report.post_mortem.as_ref().expect("attached");
        assert!(!mortem.tail.is_empty(), "flight-record tail captured");
        assert!(mortem.tail.iter().all(|e| e.job == 1), "tail is job-local");
    }

    #[test]
    fn renderers_are_consistent() {
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let report = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        let human = report.render_human();
        assert!(human.contains("Type-II"), "{human}");
        assert!(human.contains("cache: 1 hits / 1 misses"), "{human}");
        // The phase table lists every job; the symex-free job shows "-".
        assert!(human.contains("phases (seconds):"), "{human}");
        let json = report.render_json();
        assert!(json.contains("\"cache_hit\":true"), "{json}");
        assert!(json.contains("\"prepare_seconds\":"), "{json}");
        assert!(json.contains("\"symex_seconds\":"), "{json}");
        let stable = report.render_verdicts_json();
        assert!(
            stable.contains("\"name\":\"gated\",\"verdict\":\"Type-II\""),
            "{stable}"
        );
        assert!(
            !stable.contains("wall_seconds"),
            "stable output must not carry timings"
        );
        // Urgency ordering puts the triggered clone first.
        let ordered = report.by_urgency();
        assert_eq!(ordered[0].name, "gated");
    }

    #[test]
    fn per_job_deadline_fails_fast_without_stalling() {
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let options = BatchOptions {
            workers: 2,
            deadline: Some(Duration::ZERO),
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        // The symex-bound job dies on the deadline…
        assert_eq!(report.entries[0].report.verdict.type_label(), "Failure");
        assert!(matches!(
            report.entries[0].report.verdict,
            crate::verdict::Verdict::Failure {
                reason: crate::verdict::FailureReason::Deadline
            }
        ));
        // …but jobs decided before symex are unaffected.
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-III");
    }

    #[test]
    fn metrics_account_for_the_whole_run() {
        // Two jobs share one prefix: P1-side counters must be billed
        // once, per-job counters twice.
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let report = run_batch(
            &jobs,
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        let m = &report.metrics;
        let counter = |name: &str| m.get_counter(name).expect(name).get();
        let gauge = |name: &str| m.get_gauge(name).expect(name).get();
        assert_eq!(counter("batch_jobs_total"), 2);
        assert_eq!(counter("batch_verdict_type_ii_total"), 1);
        assert_eq!(counter("batch_verdict_type_iii_total"), 1);
        assert_eq!(counter("cache_hits_total"), 1);
        assert_eq!(counter("cache_misses_total"), 1);
        assert_eq!(gauge("cache_entries"), 1);
        // P1 ran once; its counters must not be double-billed by the hit.
        assert_eq!(
            counter("pipeline_p1_insts_total"),
            report.entries[0].report.p1_insts,
            "cached prefix must not double-count P1 work"
        );
        assert_eq!(counter("taint_bytes_uploaded_total"), 1, "one getc byte");
        let bunches = m.get_histogram("taint_bunch_bytes").expect("registered");
        assert_eq!(bunches.count(), 1, "one bunch, recorded once");
        // Both jobs ran symex (the safe T still needs the engine to prove
        // ep unreachable); the gated one reached P4.
        assert!(counter("symex_steps_total") > 0);
        assert!(counter("solver_calls_total") > 0);
        assert!(counter("pipeline_p4_insts_total") > 0);
        assert!(gauge("symex_peak_mem_bytes") > 0);
        let wall = m.get_histogram("job_wall_micros").expect("registered");
        assert_eq!(wall.count(), 2);
        let queue = m
            .get_histogram("job_queue_latency_micros")
            .expect("registered");
        assert_eq!(queue.count(), 2);
        let p1 = m.get_histogram("phase_p1_micros").expect("registered");
        assert_eq!(p1.count(), 2, "every job pays some prefix wall time");
        // Renderings stay well-formed and carry every metric name.
        let json = m.render_json();
        let prom = m.render_prometheus();
        for name in m.names() {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name}");
            assert!(prom.contains(&name), "{name}");
        }
    }

    #[test]
    fn empty_batch_registers_the_full_schema() {
        // Even a no-op run exposes the complete metric catalogue (the
        // schema golden file and CI diff rely on eager registration),
        // and renders it without NaN or division by zero.
        let report = run_batch(
            &[],
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert!(report.metrics.names().len() >= 30);
        let json = report.metrics.render_json();
        assert!(!json.contains("NaN"), "{json}");
        assert!(!json.contains("null"), "{json}");
        assert_eq!(
            report
                .metrics
                .get_histogram("job_wall_micros")
                .expect("registered")
                .quantile(0.5),
            None,
            "empty histogram has no quantiles, not NaN"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(
            &[],
            &PipelineConfig::default(),
            &BatchOptions::default(),
            &NullSink,
        );
        assert!(report.entries.is_empty());
        assert_eq!(report.cache.misses, 0);
    }

    #[test]
    fn injected_panic_isolates_the_failing_job() {
        // The acceptance shape: a batch where job k's engine panics must
        // still complete every other job, and job k must come back as a
        // degraded Internal verdict with a synthesized post-mortem.
        use octo_faults::FaultSite;
        let jobs = vec![
            job("victim", t_gated()),
            job("gated", t_gated()),
            job("safe", t_safe()),
        ];
        let plan = Arc::new(FaultPlan::new(11).nth(FaultSite::DirectedPanic, Some(0), 1));
        let options = BatchOptions {
            workers: 2,
            faults: Some(plan),
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        assert_eq!(report.entries.len(), 3);
        let victim = &report.entries[0];
        match &victim.report.verdict {
            crate::verdict::Verdict::Failure {
                reason: crate::verdict::FailureReason::Internal { panic_msg },
            } => assert!(panic_msg.contains("injected panic"), "{panic_msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        let pm = victim.report.post_mortem.as_ref().expect("synthesized");
        assert_eq!(pm.event, "panic");
        // A panic under the default single-attempt policy quarantines.
        assert!(victim.quarantined);
        assert_eq!(report.quarantined, vec![0]);
        // The other jobs are untouched — the deque was not poisoned.
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-II");
        assert_eq!(report.entries[2].report.verdict.type_label(), "Type-III");
        assert!(!report.entries[1].quarantined);
        assert!(!report.entries[2].quarantined);
        // The bookkeeping saw the panic and the injection.
        let counter = |name: &str| report.metrics.get_counter(name).expect(name).get();
        assert_eq!(counter("batch_panics_total"), 1);
        assert_eq!(counter("batch_quarantined_total"), 1);
        assert!(counter("batch_faults_injected_total") >= 1);
        // The human rendering names the quarantined job.
        let human = report.render_human();
        assert!(human.contains("quarantined (1): victim"), "{human}");
    }

    #[test]
    fn retry_rescues_a_transient_injected_fault() {
        // Nth(1) fires on attempt 1 and is consumed; the fault context is
        // shared across attempts, so the retry runs clean and the job
        // recovers its real verdict.
        use octo_faults::FaultSite;
        let jobs = vec![job("flaky", t_gated())];
        let plan = Arc::new(FaultPlan::new(5).nth(FaultSite::DirectedPanic, Some(0), 1));
        let options = BatchOptions {
            workers: 1,
            faults: Some(plan),
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                jitter_seed: 0,
            },
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        let entry = &report.entries[0];
        assert_eq!(entry.report.verdict.type_label(), "Type-II");
        assert_eq!(entry.report.attempts, 2);
        assert!(!entry.quarantined);
        assert!(report.quarantined.is_empty());
        let counter = |name: &str| report.metrics.get_counter(name).expect(name).get();
        assert_eq!(counter("batch_retries_total"), 1);
        assert_eq!(counter("batch_panics_total"), 1);
        assert_eq!(counter("batch_quarantined_total"), 0);
    }

    #[test]
    fn pre_fired_drain_token_skips_every_job() {
        // A batch whose drain token is already cancelled runs no engine:
        // every entry is an incomplete Cancelled failure, nothing is
        // quarantined, nothing retried.
        let jobs = vec![job("one", t_gated()), job("two", t_safe())];
        let cancel = CancelToken::new();
        cancel.cancel();
        let options = BatchOptions {
            workers: 2,
            cancel: Some(cancel),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::ZERO,
                jitter_seed: 0,
            },
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        assert_eq!(report.entries.len(), 2);
        for e in &report.entries {
            assert!(
                matches!(
                    e.report.verdict,
                    crate::verdict::Verdict::Failure {
                        reason: crate::verdict::FailureReason::Cancelled
                    }
                ),
                "{}: {:?}",
                e.name,
                e.report.verdict
            );
            assert_eq!(e.report.attempts, 1, "no retries during a drain");
            assert!(!e.quarantined, "a drained job is not quarantined");
        }
        assert!(report.quarantined.is_empty());
        assert_eq!(report.cache.misses, 0, "no engine work happened");
        let counter = |name: &str| report.metrics.get_counter(name).expect(name).get();
        assert_eq!(counter("batch_jobs_total"), 2);
        assert_eq!(counter("batch_verdict_failure_total"), 2);
        assert_eq!(counter("batch_retries_total"), 0);
    }

    #[test]
    fn drain_rewrites_inflight_deadline_to_cancelled() {
        // With the drain token fired and a zero deadline, the in-flight
        // path dies transiently; the drain check must convert that to
        // Cancelled rather than burning the retry budget. (The token is
        // fired up front so the test is deterministic; the first job is
        // then skipped pre-start, exercising the same rewrite.)
        let jobs = vec![job("gated", t_gated())];
        let cancel = CancelToken::new();
        cancel.cancel();
        let options = BatchOptions {
            workers: 1,
            deadline: Some(Duration::ZERO),
            cancel: Some(cancel),
            retry: RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::ZERO,
                jitter_seed: 0,
            },
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        let e = &report.entries[0];
        assert!(matches!(
            e.report.verdict,
            crate::verdict::Verdict::Failure {
                reason: crate::verdict::FailureReason::Cancelled
            }
        ));
        assert_eq!(e.report.attempts, 1);
        assert!(!e.quarantined);
    }

    #[test]
    fn unfired_drain_token_changes_nothing() {
        // Merely *wiring* a drain token must not disturb verdicts,
        // caching, or retry accounting.
        let jobs = vec![job("gated", t_gated()), job("safe", t_safe())];
        let options = BatchOptions {
            workers: 2,
            cancel: Some(CancelToken::new()),
            ..BatchOptions::default()
        };
        let report = run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink);
        assert_eq!(report.entries[0].report.verdict.type_label(), "Type-II");
        assert_eq!(report.entries[1].report.verdict.type_label(), "Type-III");
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.cache.hits, 1);
    }

    #[test]
    fn runtime_runs_jobs_one_at_a_time_with_warm_cache() {
        // The service path: a long-lived BatchRuntime fed jobs
        // individually keeps its artifact cache and metrics across
        // calls.
        let runtime = BatchRuntime::new(&PipelineConfig::default(), &BatchOptions::default());
        let a = runtime.run_job(0, 0, &job("gated", t_gated()), Instant::now(), &NullSink);
        assert_eq!(a.report.verdict.type_label(), "Type-II");
        assert!(!a.cache_hit);
        let b = runtime.run_job(1, 0, &job("safe", t_safe()), Instant::now(), &NullSink);
        assert_eq!(b.report.verdict.type_label(), "Type-III");
        assert!(b.cache_hit, "second job reuses the warm prefix");
        runtime.refresh_metrics();
        let counter = |name: &str| runtime.metrics().get_counter(name).expect(name).get();
        assert_eq!(counter("batch_jobs_total"), 2);
        assert_eq!(counter("cache_hits_total"), 1);
        assert_eq!(counter("cache_misses_total"), 1);
        // Refreshing again must not double-bill the deltas.
        runtime.refresh_metrics();
        assert_eq!(counter("cache_hits_total"), 1);
        assert_eq!(counter("cache_misses_total"), 1);
    }

    #[test]
    fn fault_plan_replays_byte_identical() {
        // Two runs with the same plan seed must produce byte-identical
        // stable JSON, regardless of worker count.
        use octo_faults::FaultSite;
        let jobs = vec![
            job("victim", t_gated()),
            job("gated", t_gated()),
            job("safe", t_safe()),
        ];
        let run = |workers: usize| {
            let plan = Arc::new(
                FaultPlan::new(42)
                    .nth(FaultSite::DirectedPanic, Some(0), 1)
                    .probability(FaultSite::SolverSolve, Some(2), 1.0),
            );
            let options = BatchOptions {
                workers,
                faults: Some(plan),
                ..BatchOptions::default()
            };
            run_batch(&jobs, &PipelineConfig::default(), &options, &NullSink).render_verdicts_json()
        };
        let first = run(2);
        assert_eq!(first, run(2), "same seed, same workers: identical");
        assert_eq!(first, run(1), "worker count must not change verdicts");
        assert_eq!(first, run(8), "worker count must not change verdicts");
    }
}
