//! Pipeline configuration.

use octo_cfg::CfgMode;
use octo_taint::{ContextMode, Granularity};
use octo_vm::Limits;

/// Configuration shared by all four phases.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// θ — loop-state iteration cap for directed symbolic execution
    /// (paper §IV-B sets 120).
    pub theta: u32,
    /// CFG recovery mode for `T` (paper §IV-B: "we determine to use the
    /// dynamic CFG mainly; however, we have the option of using a static
    /// CFG").
    pub cfg_mode: CfgMode,
    /// Length of the symbolic input file; `None` derives it from the
    /// original PoC length plus slack.
    pub file_len: Option<u64>,
    /// Extra symbolic-file bytes beyond the original PoC length when
    /// `file_len` is `None` (guiding inputs may be longer than `S`'s).
    pub file_slack: u64,
    /// Concrete-execution limits (P1 on `S`, P4 on `T`). The instruction
    /// watchdog doubles as the CWE-835 infinite-loop detector.
    pub vm_limits: Limits,
    /// Taint context mode (context-aware, or the Table III context-free
    /// baseline).
    pub taint_context: ContextMode,
    /// Taint granularity (byte-level, or the word-level ablation).
    pub taint_granularity: Granularity,
    /// Directed symbolic execution instruction budget.
    pub symex_step_budget: u64,
    /// Bound on the directed engine's backtracking stack.
    pub max_fallbacks: usize,
    /// Loop acceleration inside `ℓ` (the paper's §III-D future work,
    /// implemented as an opt-in extension): forced branches are taken
    /// without charging the θ budget, so vulnerabilities needing more
    /// than θ loop iterations still verify.
    pub loop_acceleration: bool,
    /// Phase P0 (opt-in): static pre-screen of `T` before any symbolic
    /// execution. When `octo-lint`'s interprocedural analysis proves `ep`
    /// statically unreachable, or proves every call site passes constant
    /// arguments that conflict with the ones P1 recorded, the pipeline
    /// short-circuits to a Type-III verdict.
    pub static_prescreen: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            theta: 120,
            cfg_mode: CfgMode::Dynamic,
            file_len: None,
            file_slack: 64,
            vm_limits: Limits::default(),
            taint_context: ContextMode::ContextAware,
            taint_granularity: Granularity::Byte,
            symex_step_budget: 2_000_000,
            max_fallbacks: 4096,
            loop_acceleration: false,
            static_prescreen: false,
        }
    }
}

impl PipelineConfig {
    /// The Table III ablation: context-free crash-primitive extraction.
    pub fn context_free(mut self) -> PipelineConfig {
        self.taint_context = ContextMode::ContextFree;
        self
    }

    /// Uses the static CFG instead of the dynamic one.
    pub fn static_cfg(mut self) -> PipelineConfig {
        self.cfg_mode = CfgMode::Static;
        self
    }

    /// Overrides θ.
    pub fn with_theta(mut self, theta: u32) -> PipelineConfig {
        self.theta = theta;
        self
    }

    /// Enables loop acceleration (see [`PipelineConfig::loop_acceleration`]).
    pub fn accelerate_loops(mut self) -> PipelineConfig {
        self.loop_acceleration = true;
        self
    }

    /// Enables the P0 static pre-screen
    /// (see [`PipelineConfig::static_prescreen`]).
    pub fn with_static_prescreen(mut self) -> PipelineConfig {
        self.static_prescreen = true;
        self
    }

    /// The symbolic file length for a PoC of `poc_len` bytes.
    pub fn resolve_file_len(&self, poc_len: usize) -> u64 {
        self.file_len
            .unwrap_or(poc_len as u64 + self.file_slack)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.theta, 120);
        assert_eq!(c.cfg_mode, CfgMode::Dynamic);
        assert_eq!(c.taint_context, ContextMode::ContextAware);
    }

    #[test]
    fn file_len_resolution() {
        let c = PipelineConfig::default();
        assert_eq!(c.resolve_file_len(100), 164);
        let c = PipelineConfig {
            file_len: Some(32),
            ..PipelineConfig::default()
        };
        assert_eq!(c.resolve_file_len(100), 32);
        let c = PipelineConfig {
            file_len: Some(0),
            ..PipelineConfig::default()
        };
        assert_eq!(c.resolve_file_len(0), 1);
    }

    #[test]
    fn builders_toggle_modes() {
        let c = PipelineConfig::default()
            .context_free()
            .static_cfg()
            .with_theta(7);
        assert_eq!(c.taint_context, ContextMode::ContextFree);
        assert_eq!(c.cfg_mode, CfgMode::Static);
        assert_eq!(c.theta, 7);
    }
}
