//! Preprocessing: identify `ep` from the crash backtrace of `S`.
//!
//! Paper §III: run `S` on `poc`, capture the call stack at the crash (the
//! glibc `backtrace()` substitute), and pick the function that (1) belongs
//! to `ℓ` and (2) is the bottom-most such function on the stack — i.e. the
//! *first* function of `ℓ` entered while triggering `v`.

use std::fmt;

use octo_ir::{FuncId, Program};
use octo_poc::PocFile;
use octo_vm::{CrashReport, Limits, RunOutcome, Vm};

/// Why preprocessing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessError {
    /// `poc` does not crash `S`.
    NoCrash {
        /// Exit code of the clean run.
        exit_code: u64,
    },
    /// The crash stack contains no function of `ℓ`.
    NoSharedFrame,
    /// None of the `ℓ` names exist in `S`.
    SharedSetEmpty,
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::NoCrash { exit_code } => {
                write!(f, "poc does not crash S (exit {exit_code})")
            }
            PreprocessError::NoSharedFrame => {
                f.write_str("crash backtrace contains no shared function")
            }
            PreprocessError::SharedSetEmpty => f.write_str("no shared function name resolves in S"),
        }
    }
}

impl std::error::Error for PreprocessError {}

/// The preprocessing result.
#[derive(Debug, Clone)]
pub struct EpInfo {
    /// `ep` in `S`'s function namespace.
    pub ep: FuncId,
    /// `ep`'s name (identical in `T`, since the code was cloned).
    pub ep_name: String,
    /// The crash that `poc` causes in `S`.
    pub s_crash: CrashReport,
    /// Instructions the reference run executed.
    pub insts: u64,
}

/// Runs `S` on `poc` and identifies `ep`.
///
/// # Errors
/// See [`PreprocessError`].
pub fn identify_ep(
    s: &Program,
    poc: &PocFile,
    shared: &[String],
    limits: Limits,
) -> Result<EpInfo, PreprocessError> {
    let shared_ids = s.resolve_names(shared.iter().map(String::as_str));
    if shared_ids.is_empty() {
        return Err(PreprocessError::SharedSetEmpty);
    }
    let mut vm = Vm::new(s, poc.bytes()).with_limits(limits);
    match vm.run() {
        RunOutcome::Exit(exit_code) => Err(PreprocessError::NoCrash { exit_code }),
        RunOutcome::Crash(report) => {
            let ep = report
                .backtrace
                .first_in(&shared_ids)
                .ok_or(PreprocessError::NoSharedFrame)?;
            Ok(EpInfo {
                ep,
                ep_name: s.func(ep).name.clone(),
                s_crash: report,
                insts: vm.insts_executed(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    const NESTED: &str = r#"
func main() {
entry:
    fd = open
    b = getc fd
    call outer(b)
    halt 0
}
func outer(v) {
entry:
    call inner(v)
    ret
}
func inner(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

    #[test]
    fn picks_bottommost_shared_function() {
        let s = parse_program(NESTED).unwrap();
        // Both outer and inner are shared: ep must be `outer` (first of ℓ
        // on the stack).
        let info = identify_ep(
            &s,
            &PocFile::from(&b"A"[..]),
            &["outer".into(), "inner".into()],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(info.ep_name, "outer");
        assert_eq!(info.s_crash.kind.class(), "TRAP");
    }

    #[test]
    fn only_inner_shared() {
        let s = parse_program(NESTED).unwrap();
        let info = identify_ep(
            &s,
            &PocFile::from(&b"A"[..]),
            &["inner".into()],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(info.ep_name, "inner");
    }

    #[test]
    fn no_crash_is_error() {
        let s = parse_program(NESTED).unwrap();
        let err = identify_ep(
            &s,
            &PocFile::from(&b"B"[..]),
            &["inner".into()],
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, PreprocessError::NoCrash { exit_code: 0 });
    }

    #[test]
    fn crash_outside_shared_is_error() {
        let s = parse_program(NESTED).unwrap();
        let err = identify_ep(
            &s,
            &PocFile::from(&b"A"[..]),
            &["unrelated".into()],
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, PreprocessError::SharedSetEmpty);
    }
}
