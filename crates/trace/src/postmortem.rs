//! Post-mortem reports for jobs that ended not-triggerable or on a
//! deadline: what event decided the verdict, where the last state died,
//! and the tail of the flight record.

use crate::TraceEvent;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Why a verification job failed to trigger, reconstructed from the
/// flight record and the dying state. Attached to the verification
/// report on any not-triggerable or deadline verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The deciding event: `"loop-dead"`, `"program-dead"`, `"unsat"`,
    /// `"ep-unreachable"`, or `"deadline"`.
    pub event: String,
    /// `ep` entries the dying state had stitched when it died.
    pub ep_entries: u32,
    /// Total `ep` entries the crashing path needed (from P1).
    pub total_entries: u32,
    /// Path-condition size of the dying state.
    pub constraints: u64,
    /// The most recent constraint on the dying path, if any.
    pub last_constraint: Option<String>,
    /// One-sentence human explanation of where verification stopped.
    pub detail: String,
    /// The last recorded flight-record events of this job, oldest
    /// first. Empty when no recorder was installed.
    pub tail: Vec<TraceEvent>,
}

impl PostMortem {
    /// Multi-line human rendering (no trailing newline).
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "post-mortem: {} at ep entry {}/{} ({} constraints)",
            self.event, self.ep_entries, self.total_entries, self.constraints
        );
        if let Some(c) = &self.last_constraint {
            out.push_str(&format!("\n  last constraint: {c}"));
        }
        out.push_str(&format!("\n  {}", self.detail));
        if !self.tail.is_empty() {
            out.push_str(&format!("\n  last {} events:", self.tail.len()));
            for e in &self.tail {
                out.push_str(&format!("\n    {}", e.render_human()));
            }
        }
        out
    }

    /// One JSON object (single line, no trailing newline).
    pub fn render_json(&self) -> String {
        let last = match &self.last_constraint {
            Some(c) => format!("\"{}\"", json_escape(c)),
            None => "null".into(),
        };
        let tail: Vec<String> = self.tail.iter().map(|e| e.render_json()).collect();
        format!(
            "{{\"event\":\"{}\",\"ep_entries\":{},\"total_entries\":{},\"constraints\":{},\
             \"last_constraint\":{last},\"detail\":\"{}\",\"tail\":[{}]}}",
            json_escape(&self.event),
            self.ep_entries,
            self.total_entries,
            self.constraints,
            json_escape(&self.detail),
            tail.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlightRecorder, TraceKind};

    fn sample() -> PostMortem {
        let rec = FlightRecorder::new(8);
        rec.record(0, 0, TraceKind::LoopRetry { visits: 9 });
        rec.record(
            0,
            0,
            TraceKind::StateDead {
                reason: "branch-dead",
                ep_entries: 1,
                constraints: 4,
            },
        );
        PostMortem {
            event: "loop-dead".into(),
            ep_entries: 1,
            total_entries: 3,
            constraints: 4,
            last_constraint: Some("f[2] == 0x41".into()),
            detail: "every candidate exceeded the loop budget".into(),
            tail: rec.snapshot(),
        }
    }

    #[test]
    fn human_rendering_names_event_and_entry_count() {
        let text = sample().render_human();
        assert!(text.contains("loop-dead"), "{text}");
        assert!(text.contains("ep entry 1/3"), "{text}");
        assert!(text.contains("last constraint: f[2] == 0x41"), "{text}");
        assert!(text.contains("last 2 events:"), "{text}");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"event\":\"loop-dead\""), "{json}");
        assert!(json.contains("\"total_entries\":3"), "{json}");
        assert!(json.contains("\"tail\":[{"), "{json}");
        let none = PostMortem {
            last_constraint: None,
            tail: Vec::new(),
            ..sample()
        };
        let json = none.render_json();
        assert!(json.contains("\"last_constraint\":null"), "{json}");
        assert!(json.contains("\"tail\":[]"), "{json}");
    }
}
