//! Validates a Chrome Trace Event Format file produced by
//! `octopocs batch --trace-chrome`: known event names, balanced `B`/`E`
//! pairs per worker lane, non-negative timestamps and durations.
//!
//! Usage: `trace_check <trace.json>`. Exits 0 and prints a summary on
//! success, exits 1 with the first problem found otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace_check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match octo_trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "trace ok: {} events ({} B/E pairs, {} instants) across {} worker lanes",
                stats.events, stats.pairs, stats.instants, stats.lanes
            );
            if stats.pairs == 0 {
                eprintln!("trace_check: no duration pairs — expected at least the phase spans");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace_check: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
