//! octo-trace — a flight recorder for the OctoPoCs pipeline.
//!
//! The directed symbolic-execution engine (P2+P3), the solver, the P1
//! taint engine, and the P4 replay emit structured [`TraceEvent`]s into a
//! bounded, overwrite-oldest [`FlightRecorder`] ring. Each event carries
//! a monotonic sequence number, a microsecond timestamp, and the job /
//! worker id of the batch scheduler, so events from work-stealing
//! interleavings order correctly.
//!
//! Two renderers sit on top:
//!
//! * [`chrome::render_chrome`] — the Chrome Trace Event Format
//!   (`chrome://tracing`, Perfetto), with one lane per worker and the
//!   `octo_obs::Span` phases bridged as `B`/`E` duration events;
//! * [`TraceEvent::render_json`] — JSON lines in the same shape as the
//!   `octo_sched::Event` stream, so one consumer can merge both.
//!
//! On a not-triggerable or deadline verdict the pipeline synthesizes a
//! [`PostMortem`] — the last recorded events plus the dying state's
//! constraint summary — attached to the verification report.
//!
//! # Emission
//!
//! Producers call the free function [`emit`] unconditionally; it is a
//! cheap no-op unless a recorder was [`install`]ed for the current
//! thread (the batch runner installs one per job, carrying the job and
//! worker ids). This keeps the solver and engine hot paths free of
//! recorder plumbing:
//!
//! ```
//! use std::sync::Arc;
//! use octo_trace::{emit, install, FlightRecorder, TraceKind};
//!
//! emit(TraceKind::LoopRetry { visits: 3 }); // no recorder: no-op
//! let rec = Arc::new(FlightRecorder::new(1024));
//! {
//!     let _guard = install(&rec, 7, 0);
//!     emit(TraceKind::LoopRetry { visits: 4 }); // recorded as job 7
//! }
//! assert_eq!(rec.len(), 1);
//! assert_eq!(rec.snapshot()[0].job, 7);
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::Arc;

pub mod chrome;
pub mod postmortem;
pub mod ring;

pub use postmortem::PostMortem;
pub use ring::FlightRecorder;

/// What happened. Each kind maps onto one Chrome trace phase:
/// `*Begin`/`*End` pairs become `B`/`E` duration events, everything else
/// an instant (`i`).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// An `octo_obs::Span` phase opened (`"prepare"`, `"symex"`, `"p4"`).
    SpanBegin {
        /// Phase name.
        name: &'static str,
    },
    /// The matching phase closed.
    SpanEnd {
        /// Phase name.
        name: &'static str,
    },
    /// A solver entry started (full solve or `quick_feasible` pre-check).
    SolverBegin {
        /// Constraints in the set being solved.
        constraints: u64,
    },
    /// The solver entry returned.
    SolverEnd {
        /// `"sat"`, `"unsat"`, or `"unknown"`.
        result: &'static str,
        /// Wall microseconds inside the solver.
        micros: u64,
        /// Interval refutations this entry contributed (delta).
        refutations: u64,
    },
    /// A symbolic branch kept one direction and parked `siblings`
    /// alternates on the fallback stack.
    StateFork {
        /// Alternate states pushed at this fork.
        siblings: u32,
    },
    /// An alternate direction was stored for backtracking.
    FallbackPush {
        /// Stack depth after the push.
        depth: u64,
    },
    /// A stored direction was resumed after a path died.
    FallbackPop {
        /// Stack depth after the pop.
        depth: u64,
    },
    /// A branch candidate was abandoned because its block revisit count
    /// exceeded θ (a loop-state retry).
    LoopRetry {
        /// The revisit count that tripped the budget.
        visits: u32,
    },
    /// A crash-primitive bunch was asserted at an `ep` entry (P3).
    BunchAsserted {
        /// 1-based `ep` entry index.
        entry: u32,
        /// Dense payload bytes pinned.
        bytes: u64,
        /// File position indicator where the bunch landed.
        file_pos: u64,
    },
    /// A bunch placement contradicted the path condition.
    StitchInfeasible {
        /// 1-based `ep` entry index.
        entry: u32,
    },
    /// A symbolic state died.
    StateDead {
        /// Why (e.g. `"branch-dead"`, `"stitch-infeasible"`, `"exited"`).
        reason: &'static str,
        /// Bunches stitched when it died.
        ep_entries: u32,
        /// Path-condition size at death.
        constraints: u64,
    },
    /// The cooperative cancel token (per-job deadline) fired.
    CancelFired {
        /// Engine step count when the poll observed the cancel.
        step: u64,
    },
    /// The directed engine finished.
    EngineOutcome {
        /// Outcome label (e.g. `"poc-generated"`, `"loop-dead"`).
        outcome: &'static str,
        /// Total engine steps.
        steps: u64,
    },
    /// P1: the taint run over `S` entered `ep`.
    EpEntered {
        /// 1-based `ep` entry index.
        entry: u32,
    },
    /// P1: a crash-primitive bunch was closed and recorded.
    BunchRecorded {
        /// 1-based `ep` entry index.
        entry: u32,
        /// Dense payload bytes recorded.
        bytes: u64,
    },
    /// P4: the concrete replay of `T` under `poc'` finished.
    P4Replay {
        /// Instructions executed.
        insts: u64,
        /// Whether the replay crashed.
        crashed: bool,
    },
    /// An `octo-faults` injection site fired under the active fault plan.
    FaultInjected {
        /// Stable site label (e.g. `"directed-panic"`, `"cache-miss"`).
        site: &'static str,
    },
    /// The batch runner scheduled a retry of a transiently failed job.
    RetryScheduled {
        /// The 1-based attempt that just failed.
        attempt: u32,
        /// Backoff slept before the next attempt.
        backoff_micros: u64,
    },
    /// The batch runner quarantined a job after exhausting its retry
    /// budget (verdict preserved, batch continues).
    JobQuarantined {
        /// Total attempts the job consumed.
        attempts: u32,
    },
    /// The scheduler watchdog escalated a silent job to its cancel token.
    WatchdogFired {
        /// Heartbeats the job had recorded when escalation fired.
        beats: u64,
    },
    /// Clone retrieval scored a (source function, target function)
    /// candidate at or above threshold.
    CandidateScored {
        /// Combined score in centi-units (`score * 100`, rounded).
        score_centi: u32,
    },
    /// A one-to-many scan expanded an (S, targets…) request into batch
    /// jobs with discovered shared sets.
    ScanExpanded {
        /// Candidates retained across all targets.
        candidates: u32,
        /// Batch jobs emitted.
        jobs: u32,
    },
    /// The disk blob store detected a corrupt entry and moved it to
    /// `quarantine/` before recomputing the artifact.
    CacheQuarantined {
        /// The 64-bit cache key of the quarantined blob.
        key: u64,
    },
}

impl TraceKind {
    /// The event name (Chrome `name` field / JSON-lines `event` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::SpanBegin { name } | TraceKind::SpanEnd { name } => name,
            TraceKind::SolverBegin { .. } | TraceKind::SolverEnd { .. } => "solve",
            TraceKind::StateFork { .. } => "state_fork",
            TraceKind::FallbackPush { .. } => "fallback_push",
            TraceKind::FallbackPop { .. } => "fallback_pop",
            TraceKind::LoopRetry { .. } => "loop_retry",
            TraceKind::BunchAsserted { .. } => "bunch_asserted",
            TraceKind::StitchInfeasible { .. } => "stitch_infeasible",
            TraceKind::StateDead { .. } => "state_dead",
            TraceKind::CancelFired { .. } => "cancel_fired",
            TraceKind::EngineOutcome { .. } => "engine_outcome",
            TraceKind::EpEntered { .. } => "ep_entered",
            TraceKind::BunchRecorded { .. } => "bunch_recorded",
            TraceKind::P4Replay { .. } => "p4_replay",
            TraceKind::FaultInjected { .. } => "fault_injected",
            TraceKind::RetryScheduled { .. } => "retry_scheduled",
            TraceKind::JobQuarantined { .. } => "job_quarantined",
            TraceKind::WatchdogFired { .. } => "watchdog_fired",
            TraceKind::CandidateScored { .. } => "candidate_scored",
            TraceKind::ScanExpanded { .. } => "scan_expanded",
            TraceKind::CacheQuarantined { .. } => "cache_quarantined",
        }
    }

    /// The Chrome trace phase: `'B'` begin, `'E'` end, `'i'` instant.
    pub fn phase(&self) -> char {
        match self {
            TraceKind::SpanBegin { .. } | TraceKind::SolverBegin { .. } => 'B',
            TraceKind::SpanEnd { .. } | TraceKind::SolverEnd { .. } => 'E',
            _ => 'i',
        }
    }

    /// The kind-specific payload as JSON object fields (no braces), e.g.
    /// `"visits":4`. Empty for field-less kinds.
    pub fn args_json(&self) -> String {
        match self {
            TraceKind::SpanBegin { .. } | TraceKind::SpanEnd { .. } => String::new(),
            TraceKind::SolverBegin { constraints } => format!("\"constraints\":{constraints}"),
            TraceKind::SolverEnd {
                result,
                micros,
                refutations,
            } => {
                format!("\"result\":\"{result}\",\"micros\":{micros},\"refutations\":{refutations}")
            }
            TraceKind::StateFork { siblings } => format!("\"siblings\":{siblings}"),
            TraceKind::FallbackPush { depth } | TraceKind::FallbackPop { depth } => {
                format!("\"depth\":{depth}")
            }
            TraceKind::LoopRetry { visits } => format!("\"visits\":{visits}"),
            TraceKind::BunchAsserted {
                entry,
                bytes,
                file_pos,
            } => format!("\"entry\":{entry},\"bytes\":{bytes},\"file_pos\":{file_pos}"),
            TraceKind::StitchInfeasible { entry } => format!("\"entry\":{entry}"),
            TraceKind::StateDead {
                reason,
                ep_entries,
                constraints,
            } => format!(
                "\"reason\":\"{reason}\",\"ep_entries\":{ep_entries},\"constraints\":{constraints}"
            ),
            TraceKind::CancelFired { step } => format!("\"step\":{step}"),
            TraceKind::EngineOutcome { outcome, steps } => {
                format!("\"outcome\":\"{outcome}\",\"steps\":{steps}")
            }
            TraceKind::EpEntered { entry } => format!("\"entry\":{entry}"),
            TraceKind::BunchRecorded { entry, bytes } => {
                format!("\"entry\":{entry},\"bytes\":{bytes}")
            }
            TraceKind::P4Replay { insts, crashed } => {
                format!("\"insts\":{insts},\"crashed\":{crashed}")
            }
            TraceKind::FaultInjected { site } => format!("\"site\":\"{site}\""),
            TraceKind::RetryScheduled {
                attempt,
                backoff_micros,
            } => format!("\"attempt\":{attempt},\"backoff_micros\":{backoff_micros}"),
            TraceKind::JobQuarantined { attempts } => format!("\"attempts\":{attempts}"),
            TraceKind::WatchdogFired { beats } => format!("\"beats\":{beats}"),
            TraceKind::CandidateScored { score_centi } => {
                format!("\"score_centi\":{score_centi}")
            }
            TraceKind::ScanExpanded { candidates, jobs } => {
                format!("\"candidates\":{candidates},\"jobs\":{jobs}")
            }
            TraceKind::CacheQuarantined { key } => format!("\"key\":{key}"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (global per recorder; total order).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub ts_micros: u64,
    /// Batch submission index of the job that emitted the event.
    pub job: u32,
    /// Scheduler worker the job was running on when it emitted.
    pub worker: u32,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// One JSON-lines object (no trailing newline), in the same shape as
    /// `octo_sched::Event::render_json` so the two streams merge: the
    /// `event` key names the kind, `ts_us`/`worker`/`job` follow, then
    /// the kind-specific payload.
    pub fn render_json(&self) -> String {
        let args = self.kind.args_json();
        let sep = if args.is_empty() { "" } else { "," };
        format!(
            "{{\"event\":\"{}\",\"ts_us\":{},\"worker\":{},\"job\":{},\"seq\":{}{sep}{args}}}",
            self.kind.name(),
            self.ts_micros,
            self.worker,
            self.job,
            self.seq,
        )
    }

    /// One human-readable log line (no trailing newline).
    pub fn render_human(&self) -> String {
        let args = self.kind.args_json();
        format!(
            "[{:>3}/w{}] {:>10}µs {} {}",
            self.job,
            self.worker,
            self.ts_micros,
            self.kind.name(),
            args
        )
    }
}

/// The per-thread emission context: which recorder, which job, which
/// worker. Installed by the batch runner around each job.
struct JobCtx {
    recorder: Arc<FlightRecorder>,
    job: u32,
    worker: u32,
}

thread_local! {
    static CTX: RefCell<Option<JobCtx>> = const { RefCell::new(None) };
}

/// Restores the previous emission context on drop (see [`install`]).
#[must_use = "dropping the guard uninstalls the recorder"]
pub struct TraceGuard {
    prev: Option<JobCtx>,
    installed: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.installed {
            let prev = self.prev.take();
            CTX.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Installs `recorder` as the current thread's emission target, stamped
/// with `job`/`worker`, until the returned guard drops. Nested installs
/// restore the outer context.
pub fn install(recorder: &Arc<FlightRecorder>, job: u32, worker: u32) -> TraceGuard {
    let prev = CTX.with(|c| {
        c.borrow_mut().replace(JobCtx {
            recorder: Arc::clone(recorder),
            job,
            worker,
        })
    });
    TraceGuard {
        prev,
        installed: true,
    }
}

/// Whether the current thread has a recorder installed. Producers whose
/// event payload is expensive to compute gate on this; plain [`emit`]
/// calls do not need to.
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Records one event against the current thread's job context. A cheap
/// no-op when no recorder is installed.
pub fn emit(kind: TraceKind) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.recorder.record(ctx.job, ctx.worker, kind);
        }
    });
}

/// The last `n` recorded events of the current thread's job, oldest
/// first. Empty when no recorder is installed.
pub fn job_tail(n: usize) -> Vec<TraceEvent> {
    CTX.with(|c| match c.borrow().as_ref() {
        Some(ctx) => ctx.recorder.tail_for_job(ctx.job, n),
        None => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_recorder_is_a_noop() {
        assert!(!is_active());
        emit(TraceKind::LoopRetry { visits: 1 });
        assert!(job_tail(8).is_empty());
    }

    #[test]
    fn install_scopes_the_context() {
        let rec = Arc::new(FlightRecorder::new(16));
        {
            let _g = install(&rec, 3, 1);
            assert!(is_active());
            emit(TraceKind::StateFork { siblings: 2 });
            {
                // Nested install points elsewhere, then restores.
                let inner = Arc::new(FlightRecorder::new(16));
                let _g2 = install(&inner, 9, 0);
                emit(TraceKind::CancelFired { step: 5 });
                assert_eq!(inner.len(), 1);
            }
            emit(TraceKind::FallbackPop { depth: 0 });
        }
        assert!(!is_active());
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.job == 3 && e.worker == 1));
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].ts_micros <= events[1].ts_micros);
    }

    #[test]
    fn job_tail_filters_by_current_job() {
        let rec = Arc::new(FlightRecorder::new(64));
        {
            let _g = install(&rec, 1, 0);
            emit(TraceKind::LoopRetry { visits: 1 });
        }
        {
            let _g = install(&rec, 2, 0);
            emit(TraceKind::LoopRetry { visits: 2 });
            emit(TraceKind::LoopRetry { visits: 3 });
            let tail = job_tail(8);
            assert_eq!(tail.len(), 2);
            assert!(tail.iter().all(|e| e.job == 2));
            assert_eq!(job_tail(1).len(), 1);
            assert!(matches!(
                job_tail(1)[0].kind,
                TraceKind::LoopRetry { visits: 3 }
            ));
        }
    }

    #[test]
    fn json_rendering_is_one_object_per_event() {
        let rec = Arc::new(FlightRecorder::new(8));
        rec.record(
            0,
            0,
            TraceKind::SolverEnd {
                result: "unsat",
                micros: 12,
                refutations: 1,
            },
        );
        let json = rec.snapshot()[0].render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"event\":\"solve\""), "{json}");
        assert!(json.contains("\"result\":\"unsat\""), "{json}");
        assert!(!rec.snapshot()[0].render_human().is_empty());
    }

    #[test]
    fn every_kind_has_a_name_and_phase() {
        let kinds = [
            TraceKind::SpanBegin { name: "symex" },
            TraceKind::SpanEnd { name: "symex" },
            TraceKind::SolverBegin { constraints: 1 },
            TraceKind::SolverEnd {
                result: "sat",
                micros: 0,
                refutations: 0,
            },
            TraceKind::StateFork { siblings: 1 },
            TraceKind::FallbackPush { depth: 1 },
            TraceKind::FallbackPop { depth: 0 },
            TraceKind::LoopRetry { visits: 1 },
            TraceKind::BunchAsserted {
                entry: 1,
                bytes: 2,
                file_pos: 3,
            },
            TraceKind::StitchInfeasible { entry: 1 },
            TraceKind::StateDead {
                reason: "exited",
                ep_entries: 0,
                constraints: 0,
            },
            TraceKind::CancelFired { step: 0 },
            TraceKind::EngineOutcome {
                outcome: "unsat",
                steps: 1,
            },
            TraceKind::EpEntered { entry: 1 },
            TraceKind::BunchRecorded { entry: 1, bytes: 0 },
            TraceKind::P4Replay {
                insts: 1,
                crashed: true,
            },
            TraceKind::FaultInjected { site: "cache-miss" },
            TraceKind::RetryScheduled {
                attempt: 1,
                backoff_micros: 250,
            },
            TraceKind::JobQuarantined { attempts: 3 },
            TraceKind::WatchdogFired { beats: 7 },
        ];
        for k in kinds {
            assert!(!k.name().is_empty());
            assert!(matches!(k.phase(), 'B' | 'E' | 'i'));
        }
    }
}
