//! The bounded, overwrite-oldest event ring.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{TraceEvent, TraceKind};

/// Default ring capacity when the caller does not choose one.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Ring {
    /// Fixed-capacity storage; grows up to `capacity` then wraps.
    slots: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once `slots` is full.
    head: usize,
}

/// A bounded flight recorder: the last `capacity` events, shared across
/// the scheduler's worker threads. When full it overwrites the oldest
/// event and counts the loss in [`FlightRecorder::dropped`] — recording
/// never blocks on the consumer and never allocates past the cap.
pub struct FlightRecorder {
    origin: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            origin: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                slots: Vec::new(),
                capacity,
                head: 0,
            }),
        }
    }

    /// Creates a recorder with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }

    /// Records one event, stamping it with the next sequence number and
    /// the microseconds since the recorder was created.
    pub fn record(&self, job: u32, worker: u32, kind: TraceKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_micros = self.origin.elapsed().as_micros() as u64;
        let event = TraceEvent {
            seq,
            ts_micros,
            job,
            worker,
            kind,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.slots.len() < ring.capacity {
            ring.slots.push(event);
        } else {
            let head = ring.head;
            ring.slots[head] = event;
            ring.head = (head + 1) % ring.capacity;
            drop(ring);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All retained events, oldest first (by sequence number).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().unwrap();
        let mut events: Vec<TraceEvent> = ring.slots.clone();
        drop(ring);
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The last `n` retained events of `job`, oldest first.
    pub fn tail_for_job(&self, job: u32, n: usize) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = {
            let ring = self.ring.lock().unwrap();
            ring.slots
                .iter()
                .filter(|e| e.job == job)
                .cloned()
                .collect()
        };
        events.sort_by_key(|e| e.seq);
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().slots.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn retains_in_order_until_capacity() {
        let rec = FlightRecorder::new(4);
        for i in 0..3 {
            rec.record(0, 0, TraceKind::LoopRetry { visits: i });
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 0);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(matches!(e.kind, TraceKind::LoopRetry { visits } if visits == i as u32));
        }
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(0, 0, TraceKind::LoopRetry { visits: i });
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn tail_for_job_filters_and_limits() {
        let rec = FlightRecorder::new(32);
        for i in 0..6 {
            rec.record(i % 2, 0, TraceKind::FallbackPush { depth: i as u64 });
        }
        let tail = rec.tail_for_job(1, 2);
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|e| e.job == 1));
        assert!(tail[0].seq < tail[1].seq);
        assert_eq!(rec.tail_for_job(7, 4).len(), 0);
    }

    #[test]
    fn timestamps_never_decrease_in_seq_order() {
        let rec = FlightRecorder::new(128);
        for _ in 0..100 {
            rec.record(0, 0, TraceKind::CancelFired { step: 1 });
        }
        let events = rec.snapshot();
        for pair in events.windows(2) {
            assert!(pair[0].ts_micros <= pair[1].ts_micros);
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn concurrent_recording_keeps_unique_seqs() {
        let rec = Arc::new(FlightRecorder::new(4096));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    for i in 0..256 {
                        rec.record(w, w, TraceKind::LoopRetry { visits: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 1024);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 1024);
    }
}
