//! Chrome Trace Event Format renderer and validator.
//!
//! The output is a `{"traceEvents":[...]}` JSON object, one event per
//! line, loadable in `chrome://tracing` or Perfetto. Worker indices
//! become thread lanes (`tid`), named via `M` metadata records; span and
//! solver begin/end pairs become `B`/`E` duration events; everything
//! else becomes a thread-scoped instant (`"ph":"i","s":"t"`). Each
//! event's `args` carry the job id, the recorder sequence number, and
//! the kind-specific payload, so the full flight record survives the
//! conversion.

use std::collections::BTreeSet;

use crate::TraceEvent;

/// Every `name` the renderer can produce (metadata records aside).
/// [`validate`] rejects anything else.
pub const KNOWN_EVENT_NAMES: &[&str] = &[
    "prepare",
    "symex",
    "p4",
    "solve",
    "state_fork",
    "fallback_push",
    "fallback_pop",
    "loop_retry",
    "bunch_asserted",
    "stitch_infeasible",
    "state_dead",
    "cancel_fired",
    "engine_outcome",
    "ep_entered",
    "bunch_recorded",
    "p4_replay",
    "fault_injected",
    "retry_scheduled",
    "job_quarantined",
    "watchdog_fired",
    "candidate_scored",
    "scan_expanded",
    "cache_quarantined",
];

/// Renders `events` (any order; re-sorted by sequence number) as a
/// Chrome Trace Event Format document.
///
/// The renderer is defensive about ring overwrites: an `E` whose `B`
/// was evicted is dropped, and a `B` whose `E` was never recorded is
/// closed at the last timestamp seen on its lane, so the output always
/// has balanced begin/end pairs.
pub fn render_chrome(events: &[TraceEvent]) -> String {
    let mut events: Vec<&TraceEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);

    let workers: BTreeSet<u32> = events.iter().map(|e| e.worker).collect();
    let mut lines: Vec<String> = Vec::with_capacity(events.len() + workers.len());
    for w in &workers {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\
             \"args\":{{\"name\":\"worker {w}\"}}}}"
        ));
    }

    // Per-worker stack of open B events: (name, line holding the B).
    let mut open: Vec<Vec<(&'static str, usize)>> = Vec::new();
    let mut last_ts: Vec<u64> = Vec::new();
    let lane = |w: u32, open: &mut Vec<Vec<(&'static str, usize)>>, last: &mut Vec<u64>| {
        let w = w as usize;
        while open.len() <= w {
            open.push(Vec::new());
            last.push(0);
        }
        w
    };

    for e in &events {
        let w = lane(e.worker, &mut open, &mut last_ts);
        last_ts[w] = last_ts[w].max(e.ts_micros);
        let name = e.kind.name();
        let args = e.kind.args_json();
        let sep = if args.is_empty() { "" } else { "," };
        let args = format!("{{\"job\":{},\"seq\":{}{sep}{args}}}", e.job, e.seq);
        match e.kind.phase() {
            'B' => {
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"args\":{args}}}",
                    e.worker, e.ts_micros
                ));
                open[w].push((name, lines.len() - 1));
            }
            'E' => match open[w].last() {
                Some((b_name, _)) if *b_name == name => {
                    open[w].pop();
                    lines.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\
                         \"args\":{args}}}",
                        e.worker, e.ts_micros
                    ));
                }
                // The matching B was overwritten in the ring: drop the E.
                _ => {}
            },
            _ => {
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"s\":\"t\",\"args\":{args}}}",
                    e.worker, e.ts_micros
                ));
            }
        }
    }

    // Close anything left open (its E was never recorded) at the lane's
    // last timestamp, innermost first.
    for (w, stack) in open.iter().enumerate() {
        for (name, _) in stack.iter().rev() {
            lines.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":1,\"tid\":{w},\"ts\":{},\
                 \"args\":{{\"synthesized\":true}}}}",
                last_ts[w]
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Summary returned by a successful [`validate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChromeStats {
    /// Trace events checked (metadata records excluded).
    pub events: usize,
    /// Balanced `B`/`E` duration pairs.
    pub pairs: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct worker lanes.
    pub lanes: usize,
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn field_num(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    digits.parse().ok()
}

/// Checks a [`render_chrome`] document: known event names only,
/// non-negative timestamps, every lane's `B`/`E` events balanced (LIFO,
/// matching names, `E.ts >= B.ts`) with nothing left open. Returns
/// counts on success, the first problem found on failure.
pub fn validate(text: &str) -> Result<ChromeStats, String> {
    if !text.trim_start().starts_with("{\"traceEvents\":[") {
        return Err("missing traceEvents envelope".into());
    }
    let mut stats = ChromeStats::default();
    let mut lanes: BTreeSet<i64> = BTreeSet::new();
    // tid -> stack of (name, ts) for open B events.
    let mut open: Vec<(i64, String, i64)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\"") {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let ph = field_str(line, "ph").ok_or_else(|| at("missing ph".into()))?;
        let name = field_str(line, "name")
            .ok_or_else(|| at("missing name".into()))?
            .to_string();
        if ph == "M" {
            continue;
        }
        let tid = field_num(line, "tid").ok_or_else(|| at("missing tid".into()))?;
        let ts = field_num(line, "ts").ok_or_else(|| at("missing ts".into()))?;
        if ts < 0 {
            return Err(at(format!("negative ts {ts}")));
        }
        if !KNOWN_EVENT_NAMES.contains(&name.as_str()) {
            return Err(at(format!("unknown event name {name:?}")));
        }
        lanes.insert(tid);
        stats.events += 1;
        match ph {
            "B" => open.push((tid, name, ts)),
            "E" => {
                let top = open.iter().rposition(|(t, _, _)| *t == tid);
                let Some(top) = top else {
                    return Err(at(format!("E {name:?} on tid {tid} with no open B")));
                };
                let (_, b_name, b_ts) = open.remove(top);
                if b_name != name {
                    return Err(at(format!("E {name:?} closes B {b_name:?}")));
                }
                if ts < b_ts {
                    return Err(at(format!("negative duration: E ts {ts} < B ts {b_ts}")));
                }
                stats.pairs += 1;
            }
            "i" => {
                if field_str(line, "s") != Some("t") {
                    return Err(at("instant without thread scope".into()));
                }
                stats.instants += 1;
            }
            other => return Err(at(format!("unknown phase {other:?}"))),
        }
    }
    if let Some((tid, name, _)) = open.first() {
        return Err(format!("unclosed B {name:?} on tid {tid}"));
    }
    stats.lanes = lanes.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlightRecorder, TraceKind};

    fn sample() -> Vec<TraceEvent> {
        let rec = FlightRecorder::new(64);
        rec.record(0, 0, TraceKind::SpanBegin { name: "symex" });
        rec.record(0, 0, TraceKind::SolverBegin { constraints: 3 });
        rec.record(
            0,
            0,
            TraceKind::SolverEnd {
                result: "sat",
                micros: 10,
                refutations: 0,
            },
        );
        rec.record(0, 0, TraceKind::LoopRetry { visits: 2 });
        rec.record(0, 0, TraceKind::SpanEnd { name: "symex" });
        rec.record(1, 1, TraceKind::SpanBegin { name: "p4" });
        rec.record(1, 1, TraceKind::SpanEnd { name: "p4" });
        rec.snapshot()
    }

    #[test]
    fn renders_valid_balanced_trace() {
        let text = render_chrome(&sample());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.pairs, 3);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.lanes, 2);
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"worker 1\""));
    }

    #[test]
    fn orphan_end_is_dropped_and_orphan_begin_is_closed() {
        let rec = FlightRecorder::new(64);
        rec.record(0, 0, TraceKind::SpanEnd { name: "symex" });
        rec.record(0, 0, TraceKind::SpanBegin { name: "p4" });
        rec.record(0, 0, TraceKind::LoopRetry { visits: 1 });
        let text = render_chrome(&rec.snapshot());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.pairs, 1);
        assert!(text.contains("\"synthesized\":true"));
    }

    #[test]
    fn validate_rejects_unknown_names_and_imbalance() {
        let bad = "{\"traceEvents\":[\n\
                   {\"name\":\"mystery\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1,\"s\":\"t\",\"args\":{}}\n\
                   ]}";
        assert!(validate(bad).unwrap_err().contains("unknown event name"));
        let unclosed = "{\"traceEvents\":[\n\
                        {\"name\":\"symex\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1,\"args\":{}}\n\
                        ]}";
        assert!(validate(unclosed).unwrap_err().contains("unclosed B"));
        let crossed = "{\"traceEvents\":[\n\
                       {\"name\":\"symex\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1,\"args\":{}},\n\
                       {\"name\":\"p4\",\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":2,\"args\":{}}\n\
                       ]}";
        assert!(validate(crossed).unwrap_err().contains("closes B"));
    }

    #[test]
    fn validate_rejects_negative_duration() {
        let neg = "{\"traceEvents\":[\n\
                   {\"name\":\"symex\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":9,\"args\":{}},\n\
                   {\"name\":\"symex\",\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":3,\"args\":{}}\n\
                   ]}";
        assert!(validate(neg).unwrap_err().contains("negative duration"));
    }
}
