//! # octo-fuzz — greybox fuzzing baselines (AFLFast and AFLGo).
//!
//! Table V of the paper compares OctoPoCs against AFLFast (coverage-based
//! greybox fuzzing with power schedules) and AFLGo (directed greybox
//! fuzzing), each given 20 hours. This crate reimplements both baselines
//! over the MicroIR VM:
//!
//! * an AFL-style **edge-coverage bitmap** with hit-count bucketing
//!   ([`coverage`]),
//! * the AFL **mutation pipeline**: deterministic bitflip/arith/interest
//!   stages plus stacked havoc and splicing ([`mutate`]),
//! * the **AFLFast FAST power schedule** — energy grows with how often a
//!   seed was fuzzed and shrinks with how often its path was exercised
//!   ([`queue`]),
//! * the **AFLGo annealing schedule** — seed energy scales with the seed's
//!   distance to the target over the *static* CFG; when the target is
//!   statically unreachable (MuPDF's indirect dispatch), AFLGo aborts with
//!   a tool error, matching the `Error†` cell of Table V ([`aflgo`]).
//!
//! Time is measured on the **virtual clock** (executed instructions,
//! [`octo_vm::INSTS_PER_SECOND`]): the paper's 20-hour wall-clock budget
//! becomes a deterministic instruction budget, so the comparison is exact
//! and reproducible.
//!
//! A crash only counts as *verifying the propagated vulnerability* when
//! its backtrace enters the shared code area `ℓ` — the same acceptance
//! criterion the paper applies.

//!
//! ```
//! use octo_fuzz::{run_aflfast, FuzzConfig, FuzzOutcome, FuzzTarget};
//! use octo_ir::parse::parse_program;
//!
//! let p = parse_program(
//!     "func main() {\nentry:\n fd = open\n call decode(fd)\n halt 0\n}\n\
//!      func decode(fd) {\nentry:\n b = getc fd\n c = ugt b, 200\n \
//!      br c, boom, fine\nboom:\n trap 1\nfine:\n ret\n}\n",
//! )?;
//! let target = FuzzTarget {
//!     program: &p,
//!     shared: vec![p.func_by_name("decode").expect("exists")],
//!     limits: octo_vm::Limits::default(),
//! };
//! let config = FuzzConfig {
//!     budget_virtual_secs: 60.0,
//!     ..FuzzConfig::default()
//! };
//! match run_aflfast(&target, &[vec![0u8; 4]], config) {
//!     FuzzOutcome::CrashFound { input, .. } => assert!(input.iter().any(|&b| b > 200)),
//!     other => panic!("shallow bug should fall quickly: {other:?}"),
//! }
//! # Ok::<(), octo_ir::parse::ParseError>(())
//! ```
#![warn(missing_docs)]

pub mod aflgo;
pub mod coverage;
pub mod fuzzer;
pub mod mutate;
pub mod queue;
pub mod trim;

pub use aflgo::run_aflgo;
pub use coverage::{Bitmap, CoverageHook, MAP_SIZE};
pub use fuzzer::{
    run_aflfast, run_aflfast_with_schedule, FuzzConfig, FuzzOutcome, FuzzStats, FuzzTarget,
};
pub use mutate::Mutator;
pub use queue::{QueueEntry, Schedule};
pub use trim::{trim_input, TrimResult};
