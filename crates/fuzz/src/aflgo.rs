//! The AFLGo baseline: directed greybox fuzzing.
//!
//! AFLGo instruments the target with per-block distances to the target
//! location (computed over the *static* CFG at build time) and schedules
//! seed energy by simulated annealing over those distances. Two properties
//! of the real tool are reproduced:
//!
//! * **Distance instrumentation requires a static CFG path** to the
//!   target. When the only route is an indirect jump the static CFG cannot
//!   resolve (the MuPDF dispatch), instrumentation fails and the tool
//!   errors out — the `Error†` cell of Table V.
//! * **The input itself is still found by random mutation.** Unlike
//!   OctoPoCs, AFLGo knows *where* to go but not *what bytes* get there
//!   ("the input value to reach the vulnerable location in AFLGo was
//!   randomly generated"), so magic-byte gates stay hard.

use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_ir::FuncId;

use crate::fuzzer::{Campaign, FuzzConfig, FuzzOutcome, FuzzTarget};
use crate::queue::Schedule;

/// Runs an AFLGo campaign directed at `target_func`.
///
/// Returns [`FuzzOutcome::ToolError`] when the static CFG provides no
/// distance from the program entry to the target (the instrumentation
/// pass has nothing to emit).
pub fn run_aflgo(
    target: &FuzzTarget<'_>,
    target_func: FuncId,
    seeds: &[Vec<u8>],
    config: FuzzConfig,
) -> FuzzOutcome {
    // Build-time distance instrumentation over the static CFG.
    let cfg = match build_cfg(target.program, CfgMode::Static) {
        Ok(c) => c,
        Err(e) => {
            return FuzzOutcome::ToolError {
                message: format!("static CFG construction failed: {e}"),
            }
        }
    };
    let map = DistanceMap::compute(target.program, &cfg, target_func);
    let entry = target.program.entry();
    let entry_block = target.program.func(entry).entry();
    if !map.reaches(entry, entry_block) {
        return FuzzOutcome::ToolError {
            message: format!(
                "distance instrumentation failed: no static path from entry to `{}` \
                 (indirect control flow unresolved)",
                target.program.func(target_func).name
            ),
        };
    }
    let max_d = map.max_distance().max(1) as f64;
    let distance_fn = move |blocks: &[(FuncId, octo_ir::BlockId)]| -> Option<f64> {
        // AFLGo seed distance: mean over executed blocks that have a
        // defined distance, normalised to [0,1].
        let ds: Vec<f64> = blocks
            .iter()
            .filter_map(|(f, b)| map.get(*f, *b))
            .map(|d| f64::from(d) / max_d)
            .collect();
        if ds.is_empty() {
            None
        } else {
            Some(ds.iter().sum::<f64>() / ds.len() as f64)
        }
    };
    let mut campaign = Campaign::new(target, config, Some(&distance_fn));
    campaign.run(seeds, |progress| Schedule::AflGo { progress })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_vm::Limits;

    #[test]
    fn aflgo_errors_on_indirect_only_path() {
        // The only way to the target crosses an unresolvable ijmp.
        let src = r#"
func main() {
entry:
    t = 0xB10C_0000_0000_0002
    ijmp t
mid:
    call decode(0)
    halt 0
}
func decode(fd) {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let decode = p.func_by_name("decode").unwrap();
        let target = FuzzTarget {
            program: &p,
            shared: vec![decode],
            limits: Limits::default(),
        };
        let outcome = run_aflgo(&target, decode, &[vec![0]], FuzzConfig::default());
        match outcome {
            FuzzOutcome::ToolError { message } => {
                assert!(message.contains("decode"), "{message}");
            }
            other => panic!("expected tool error, got {other:?}"),
        }
    }

    #[test]
    fn aflgo_cracks_shallow_directed_bug() {
        let src = r#"
func main() {
entry:
    fd = open
    h = getc fd
    ok = eq h, 0x47
    br ok, body, rej
body:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    buf = alloc 32
    size = getc fd
    big = ugt size, 32
    br big, boom, fine
boom:
    store.1 buf + 33, 1
    halt 9
fine:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let decode = p.func_by_name("decode").unwrap();
        let target = FuzzTarget {
            program: &p,
            shared: vec![decode],
            limits: Limits::default(),
        };
        let config = FuzzConfig {
            budget_virtual_secs: 3600.0,
            ..FuzzConfig::default()
        };
        let outcome = run_aflgo(&target, decode, &[vec![0x47, 4]], config);
        match outcome {
            FuzzOutcome::CrashFound { input, .. } => {
                assert_eq!(input[0], 0x47);
                assert!(input[1] > 32);
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn aflgo_exhausts_on_magic_gate() {
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 4
    v = load.4 buf
    ok = eq v, 0xCAFEBABE
    br ok, body, rej
body:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    trap 1
}
"#;
        let p = parse_program(src).unwrap();
        let decode = p.func_by_name("decode").unwrap();
        let target = FuzzTarget {
            program: &p,
            shared: vec![decode],
            limits: Limits::default(),
        };
        let config = FuzzConfig {
            budget_virtual_secs: 5.0,
            ..FuzzConfig::default()
        };
        let outcome = run_aflgo(&target, decode, &[vec![0; 8]], config);
        assert!(matches!(outcome, FuzzOutcome::BudgetExhausted { .. }));
    }
}
