//! AFL-style edge coverage.

use octo_ir::{BlockId, FuncId};
use octo_vm::Hook;

/// Size of the coverage map (power of two). AFL uses 64 KiB for real
/// binaries; MicroIR corpus programs have at most a few hundred edges, so
/// a 4 KiB map keeps the per-execution classify/hash/merge scans cheap
/// while preserving AFL's collision behaviour.
pub const MAP_SIZE: usize = 1 << 12;

/// A hit-count map over hashed control-flow edges.
#[derive(Clone)]
pub struct Bitmap {
    map: Vec<u8>,
}

impl Bitmap {
    /// An all-zero map.
    pub fn new() -> Bitmap {
        Bitmap {
            map: vec![0; MAP_SIZE],
        }
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// Saturating increment of one slot.
    pub fn hit(&mut self, index: usize) {
        let slot = &mut self.map[index & (MAP_SIZE - 1)];
        *slot = slot.saturating_add(1);
    }

    /// Clears all slots.
    pub fn reset(&mut self) {
        self.map.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of non-zero slots (edges covered).
    pub fn count_edges(&self) -> usize {
        self.map.iter().filter(|&&b| b != 0).count()
    }

    /// AFL's hit-count bucketing: collapse raw counts into the classic
    /// 8-bucket classes so loop iteration noise does not look like new
    /// coverage.
    pub fn classify(&mut self) {
        for b in self.map.iter_mut() {
            *b = bucket(*b);
        }
    }

    /// Merges `trace` (already classified) into this virgin map. Returns
    /// `true` when the trace contains coverage not seen before.
    pub fn merge_has_new(&mut self, trace: &Bitmap) -> bool {
        let mut new = false;
        for (v, t) in self.map.iter_mut().zip(trace.map.iter()) {
            if *t != 0 && (*v & *t) != *t {
                *v |= *t;
                new = true;
            }
        }
        new
    }

    /// A stable 64-bit hash of the classified trace — AFLFast's path
    /// identifier (used for the path-frequency statistic `f(i)`).
    pub fn path_hash(&self) -> u64 {
        // FNV-1a over non-zero (index, value) pairs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, &b) in self.map.iter().enumerate() {
            if b != 0 {
                for byte in [(i & 0xFF) as u8, (i >> 8) as u8, b] {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }
}

impl Default for Bitmap {
    fn default() -> Bitmap {
        Bitmap::new()
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap({} edges)", self.count_edges())
    }
}

fn bucket(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

/// Hashes an intraprocedural edge into a map slot (the `cur_location ^
/// prev_location >> 1` trick, precomputed per edge).
pub fn edge_index(func: FuncId, from: BlockId, to: BlockId) -> usize {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [u64::from(func.0), u64::from(from.0), u64::from(to.0)] {
        h ^= v
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
    }
    (h as usize) & (MAP_SIZE - 1)
}

/// VM hook recording edge coverage plus the set of blocks entered (the
/// block set feeds AFLGo's seed-distance computation).
#[derive(Debug)]
pub struct CoverageHook {
    /// The per-execution trace map.
    pub trace: Bitmap,
    /// Blocks entered during the execution.
    pub blocks: Vec<(FuncId, BlockId)>,
}

impl CoverageHook {
    /// A fresh hook with empty trace.
    pub fn new() -> CoverageHook {
        CoverageHook {
            trace: Bitmap::new(),
            blocks: Vec::new(),
        }
    }

    /// Clears the trace for the next execution.
    pub fn reset(&mut self) {
        self.trace.reset();
        self.blocks.clear();
    }
}

impl Default for CoverageHook {
    fn default() -> CoverageHook {
        CoverageHook::new()
    }
}

impl Hook for CoverageHook {
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.trace.hit(edge_index(func, from, to));
        self.blocks.push((func, to));
    }

    fn on_call(&mut self, callee: FuncId, _args: &[u64], _depth: usize) {
        self.blocks.push((callee, BlockId(0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_monotone_classes() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 4);
        assert_eq!(bucket(5), 8);
        assert_eq!(bucket(200), 128);
    }

    #[test]
    fn merge_detects_new_coverage() {
        let mut virgin = Bitmap::new();
        let mut trace = Bitmap::new();
        trace.hit(10);
        trace.classify();
        assert!(virgin.merge_has_new(&trace));
        assert!(!virgin.merge_has_new(&trace)); // second time: nothing new
                                                // Higher hit bucket on the same edge is new coverage again.
        let mut trace2 = Bitmap::new();
        for _ in 0..5 {
            trace2.hit(10);
        }
        trace2.classify();
        assert!(virgin.merge_has_new(&trace2));
    }

    #[test]
    fn path_hash_distinguishes_paths() {
        let mut a = Bitmap::new();
        a.hit(3);
        a.classify();
        let mut b = Bitmap::new();
        b.hit(4);
        b.classify();
        assert_ne!(a.path_hash(), b.path_hash());
        assert_eq!(a.path_hash(), a.clone().path_hash());
    }

    #[test]
    fn edge_index_spreads() {
        let a = edge_index(FuncId(0), BlockId(0), BlockId(1));
        let b = edge_index(FuncId(0), BlockId(1), BlockId(0));
        let c = edge_index(FuncId(1), BlockId(0), BlockId(1));
        assert!(
            a != b || b != c,
            "edge hash should direction/function-sensitive"
        );
        assert!(a < MAP_SIZE && b < MAP_SIZE && c < MAP_SIZE);
    }

    #[test]
    fn count_edges() {
        let mut m = Bitmap::new();
        assert_eq!(m.count_edges(), 0);
        m.hit(1);
        m.hit(1);
        m.hit(9);
        assert_eq!(m.count_edges(), 2);
    }
}
