//! Seed queue and power schedules.

use std::collections::HashMap;

/// One queued seed.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// The input bytes.
    pub input: Vec<u8>,
    /// Identifier of the execution path this seed exercises.
    pub path_hash: u64,
    /// How many times this seed has been picked for fuzzing (`s(i)` in
    /// AFLFast).
    pub times_fuzzed: u32,
    /// Queue-chain depth (seed generation).
    pub depth: u32,
    /// Virtual execution cost of the seed (instructions).
    pub exec_insts: u64,
    /// AFLGo: normalised distance of the seed to the target in `[0,1]`
    /// (0 = at the target); `None` when distance is undefined.
    pub distance: Option<f64>,
}

/// Which power schedule assigns energy to seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// AFLFast's FAST schedule: energy grows exponentially with
    /// `times_fuzzed` and is divided by the path frequency, so rarely
    /// exercised paths receive the most fuzzing.
    Fast,
    /// AFLFast's COE (cut-off exponential) schedule: seeds on
    /// *high-frequency* paths (above the mean path frequency) receive no
    /// energy at all; the rest follow FAST.
    Coe {
        /// Mean executions per discovered path so far.
        mean_path_freq: f64,
    },
    /// AFLFast's EXPLOIT schedule (classic AFL): energy is a constant
    /// multiple of the base, independent of path rarity.
    Exploit,
    /// AFLGo's annealing schedule: energy scales with closeness to the
    /// target; the temperature parameter is the campaign progress in
    /// `[0,1]` (exploration → exploitation).
    AflGo {
        /// Campaign progress `t/t_end`.
        progress: f64,
    },
}

/// Per-path execution frequency (`f(i)` in AFLFast).
#[derive(Debug, Default)]
pub struct PathFrequency {
    counts: HashMap<u64, u64>,
}

impl PathFrequency {
    /// Creates an empty table.
    pub fn new() -> PathFrequency {
        PathFrequency::default()
    }

    /// Records one execution of `path_hash`; returns the new count.
    pub fn record(&mut self, path_hash: u64) -> u64 {
        let c = self.counts.entry(path_hash).or_insert(0);
        *c += 1;
        *c
    }

    /// Current count for a path.
    pub fn get(&self, path_hash: u64) -> u64 {
        self.counts.get(&path_hash).copied().unwrap_or(0)
    }

    /// Number of distinct paths observed.
    pub fn distinct_paths(&self) -> usize {
        self.counts.len()
    }
}

/// Base number of havoc iterations per selected seed.
pub const HAVOC_BASE: u64 = 256;
/// Hard cap on per-selection energy.
pub const ENERGY_CAP: u64 = 16_384;

/// Mean executions per distinct path (the COE cut-off).
pub fn mean_path_frequency(freq: &PathFrequency, total_execs: u64) -> f64 {
    let paths = freq.distinct_paths().max(1);
    total_execs as f64 / paths as f64
}

/// Computes the number of havoc executions to spend on `entry` now.
pub fn energy(entry: &QueueEntry, freq: &PathFrequency, schedule: Schedule) -> u64 {
    match schedule {
        Schedule::Fast => {
            // FAST: p(i) = min(CAP, base * 2^s(i) / f(i))
            let s = entry.times_fuzzed.min(16);
            let f = freq.get(entry.path_hash).max(1);
            (HAVOC_BASE.saturating_mul(1 << s) / f).clamp(1, ENERGY_CAP)
        }
        Schedule::Coe { mean_path_freq } => {
            // COE: skip seeds on over-exercised paths entirely.
            let f = freq.get(entry.path_hash).max(1);
            if f as f64 > mean_path_freq {
                return 0;
            }
            let s = entry.times_fuzzed.min(16);
            (HAVOC_BASE.saturating_mul(1 << s) / f).clamp(1, ENERGY_CAP)
        }
        Schedule::Exploit => HAVOC_BASE,
        Schedule::AflGo { progress } => {
            // Annealing: T goes 1 → 0 with progress; the power factor
            // p = (1 - d)(1 - T) + 0.5 T interpolates between uniform
            // exploration and distance-driven exploitation.
            let t = (1.0 - progress).clamp(0.0, 1.0);
            let d = entry.distance.unwrap_or(1.0).clamp(0.0, 1.0);
            let p = (1.0 - d) * (1.0 - t) + 0.5 * t;
            // Map p ∈ [0,1] onto an exponential energy range like AFLGo's
            // 2^(10(p-0.5)) factor.
            let factor = 2f64.powf(10.0 * (p - 0.5));
            ((HAVOC_BASE as f64 * factor) as u64).clamp(1, ENERGY_CAP)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: u64) -> QueueEntry {
        QueueEntry {
            input: vec![0],
            path_hash: path,
            times_fuzzed: 0,
            depth: 0,
            exec_insts: 100,
            distance: None,
        }
    }

    #[test]
    fn fast_schedule_prefers_rare_paths() {
        let mut freq = PathFrequency::new();
        for _ in 0..100 {
            freq.record(1);
        }
        freq.record(2);
        let hot = entry(1);
        let cold = entry(2);
        assert!(energy(&cold, &freq, Schedule::Fast) > energy(&hot, &freq, Schedule::Fast));
    }

    #[test]
    fn fast_schedule_grows_with_times_fuzzed() {
        let freq = PathFrequency::new();
        let mut e = entry(1);
        let e0 = energy(&e, &freq, Schedule::Fast);
        e.times_fuzzed = 4;
        let e4 = energy(&e, &freq, Schedule::Fast);
        assert!(e4 > e0);
        e.times_fuzzed = 60; // saturates, stays within cap
        assert!(energy(&e, &freq, Schedule::Fast) <= ENERGY_CAP);
    }

    #[test]
    fn aflgo_schedule_prefers_close_seeds_late() {
        let freq = PathFrequency::new();
        let mut near = entry(1);
        near.distance = Some(0.1);
        let mut far = entry(2);
        far.distance = Some(0.9);
        // Early (progress 0): near and far get equal (exploration).
        let sched0 = Schedule::AflGo { progress: 0.0 };
        assert_eq!(energy(&near, &freq, sched0), energy(&far, &freq, sched0));
        // Late (progress 1): near dominates.
        let sched1 = Schedule::AflGo { progress: 1.0 };
        assert!(energy(&near, &freq, sched1) > 4 * energy(&far, &freq, sched1));
    }

    #[test]
    fn coe_cuts_off_hot_paths() {
        let mut freq = PathFrequency::new();
        for _ in 0..100 {
            freq.record(1);
        }
        freq.record(2);
        let hot = entry(1);
        let cold = entry(2);
        let sched = Schedule::Coe {
            mean_path_freq: mean_path_frequency(&freq, 101),
        };
        assert_eq!(energy(&hot, &freq, sched), 0, "hot path gets nothing");
        assert!(energy(&cold, &freq, sched) > 0);
    }

    #[test]
    fn exploit_is_constant() {
        let mut freq = PathFrequency::new();
        freq.record(1);
        let mut e = entry(1);
        let a = energy(&e, &freq, Schedule::Exploit);
        e.times_fuzzed = 10;
        for _ in 0..50 {
            freq.record(1);
        }
        let b = energy(&e, &freq, Schedule::Exploit);
        assert_eq!(a, b);
        assert_eq!(a, HAVOC_BASE);
    }

    #[test]
    fn mean_path_frequency_math() {
        let mut f = PathFrequency::new();
        f.record(1);
        f.record(1);
        f.record(2);
        assert!((mean_path_frequency(&f, 3) - 1.5).abs() < 1e-9);
        assert!((mean_path_frequency(&PathFrequency::new(), 0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn path_frequency_counts() {
        let mut f = PathFrequency::new();
        assert_eq!(f.record(9), 1);
        assert_eq!(f.record(9), 2);
        assert_eq!(f.get(9), 2);
        assert_eq!(f.get(8), 0);
        assert_eq!(f.distinct_paths(), 1);
    }
}
