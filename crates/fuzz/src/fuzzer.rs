//! The greybox fuzzing campaign loop and the AFLFast entry point.

use octo_ir::{FuncId, Program};
use octo_vm::{CrashReport, Limits, RunOutcome, Vm, INSTS_PER_SECOND};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coverage::{Bitmap, CoverageHook};
use crate::mutate::Mutator;
use crate::queue::{energy, PathFrequency, QueueEntry, Schedule};

/// The program under fuzzing plus the verification acceptance set.
#[derive(Debug, Clone)]
pub struct FuzzTarget<'p> {
    /// The target binary (`T` of a software pair).
    pub program: &'p Program,
    /// Shared functions `ℓ`: a crash verifies the propagated
    /// vulnerability only if its backtrace enters one of these.
    pub shared: Vec<FuncId>,
    /// Per-execution limits (the watchdog also catches CWE-835 hangs).
    pub limits: Limits,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// RNG seed (campaigns are fully deterministic given the seed).
    pub rng_seed: u64,
    /// Virtual-clock budget in seconds. The paper gives the baselines 20
    /// hours (72 000 s).
    pub budget_virtual_secs: f64,
    /// Maximum input length.
    pub max_input_len: usize,
    /// Fixed virtual cost per execution (process setup / fork-server
    /// overhead), in instructions.
    pub exec_overhead_insts: u64,
    /// Cap on the deterministic stage per seed (mutation count).
    pub det_stage_cap: usize,
    /// Whether seeds are trimmed (AFL's trim stage) before first fuzzing.
    pub trim: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            rng_seed: 0x0c70,
            budget_virtual_secs: 72_000.0, // 20 h
            max_input_len: 256,
            exec_overhead_insts: 300,
            det_stage_cap: 8192,
            trim: true,
        }
    }
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    /// Total executions.
    pub execs: u64,
    /// Virtual seconds consumed.
    pub virtual_seconds: f64,
    /// Edges covered at the end.
    pub edges: usize,
    /// Distinct execution paths observed.
    pub distinct_paths: usize,
    /// Queue size at the end.
    pub queue_len: usize,
    /// Coverage growth samples `(virtual_seconds, edges_covered)`,
    /// recorded whenever new coverage is found — the classic
    /// coverage-over-time curve of fuzzing evaluations.
    pub coverage_curve: Vec<(f64, usize)>,
}

/// Campaign result.
#[derive(Debug, Clone)]
pub enum FuzzOutcome {
    /// A crash inside `ℓ` was found: the propagated vulnerability is
    /// verified, at the given virtual time.
    CrashFound {
        /// The crashing input.
        input: Vec<u8>,
        /// The crash report.
        crash: CrashReport,
        /// Statistics up to the crash.
        stats: FuzzStats,
    },
    /// The budget ran out without verifying the vulnerability (the `N/A`
    /// cells of Table V).
    BudgetExhausted {
        /// Final statistics.
        stats: FuzzStats,
    },
    /// The tool could not run on this target (AFLGo's `Error†` cell).
    ToolError {
        /// Diagnostic message.
        message: String,
    },
}

impl FuzzOutcome {
    /// Virtual seconds to verification, if a crash was found.
    pub fn time_to_crash(&self) -> Option<f64> {
        match self {
            FuzzOutcome::CrashFound { stats, .. } => Some(stats.virtual_seconds),
            _ => None,
        }
    }
}

/// Computes a seed's normalised distance from its executed blocks; `None`
/// when no executed block can reach the target.
pub(crate) type DistanceFn<'a> = dyn Fn(&[(FuncId, octo_ir::BlockId)]) -> Option<f64> + 'a;

/// The shared campaign machinery behind both baselines.
pub(crate) struct Campaign<'p, 'd> {
    target: &'p FuzzTarget<'p>,
    config: FuzzConfig,
    rng: StdRng,
    virgin: Bitmap,
    /// Reused per-execution trace hook (allocating a fresh map per exec
    /// dominates the campaign cost otherwise).
    hook: CoverageHook,
    freq: PathFrequency,
    queue: Vec<QueueEntry>,
    total_insts: u64,
    execs: u64,
    mutator: Mutator,
    distance: Option<&'d DistanceFn<'d>>,
    coverage_curve: Vec<(f64, usize)>,
}

struct ExecResult {
    crash: Option<CrashReport>,
    path_hash: u64,
    new_coverage: bool,
    insts: u64,
    distance: Option<f64>,
}

impl<'p, 'd> Campaign<'p, 'd> {
    pub(crate) fn new(
        target: &'p FuzzTarget<'p>,
        config: FuzzConfig,
        distance: Option<&'d DistanceFn<'d>>,
    ) -> Campaign<'p, 'd> {
        Campaign {
            target,
            rng: StdRng::seed_from_u64(config.rng_seed),
            config,
            virgin: Bitmap::new(),
            hook: CoverageHook::new(),
            freq: PathFrequency::new(),
            queue: Vec::new(),
            total_insts: 0,
            execs: 0,
            mutator: Mutator::new(config.max_input_len),
            distance,
            coverage_curve: Vec::new(),
        }
    }

    fn budget_insts(&self) -> u64 {
        (self.config.budget_virtual_secs * INSTS_PER_SECOND as f64) as u64
    }

    fn over_budget(&self) -> bool {
        self.total_insts >= self.budget_insts()
    }

    fn stats(&self) -> FuzzStats {
        FuzzStats {
            execs: self.execs,
            virtual_seconds: self.total_insts as f64 / INSTS_PER_SECOND as f64,
            edges: self.virgin.count_edges(),
            distinct_paths: self.freq.distinct_paths(),
            queue_len: self.queue.len(),
            coverage_curve: self.coverage_curve.clone(),
        }
    }

    fn run_one(&mut self, input: &[u8]) -> ExecResult {
        self.hook.reset();
        let mut vm = Vm::new(self.target.program, input).with_limits(self.target.limits);
        let outcome = vm.run_hooked(&mut self.hook);
        let insts = vm.insts_executed() + self.config.exec_overhead_insts;
        self.total_insts += insts;
        self.execs += 1;

        self.hook.trace.classify();
        let path_hash = self.hook.trace.path_hash();
        self.freq.record(path_hash);
        let new_coverage = self.virgin.merge_has_new(&self.hook.trace);
        if new_coverage {
            self.coverage_curve.push((
                self.total_insts as f64 / INSTS_PER_SECOND as f64,
                self.virgin.count_edges(),
            ));
        }
        let distance = self.distance.and_then(|f| f(&self.hook.blocks));

        let crash = match outcome {
            RunOutcome::Crash(report) if report.backtrace.any_in(&self.target.shared) => {
                Some(report)
            }
            _ => None,
        };
        ExecResult {
            crash,
            path_hash,
            new_coverage,
            insts,
            distance,
        }
    }

    fn push_seed(&mut self, input: Vec<u8>, r: &ExecResult, depth: u32) {
        self.queue.push(QueueEntry {
            input,
            path_hash: r.path_hash,
            times_fuzzed: 0,
            depth,
            exec_insts: r.insts,
            distance: r.distance,
        });
    }

    /// Runs the campaign with a progress-only schedule selector.
    pub(crate) fn run(
        &mut self,
        seeds: &[Vec<u8>],
        schedule: impl Fn(f64) -> Schedule,
    ) -> FuzzOutcome {
        self.run_with_freq(seeds, |progress, _mean| schedule(progress))
    }

    /// Runs the campaign; the schedule selector receives `(progress,
    /// mean_path_frequency)`.
    pub(crate) fn run_with_freq(
        &mut self,
        seeds: &[Vec<u8>],
        schedule: impl Fn(f64, f64) -> Schedule,
    ) -> FuzzOutcome {
        // Seed stage.
        for seed in seeds {
            let r = self.run_one(seed);
            if let Some(crash) = r.crash {
                return FuzzOutcome::CrashFound {
                    input: seed.clone(),
                    crash,
                    stats: self.stats(),
                };
            }
            self.push_seed(seed.clone(), &r, 0);
        }
        if self.queue.is_empty() {
            self.queue.push(QueueEntry {
                input: vec![0],
                path_hash: 0,
                times_fuzzed: 0,
                depth: 0,
                exec_insts: 0,
                distance: None,
            });
        }

        // Main loop.
        loop {
            if self.over_budget() {
                return FuzzOutcome::BudgetExhausted {
                    stats: self.stats(),
                };
            }
            for idx in 0..self.queue.len() {
                if self.over_budget() {
                    return FuzzOutcome::BudgetExhausted {
                        stats: self.stats(),
                    };
                }
                // Trim + deterministic stage on first selection.
                if self.queue[idx].times_fuzzed == 0 {
                    if self.config.trim {
                        let r = crate::trim::trim_input(
                            self.target.program,
                            self.target.limits,
                            &self.queue[idx].input,
                        );
                        self.total_insts += r.insts + r.execs * self.config.exec_overhead_insts;
                        self.execs += r.execs;
                        if r.input.len() < self.queue[idx].input.len() {
                            self.queue[idx].input = r.input;
                        }
                    }
                    let input = self.queue[idx].input.clone();
                    let n = self
                        .mutator
                        .det_count(input.len())
                        .min(self.config.det_stage_cap);
                    for i in 0..n {
                        if self.over_budget() {
                            return FuzzOutcome::BudgetExhausted {
                                stats: self.stats(),
                            };
                        }
                        let cand = self.mutator.det_mutation(&input, i);
                        if let Some(outcome) = self.try_input(cand, idx) {
                            return outcome;
                        }
                    }
                }
                // Havoc + splice stage, energy by schedule.
                let progress =
                    (self.total_insts as f64 / self.budget_insts() as f64).clamp(0.0, 1.0);
                let mean = crate::queue::mean_path_frequency(&self.freq, self.execs);
                let e = energy(&self.queue[idx], &self.freq, schedule(progress, mean));
                for _ in 0..e {
                    if self.over_budget() {
                        return FuzzOutcome::BudgetExhausted {
                            stats: self.stats(),
                        };
                    }
                    let cand = if self.queue.len() > 1 && self.rng.gen_ratio(1, 8) {
                        let other = self.rng.gen_range(0..self.queue.len());
                        let spliced = self.mutator.splice(
                            &self.queue[idx].input.clone(),
                            &self.queue[other].input.clone(),
                            &mut self.rng,
                        );
                        self.mutator.havoc(&spliced, &mut self.rng)
                    } else {
                        self.mutator
                            .havoc(&self.queue[idx].input.clone(), &mut self.rng)
                    };
                    if let Some(outcome) = self.try_input(cand, idx) {
                        return outcome;
                    }
                }
                self.queue[idx].times_fuzzed += 1;
            }
        }
    }

    /// Executes a candidate; returns `Some` to end the campaign.
    fn try_input(&mut self, cand: Vec<u8>, parent: usize) -> Option<FuzzOutcome> {
        let r = self.run_one(&cand);
        if let Some(crash) = r.crash {
            return Some(FuzzOutcome::CrashFound {
                input: cand,
                crash,
                stats: self.stats(),
            });
        }
        if r.new_coverage {
            let depth = self.queue[parent].depth + 1;
            self.push_seed(cand, &r, depth);
        }
        None
    }
}

/// Runs an AFLFast campaign (coverage-guided, FAST power schedule — the
/// paper's baseline configuration).
pub fn run_aflfast(target: &FuzzTarget<'_>, seeds: &[Vec<u8>], config: FuzzConfig) -> FuzzOutcome {
    let mut campaign = Campaign::new(target, config, None);
    campaign.run(seeds, |_| Schedule::Fast)
}

/// Runs an AFLFast campaign with an explicit power schedule constructor
/// (FAST, COE, or EXPLOIT). The constructor receives the campaign
/// progress in `[0,1]` and the current mean path frequency.
pub fn run_aflfast_with_schedule(
    target: &FuzzTarget<'_>,
    seeds: &[Vec<u8>],
    config: FuzzConfig,
    schedule: impl Fn(f64, f64) -> Schedule,
) -> FuzzOutcome {
    let mut campaign = Campaign::new(target, config, None);
    campaign.run_with_freq(seeds, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    /// Shallow bug: any block byte > 64 in a size-prefixed record crashes.
    const SHALLOW: &str = r#"
func main() {
entry:
    fd = open
    h = getc fd
    ok = eq h, 0x47
    br ok, body, rej
body:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    buf = alloc 64
    size = getc fd
    big = ugt size, 64
    br big, boom, fine
boom:
    store.1 buf + 65, 1
    halt 9
fine:
    ret
}
"#;

    /// Deep bug: requires a 4-byte magic to match exactly.
    const DEEP: &str = r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 4
    v = load.4 buf
    ok = eq v, 0xDEADBEEF
    br ok, body, rej
body:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    trap 1
}
"#;

    fn target<'p>(p: &'p Program, shared: &str) -> FuzzTarget<'p> {
        FuzzTarget {
            program: p,
            shared: vec![p.func_by_name(shared).unwrap()],
            limits: Limits::default(),
        }
    }

    #[test]
    fn aflfast_cracks_shallow_bug() {
        let p = parse_program(SHALLOW).unwrap();
        let t = target(&p, "decode");
        // Seed: a benign valid file.
        let seeds = vec![vec![0x47, 10]];
        let config = FuzzConfig {
            budget_virtual_secs: 3600.0,
            ..FuzzConfig::default()
        };
        let outcome = run_aflfast(&t, &seeds, config);
        match outcome {
            FuzzOutcome::CrashFound { input, stats, .. } => {
                assert_eq!(input[0], 0x47);
                assert!(input[1] > 64);
                assert!(stats.virtual_seconds > 0.0);
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn aflfast_fails_deep_magic_in_budget() {
        let p = parse_program(DEEP).unwrap();
        let t = target(&p, "decode");
        // Seed does NOT satisfy the magic.
        let seeds = vec![vec![0u8; 8]];
        let config = FuzzConfig {
            budget_virtual_secs: 5.0, // small budget: must exhaust
            ..FuzzConfig::default()
        };
        let outcome = run_aflfast(&t, &seeds, config);
        match outcome {
            FuzzOutcome::BudgetExhausted { stats } => {
                assert!(stats.execs > 10);
                assert!(stats.virtual_seconds >= 5.0);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let p = parse_program(SHALLOW).unwrap();
        let t = target(&p, "decode");
        let seeds = vec![vec![0x47, 10]];
        let config = FuzzConfig {
            budget_virtual_secs: 3600.0,
            ..FuzzConfig::default()
        };
        let a = run_aflfast(&t, &seeds, config);
        let b = run_aflfast(&t, &seeds, config);
        match (a, b) {
            (
                FuzzOutcome::CrashFound {
                    input: ia,
                    stats: sa,
                    ..
                },
                FuzzOutcome::CrashFound {
                    input: ib,
                    stats: sb,
                    ..
                },
            ) => {
                assert_eq!(ia, ib);
                assert_eq!(sa.execs, sb.execs);
            }
            other => panic!("expected two identical crashes, got {other:?}"),
        }
    }

    #[test]
    fn crash_outside_shared_does_not_count() {
        // The crash is in main, not in the shared decode function.
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 7
    br c, boom, fine
boom:
    trap 5
fine:
    halt 0
}
func decode(fd) {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let t = target(&p, "decode");
        let config = FuzzConfig {
            budget_virtual_secs: 2.0,
            ..FuzzConfig::default()
        };
        let outcome = run_aflfast(&t, &[vec![0]], config);
        assert!(
            matches!(outcome, FuzzOutcome::BudgetExhausted { .. }),
            "crash outside ℓ must not verify: {outcome:?}"
        );
    }
}

#[cfg(test)]
mod coverage_curve_tests {
    use super::*;
    use octo_ir::parse::parse_program;

    #[test]
    fn coverage_curve_is_monotone() {
        let src = r#"
func main() {
entry:
    fd = open
    a = getc fd
    c1 = ult a, 64
    br c1, p1, p2
p1:
    halt 1
p2:
    b = getc fd
    c2 = ult b, 64
    br c2, p3, p4
p3:
    halt 2
p4:
    halt 3
}
func decoy(fd) {
entry:
    ret
}
"#;
        let p = parse_program(src).unwrap();
        let target = FuzzTarget {
            program: &p,
            shared: vec![p.func_by_name("decoy").unwrap()],
            limits: Limits::default(),
        };
        let config = FuzzConfig {
            budget_virtual_secs: 2.0,
            ..FuzzConfig::default()
        };
        let FuzzOutcome::BudgetExhausted { stats } = run_aflfast(&target, &[vec![0, 0]], config)
        else {
            panic!("no crash reachable in the shared set");
        };
        assert!(!stats.coverage_curve.is_empty());
        for w in stats.coverage_curve.windows(2) {
            assert!(w[1].0 >= w[0].0, "time must be non-decreasing");
            assert!(w[1].1 > w[0].1, "edges must strictly grow per sample");
        }
        assert_eq!(stats.coverage_curve.last().unwrap().1, stats.edges);
    }
}
