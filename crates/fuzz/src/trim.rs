//! AFL-style input trimming.
//!
//! Before investing mutation energy in a seed, AFL shrinks it: chunks are
//! removed as long as the execution path (classified coverage hash) stays
//! the same. Smaller seeds make every subsequent havoc round cheaper and
//! more likely to hit the bytes that matter.

use octo_ir::Program;
use octo_vm::{Limits, Vm};

use crate::coverage::CoverageHook;

/// Result of trimming one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrimResult {
    /// The (possibly) shrunken input.
    pub input: Vec<u8>,
    /// Executions spent trimming.
    pub execs: u64,
    /// Instructions executed while trimming (virtual-clock cost).
    pub insts: u64,
}

fn path_hash_of(program: &Program, limits: Limits, input: &[u8], insts: &mut u64) -> u64 {
    let mut hook = CoverageHook::new();
    let mut vm = Vm::new(program, input).with_limits(limits);
    let _ = vm.run_hooked(&mut hook);
    *insts += vm.insts_executed();
    hook.trace.classify();
    hook.trace.path_hash()
}

/// Shrinks `input` while its execution path through `program` is
/// unchanged. Removal passes use chunk sizes of 1/16th down to one byte
/// (AFL's `MIN`/`MAX` trim geometry, simplified).
pub fn trim_input(program: &Program, limits: Limits, input: &[u8]) -> TrimResult {
    let mut insts = 0u64;
    let mut execs = 0u64;
    let baseline = path_hash_of(program, limits, input, &mut insts);
    execs += 1;

    let mut current = input.to_vec();
    let mut chunk = (current.len() / 16).max(1);
    while chunk >= 1 && !current.is_empty() {
        let mut pos = 0;
        while pos < current.len() {
            let end = (pos + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(pos..end);
            let h = path_hash_of(program, limits, &candidate, &mut insts);
            execs += 1;
            if h == baseline {
                current = candidate;
                // Do not advance: the next chunk shifted into `pos`.
            } else {
                pos += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    TrimResult {
        input: current,
        execs,
        insts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    /// A program that reads two header bytes and ignores the rest.
    const HEADER_ONLY: &str = r#"
func main() {
entry:
    fd = open
    a = getc fd
    ok = eq a, 0x47
    br ok, second, rej
second:
    b = getc fd
    ok2 = eq b, 0x49
    br ok2, fin, rej
fin:
    halt 0
rej:
    halt 1
}
"#;

    #[test]
    fn trailing_bytes_are_trimmed() {
        let p = parse_program(HEADER_ONLY).unwrap();
        let mut input = b"GI".to_vec();
        input.extend_from_slice(&[0xAA; 60]);
        let r = trim_input(&p, Limits::default(), &input);
        assert_eq!(r.input, b"GI".to_vec(), "only the consumed header remains");
        assert!(r.execs > 1);
        assert!(r.insts > 0);
    }

    #[test]
    fn load_bearing_bytes_survive() {
        let p = parse_program(HEADER_ONLY).unwrap();
        let r = trim_input(&p, Limits::default(), b"GI");
        assert_eq!(r.input, b"GI".to_vec());
    }

    #[test]
    fn path_preservation_is_exact() {
        // The trimmed input takes the same path as the original.
        let p = parse_program(HEADER_ONLY).unwrap();
        let mut input = b"GI".to_vec();
        input.extend_from_slice(&[0u8; 31]);
        let r = trim_input(&p, Limits::default(), &input);
        let mut insts = 0;
        let h_orig = path_hash_of(&p, Limits::default(), &input, &mut insts);
        let h_trim = path_hash_of(&p, Limits::default(), &r.input, &mut insts);
        assert_eq!(h_orig, h_trim);
    }

    #[test]
    fn empty_input_is_stable() {
        let p = parse_program(HEADER_ONLY).unwrap();
        let r = trim_input(&p, Limits::default(), &[]);
        assert!(r.input.is_empty());
    }
}
