//! The AFL mutation pipeline.

use rand::rngs::StdRng;
use rand::Rng;

/// Interesting 8-bit values (AFL's list).
const INTERESTING_8: [u8; 9] = [0x80, 0xFF, 0, 1, 16, 32, 64, 100, 127];
/// Interesting 16-bit values.
const INTERESTING_16: [u16; 8] = [0x8000, 0xFFFF, 0, 1, 128, 255, 256, 512];
/// Interesting 32-bit values.
const INTERESTING_32: [u32; 6] = [0x8000_0000, 0xFFFF_FFFF, 0, 1, 0xFFFF, 0x10000];

/// Stateless mutation operators over byte strings, plus the deterministic
/// stage enumerator. Randomness comes from the caller's RNG so campaigns
/// are reproducible.
#[derive(Debug)]
pub struct Mutator {
    /// Maximum output length.
    pub max_len: usize,
}

impl Mutator {
    /// Creates a mutator with an output length cap.
    pub fn new(max_len: usize) -> Mutator {
        Mutator { max_len }
    }

    /// Number of deterministic mutations for an input of `len` bytes
    /// (walking bitflips + byte arithmetic + interesting bytes).
    pub fn det_count(&self, len: usize) -> usize {
        // 8 bitflips + 2*35 arith + 9 interesting per byte.
        len * (8 + 70 + INTERESTING_8.len())
    }

    /// The `i`-th deterministic mutation of `input` (i < `det_count`).
    pub fn det_mutation(&self, input: &[u8], i: usize) -> Vec<u8> {
        let per_byte = 8 + 70 + INTERESTING_8.len();
        let byte = (i / per_byte).min(input.len().saturating_sub(1));
        let op = i % per_byte;
        let mut out = input.to_vec();
        if out.is_empty() {
            return out;
        }
        if op < 8 {
            out[byte] ^= 1 << op;
        } else if op < 8 + 35 {
            out[byte] = out[byte].wrapping_add((op - 8 + 1) as u8);
        } else if op < 8 + 70 {
            out[byte] = out[byte].wrapping_sub((op - 8 - 35 + 1) as u8);
        } else {
            out[byte] = INTERESTING_8[op - 8 - 70];
        }
        out
    }

    /// One havoc mutation: 1–8 stacked random operations.
    pub fn havoc(&self, input: &[u8], rng: &mut StdRng) -> Vec<u8> {
        let mut out = input.to_vec();
        if out.is_empty() {
            out = vec![0];
        }
        let stack = 1 << rng.gen_range(0..4u32); // 1,2,4,8
        for _ in 0..stack {
            self.havoc_one(&mut out, rng);
        }
        out.truncate(self.max_len);
        out
    }

    fn havoc_one(&self, out: &mut Vec<u8>, rng: &mut StdRng) {
        if out.is_empty() {
            out.push(rng.gen());
            return;
        }
        match rng.gen_range(0..11u32) {
            0 => {
                // flip a bit
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1 << rng.gen_range(0..8u32);
            }
            1 => {
                // set interesting byte
                let i = rng.gen_range(0..out.len());
                out[i] = INTERESTING_8[rng.gen_range(0..INTERESTING_8.len())];
            }
            2 if out.len() >= 2 => {
                // set interesting u16 (little-endian)
                let i = rng.gen_range(0..out.len() - 1);
                let v = INTERESTING_16[rng.gen_range(0..INTERESTING_16.len())];
                out[i..i + 2].copy_from_slice(&v.to_le_bytes());
            }
            3 if out.len() >= 4 => {
                // set interesting u32
                let i = rng.gen_range(0..out.len() - 3);
                let v = INTERESTING_32[rng.gen_range(0..INTERESTING_32.len())];
                out[i..i + 4].copy_from_slice(&v.to_le_bytes());
            }
            4 => {
                // random add/sub
                let i = rng.gen_range(0..out.len());
                let delta = rng.gen_range(1..=35u8);
                out[i] = if rng.gen() {
                    out[i].wrapping_add(delta)
                } else {
                    out[i].wrapping_sub(delta)
                };
            }
            5 => {
                // random byte
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen();
            }
            6 if out.len() > 1 => {
                // delete a run
                let i = rng.gen_range(0..out.len());
                let n = rng.gen_range(1..=(out.len() - i).min(8));
                out.drain(i..i + n);
            }
            7 => {
                // insert random bytes
                if out.len() < self.max_len {
                    let i = rng.gen_range(0..=out.len());
                    let n = rng.gen_range(1..=8usize).min(self.max_len - out.len());
                    let bytes: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
                    out.splice(i..i, bytes);
                }
            }
            8 if out.len() >= 2 => {
                // clone a run elsewhere (overwrite)
                let src = rng.gen_range(0..out.len());
                let n = rng.gen_range(1..=(out.len() - src).min(8));
                let dst = rng.gen_range(0..out.len() - (n - 1));
                let run: Vec<u8> = out[src..src + n].to_vec();
                out[dst..dst + n].copy_from_slice(&run);
            }
            9 => {
                // swap two bytes
                let i = rng.gen_range(0..out.len());
                let j = rng.gen_range(0..out.len());
                out.swap(i, j);
            }
            _ => {
                // overwrite with zero run
                let i = rng.gen_range(0..out.len());
                let n = rng.gen_range(1..=(out.len() - i).min(4));
                out[i..i + n].iter_mut().for_each(|b| *b = 0);
            }
        }
    }

    /// Splices two inputs at random crossover points (AFL's splice stage).
    pub fn splice(&self, a: &[u8], b: &[u8], rng: &mut StdRng) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return if a.is_empty() { b.to_vec() } else { a.to_vec() };
        }
        let cut_a = rng.gen_range(0..a.len());
        let cut_b = rng.gen_range(0..b.len());
        let mut out = a[..cut_a].to_vec();
        out.extend_from_slice(&b[cut_b..]);
        out.truncate(self.max_len);
        if out.is_empty() {
            out.push(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn det_mutations_cover_every_byte() {
        let m = Mutator::new(64);
        let input = vec![0u8; 4];
        let n = m.det_count(input.len());
        let mut touched = [false; 4];
        for i in 0..n {
            let out = m.det_mutation(&input, i);
            assert_eq!(out.len(), 4);
            for (j, (&a, &b)) in out.iter().zip(input.iter()).enumerate() {
                if a != b {
                    touched[j] = true;
                }
            }
        }
        assert!(touched.iter().all(|&t| t), "{touched:?}");
    }

    #[test]
    fn det_mutation_is_deterministic() {
        let m = Mutator::new(64);
        let input = b"GIF87a".to_vec();
        assert_eq!(m.det_mutation(&input, 42), m.det_mutation(&input, 42));
        assert_ne!(m.det_mutation(&input, 0), input);
    }

    #[test]
    fn havoc_respects_max_len() {
        let m = Mutator::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let out = m.havoc(b"hello world", &mut rng);
            assert!(out.len() <= 16);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn havoc_is_seed_deterministic() {
        let m = Mutator::new(64);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(m.havoc(b"abc", &mut r1), m.havoc(b"abc", &mut r2));
        }
    }

    #[test]
    fn splice_combines_parents() {
        let m = Mutator::new(64);
        let mut rng = StdRng::seed_from_u64(3);
        let out = m.splice(b"AAAAAA", b"BBBBBB", &mut rng);
        assert!(!out.is_empty());
        assert!(out.len() <= 12);
    }
}
