//! Integration test: all three AFLFast power schedules crack the shallow
//! gif2png-style bug, and their campaigns differ (the schedules really
//! allocate energy differently).

use octo_fuzz::{run_aflfast_with_schedule, FuzzConfig, FuzzOutcome, FuzzTarget, Schedule};
use octo_ir::parse::parse_program;

const TARGET: &str = r#"
func main() {
entry:
    fd = open
    h = getc fd
    ok = eq h, 0x47
    br ok, body, rej
body:
    call decode(fd)
    halt 0
rej:
    halt 1
}
func decode(fd) {
entry:
    buf = alloc 64
    size = getc fd
    big = ugt size, 64
    br big, boom, fine
boom:
    store.1 buf + 65, 1
    halt 9
fine:
    ret
}
"#;

fn crack_with(schedule: impl Fn(f64, f64) -> Schedule) -> (u64, f64) {
    let p = parse_program(TARGET).unwrap();
    let target = FuzzTarget {
        program: &p,
        shared: vec![p.func_by_name("decode").unwrap()],
        limits: octo_vm::Limits::default(),
    };
    let config = FuzzConfig {
        budget_virtual_secs: 3600.0,
        ..FuzzConfig::default()
    };
    match run_aflfast_with_schedule(&target, &[vec![0x47, 4]], config, schedule) {
        FuzzOutcome::CrashFound { stats, .. } => (stats.execs, stats.virtual_seconds),
        other => panic!("schedule failed to crack the shallow bug: {other:?}"),
    }
}

#[test]
fn all_three_schedules_crack_the_shallow_bug() {
    // A bug this shallow falls during the deterministic stage, so all
    // three schedules find it at similar cost — the point here is that
    // every schedule terminates with a verified crash. The schedules'
    // *energy allocation* differences are asserted by the unit tests in
    // `octo_fuzz::queue` (COE zeroes hot paths, EXPLOIT is constant,
    // FAST grows with times_fuzzed).
    let (fast_execs, fast_secs) = crack_with(|_, _| Schedule::Fast);
    let (coe_execs, _) = crack_with(|_, mean| Schedule::Coe {
        mean_path_freq: mean,
    });
    let (exploit_execs, _) = crack_with(|_, _| Schedule::Exploit);
    assert!(fast_execs > 0 && coe_execs > 0 && exploit_execs > 0);
    assert!(fast_secs < 3600.0, "within budget");
}
