//! # octo-lint — MicroIR static-analysis framework.
//!
//! A worklist-based dataflow framework over the CFGs `octo-cfg` recovers,
//! plus the concrete analyses the OCTOPOCS pipeline consumes:
//!
//! * **Reaching definitions** ([`reaching`]) → use-before-def
//!   diagnostics (`UBD001`/`UBD002`).
//! * **Constant propagation & folding** ([`constprop`]) → statically
//!   decided branches (`CST001`) and resolved indirect jumps/calls
//!   (`CST002`/`CST003`), exported to `octo-cfg`'s dynamic-mode recovery
//!   as [`CfgHints`] via [`cfg_hints`].
//! * **Unreachable-block and dead-store detection** ([`deadcode`],
//!   `DEAD001`/`DEAD002`) with an optional CFG-prune transform
//!   ([`prune_program`]) consumed by `octo-symex`'s naive explorer.
//! * **Static `ep`-reachability pre-screen** ([`callgraph`],
//!   [`prescreen_ep`]) over the interprocedural call graph — pipeline
//!   phase P0: a statically dead or unstitchable entry point decides a
//!   Type-III verdict without any symbolic execution.
//!
//! The one-call entry point is [`lint_program`], which runs every
//! analysis over every function and returns a [`LintReport`].
#![warn(missing_docs)]

pub mod callgraph;
pub mod constprop;
pub mod dataflow;
pub mod deadcode;
pub mod diagnostics;
pub mod reaching;

use octo_cfg::CfgHints;
use octo_ir::{Inst, Program};

pub use callgraph::{
    build_call_graph, lenient_func_cfg, prescreen_ep, CallGraph, Prescreen, ReachKind,
};
pub use constprop::{CVal, Provenance, ResolvedFlow};
pub use dataflow::{reachable_blocks, solve, Analysis, BlockStates, Direction};
pub use deadcode::{prune_program, PruneStats};
pub use diagnostics::{Diagnostic, LintReport, LintSummary, Rule, Severity};
pub use reaching::{UbdFinding, UbdKind};

/// Runs every analysis over every function of `program`.
pub fn lint_program(program: &Program) -> LintReport {
    let mut report = LintReport::default();
    report.summary.functions = program.function_count();

    if let Err(errors) = octo_ir::validate::validate(program) {
        for e in errors {
            report.diags.push(Diagnostic {
                rule: Rule::Val001,
                func: e.func.clone(),
                block: e.block.clone(),
                message: e.msg.clone(),
            });
        }
        // Structurally invalid programs can make the analyses panic
        // (out-of-range registers index facts); stop at validation.
        return report;
    }

    for (fid, func) in program.iter() {
        let cfg = callgraph::lenient_func_cfg(func);
        let diag = |rule, block: Option<&str>, message: String| Diagnostic {
            rule,
            func: func.name.clone(),
            block: block.map(str::to_owned),
            message,
        };
        let label = |b: octo_ir::BlockId| func.blocks[b.0 as usize].label.clone();

        for b in &cfg.unresolved_indirect {
            report.summary.unresolved_ijmps += 1;
            report.diags.push(diag(
                Rule::Cfg001,
                Some(&label(*b)),
                "indirect jump with no address-taken candidate targets; \
                 CFG edges may be missing"
                    .to_string(),
            ));
        }

        let (_, flow) = constprop::analyze(func, fid, &cfg);
        for (b, target) in &flow.const_branches {
            report.summary.const_branches += 1;
            report.diags.push(diag(
                Rule::Cst001,
                Some(&label(*b)),
                format!(
                    "branch decided by constant: always goes to `{}`",
                    label(*target)
                ),
            ));
        }
        for (b, target) in &flow.resolved_ijmps {
            report.summary.resolved_ijmps += 1;
            report.diags.push(diag(
                Rule::Cst002,
                Some(&label(*b)),
                format!("indirect jump resolves to `{}`", label(*target)),
            ));
        }
        for (b, callee) in &flow.resolved_icalls {
            report.summary.resolved_icalls += 1;
            report.diags.push(diag(
                Rule::Cst003,
                Some(&label(*b)),
                format!("indirect call resolves to `{}`", program.func(*callee).name),
            ));
        }
        // Indirect calls constant propagation could not resolve widen the
        // call graph to every function — surface each site (CFG002)
        // instead of letting the edge set degrade silently.
        for (bi, block) in func.blocks.iter().enumerate() {
            let b = octo_ir::BlockId(bi as u32);
            let icalls = block
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::CallIndirect { .. }))
                .count();
            let resolved = flow
                .resolved_icalls
                .iter()
                .filter(|(bb, _)| *bb == b)
                .count();
            for _ in resolved..icalls {
                report.summary.unresolved_icalls += 1;
                report.diags.push(diag(
                    Rule::Cfg002,
                    Some(&label(b)),
                    "indirect call with no statically resolved callee; the \
                     call graph conservatively reaches every function"
                        .to_string(),
                ));
            }
        }

        for finding in reaching::use_before_def(func, &cfg) {
            report.summary.use_before_def += 1;
            let (rule, certainty) = match finding.kind {
                UbdKind::Always => (Rule::Ubd001, "on every path"),
                UbdKind::Maybe => (Rule::Ubd002, "on some path"),
            };
            report.diags.push(diag(
                rule,
                Some(&label(finding.block)),
                format!(
                    "register r{} is read {} before any assignment \
                     (holds the implicit zero)",
                    finding.reg.0, certainty
                ),
            ));
        }

        for b in deadcode::unreachable(func, &cfg) {
            report.summary.unreachable_blocks += 1;
            report.diags.push(diag(
                Rule::Dead001,
                Some(&label(b)),
                "block is unreachable from the function entry".to_string(),
            ));
        }

        for ds in deadcode::dead_stores(func, &cfg) {
            report.summary.dead_stores += 1;
            report.diags.push(diag(
                Rule::Dead002,
                Some(&label(ds.block)),
                format!(
                    "dead store: result of instruction {} (r{}) is never read",
                    ds.inst, ds.reg.0
                ),
            ));
        }
    }
    report
}

/// Derives [`CfgHints`] for `program` from constant propagation: exact
/// successor sets for resolved indirect jumps and exact callee sets for
/// resolved indirect calls, consumable by
/// [`octo_cfg::build_cfg_with_hints`].
pub fn cfg_hints(program: &Program) -> CfgHints {
    let mut hints = CfgHints::default();
    for (fid, func) in program.iter() {
        let cfg = callgraph::lenient_func_cfg(func);
        if !cfg.unresolved_indirect.is_empty() {
            // Constant facts are unsound with missing edges; an
            // unresolved ijmp elsewhere in the function could reach any
            // resolved site with different register values.
            continue;
        }
        let (_, flow) = constprop::analyze(func, fid, &cfg);
        for (b, target) in &flow.resolved_ijmps {
            hints.ijmp_targets.push((fid, *b, vec![*target]));
        }
        // Group resolved icalls per block; a block may also contain
        // unresolved icalls, in which case no hint must be emitted.
        let mut by_block: Vec<(octo_ir::BlockId, Vec<octo_ir::FuncId>)> = Vec::new();
        for (b, callee) in &flow.resolved_icalls {
            match by_block.iter_mut().find(|(bb, _)| bb == b) {
                Some((_, cs)) => cs.push(*callee),
                None => by_block.push((*b, vec![*callee])),
            }
        }
        for (b, callees) in by_block {
            let icalls_in_block = func.blocks[b.0 as usize]
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::CallIndirect { .. }))
                .count();
            if callees.len() == icalls_in_block {
                hints.icall_targets.push((fid, b, callees));
            }
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg_with_hints, CfgMode};
    use octo_ir::parse::parse_program;

    #[test]
    fn clean_program_yields_no_findings() {
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n c = eq v, 1\n \
             br c, a, b\na:\n halt 0\nb:\n halt v\n}\n",
        )
        .unwrap();
        let report = lint_program(&p);
        assert!(report.diags.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn seeded_defects_all_fire() {
        let p = parse_program(
            "func main() {\nentry:\n waste = 41\n jmp next\nghostdef:\n ghost = 5\n \
             jmp next\nnext:\n x = add ghost, 1\n c = eq 2, 2\n br c, live, dead\n\
             live:\n halt x\ndead:\n halt 9\n}\n",
        )
        .unwrap();
        let report = lint_program(&p);
        let rules: Vec<&str> = report.diags.iter().map(|d| d.rule.id()).collect();
        assert!(rules.contains(&"DEAD002"), "{rules:?}"); // waste
        assert!(rules.contains(&"UBD001"), "{rules:?}"); // ghost
        assert!(rules.contains(&"CST001"), "{rules:?}"); // br c
        assert!(rules.contains(&"DEAD001"), "{rules:?}"); // dead block
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.summary.functions, 1);
    }

    #[test]
    fn hints_rescue_a_dynamic_cfg_failure() {
        // Without hints this program fails dynamic recovery in `go`
        // (no baddr in the function? — there is one, but narrow anyway).
        let p = parse_program(
            "func main() {\nentry:\n t = baddr tgt\n jmp go\ngo:\n ijmp t\n\
             tgt:\n halt 0\nalt:\n u = baddr tgt\n halt 1\n}\n",
        )
        .unwrap();
        let hints = cfg_hints(&p);
        assert_eq!(hints.ijmp_targets.len(), 1);
        let cfg = build_cfg_with_hints(&p, CfgMode::Dynamic, &hints).unwrap();
        let f = p.func(p.entry());
        let go = f.block_by_label("go").unwrap();
        let tgt = f.block_by_label("tgt").unwrap();
        assert_eq!(cfg.func(p.entry()).succs[go.0 as usize], vec![tgt]);
    }

    #[test]
    fn unresolved_icall_fires_cfg002() {
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n r = icall v(1)\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let report = lint_program(&p);
        let rules: Vec<&str> = report.diags.iter().map(|d| d.rule.id()).collect();
        assert!(rules.contains(&"CFG002"), "{rules:?}");
        assert_eq!(report.summary.unresolved_icalls, 1);
        // A resolved icall stays CST003-only.
        let q = parse_program(
            "func main() {\nentry:\n g = faddr ep\n r = icall g(1)\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let qr = lint_program(&q);
        assert_eq!(qr.summary.unresolved_icalls, 0, "{}", qr.render_human());
    }

    #[test]
    fn invalid_program_reports_val001_only() {
        // Build an invalid program via the builder: a call with wrong arity
        // cannot be expressed in the text syntax without the parser
        // rejecting it first, so use out-of-range immediates instead.
        let p = parse_program(
            "func main() {\nentry:\n r = call f(1, 2)\n halt r\n}\n\
             func f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        let report = lint_program(&p);
        assert!(report.error_count() >= 1);
        assert!(report.diags.iter().all(|d| d.rule == Rule::Val001));
    }
}
