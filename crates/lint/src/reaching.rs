//! Reaching definitions and the use-before-def diagnostics built on them.
//!
//! A definition site is one instruction that writes a register. Two
//! sentinel "definitions" model the VM's entry state: every parameter is
//! defined by the caller ([`PARAM_DEF`]) and every other register is
//! implicitly zero-initialised ([`ZERO_DEF`]). Reading a register whose
//! only reaching definition is the implicit zero is well-defined at
//! runtime (the VM really does hand out 0) but almost always a bug in the
//! program text — exactly the kind of latent defect a lint should flag.

use std::collections::BTreeSet;

use octo_cfg::FuncCfg;
use octo_ir::{BlockId, Function, Reg};

use crate::dataflow::{reachable_blocks, solve, Analysis, BlockStates, Direction};

/// Sentinel definition site: implicit zero-initialisation at entry.
pub const ZERO_DEF: u64 = u64::MAX;
/// Sentinel definition site: parameter value supplied by the caller.
pub const PARAM_DEF: u64 = u64::MAX - 1;

/// Encodes an explicit definition site (`block`, instruction index).
pub fn def_site(block: BlockId, inst: usize) -> u64 {
    (u64::from(block.0) << 32) | inst as u64
}

/// Per-register sets of reaching definition sites.
pub type DefSets = Vec<BTreeSet<u64>>;

/// The reaching-definitions analysis for one function.
pub struct ReachingDefs<'f> {
    func: &'f Function,
}

impl<'f> ReachingDefs<'f> {
    /// Creates the analysis for `func`.
    pub fn new(func: &'f Function) -> ReachingDefs<'f> {
        ReachingDefs { func }
    }
}

impl Analysis for ReachingDefs<'_> {
    type Fact = DefSets;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> DefSets {
        (0..self.func.n_regs)
            .map(|r| {
                let sentinel = if r < self.func.n_params {
                    PARAM_DEF
                } else {
                    ZERO_DEF
                };
                BTreeSet::from([sentinel])
            })
            .collect()
    }

    fn init(&self) -> DefSets {
        vec![BTreeSet::new(); self.func.n_regs as usize]
    }

    fn join(&self, into: &mut DefSets, from: &DefSets) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from.iter()) {
            for site in b {
                changed |= a.insert(*site);
            }
        }
        changed
    }

    fn transfer(&self, block: BlockId, fact: &DefSets) -> DefSets {
        let mut sets = fact.clone();
        for (i, inst) in self.func.blocks[block.0 as usize].insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                sets[d.0 as usize] = BTreeSet::from([def_site(block, i)]);
            }
        }
        sets
    }
}

/// How certain the analysis is that a read precedes every assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UbdKind {
    /// On *every* path to this read the register is still the implicit
    /// zero (rule `UBD001`).
    Always,
    /// On *some* path the register is still the implicit zero (`UBD002`).
    Maybe,
}

/// One use-before-def finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbdFinding {
    /// Block containing the reading instruction.
    pub block: BlockId,
    /// Instruction index within the block; `insts.len()` means the
    /// terminator.
    pub inst: usize,
    /// The register read.
    pub reg: Reg,
    /// Certainty class.
    pub kind: UbdKind,
}

/// Runs reaching definitions over `func` and reports every read of a
/// register whose reaching definitions include the implicit zero.
pub fn use_before_def(func: &Function, cfg: &FuncCfg) -> Vec<UbdFinding> {
    let states: BlockStates<DefSets> = solve(&ReachingDefs::new(func), cfg);
    let reach = reachable_blocks(cfg);
    let mut findings = Vec::new();

    for (bi, block) in func.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let bid = BlockId(bi as u32);
        let mut sets = states.input[bi].clone();
        let check = |sets: &DefSets, inst: usize, reg: Reg, out: &mut Vec<UbdFinding>| {
            let s = &sets[reg.0 as usize];
            if s.contains(&ZERO_DEF) {
                let kind = if s.len() == 1 {
                    UbdKind::Always
                } else {
                    UbdKind::Maybe
                };
                out.push(UbdFinding {
                    block: bid,
                    inst,
                    reg,
                    kind,
                });
            }
        };
        for (i, inst) in block.insts.iter().enumerate() {
            for u in inst.uses() {
                check(&sets, i, u, &mut findings);
            }
            if let Some(d) = inst.def() {
                sets[d.0 as usize] = BTreeSet::from([def_site(bid, i)]);
            }
        }
        for u in block.term.uses() {
            check(&sets, block.insts.len(), u, &mut findings);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    fn findings(src: &str) -> (octo_ir::Program, Vec<UbdFinding>) {
        let p = parse_program(src).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let f = use_before_def(p.func(p.entry()), cfg.func(p.entry()));
        (p, f)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let (_, f) = findings("func main() {\nentry:\n a = 1\n b = add a, 2\n halt b\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn always_unassigned_read_detected() {
        // `ghost` is only assigned in a block no path executes (the parser
        // demands a textual definition, control flow never runs it).
        let (p, f) = findings(
            "func main() {\nentry:\n jmp probe\nghostdef:\n ghost = 5\n jmp probe\n\
             probe:\n b = add ghost, 2\n halt b\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, UbdKind::Always);
        assert_eq!(f[0].inst, 0);
        let main = p.func(p.entry());
        assert_eq!(f[0].block, main.block_by_label("probe").unwrap());
    }

    #[test]
    fn maybe_unassigned_read_detected() {
        // `x` is assigned on one arm only.
        let (p, f) = findings(
            "func main() {\nentry:\n fd = open\n v = getc fd\n c = eq v, 1\n \
             br c, set, skip\nset:\n x = 7\n jmp m\nskip:\n jmp m\nm:\n halt x\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, UbdKind::Maybe);
        let main = p.func(p.entry());
        assert_eq!(f[0].block, main.block_by_label("m").unwrap());
        // The read is in the terminator slot.
        assert_eq!(f[0].inst, main.blocks[f[0].block.0 as usize].insts.len());
    }

    #[test]
    fn params_count_as_defined() {
        let p = parse_program(
            "func main() {\nentry:\n r = call f(3)\n halt r\n}\n\
             func f(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let fid = p.func_by_name("f").unwrap();
        assert!(use_before_def(p.func(fid), cfg.func(fid)).is_empty());
    }

    #[test]
    fn unreachable_blocks_not_scanned() {
        // `deaduse` reads a never-reaching register, but it is itself
        // unreachable — no finding.
        let (_, f) = findings(
            "func main() {\nentry:\n halt 0\ndeaddef:\n ghost = 1\n jmp deaduse\n\
             deaduse:\n halt ghost\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
