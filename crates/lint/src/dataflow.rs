//! Worklist-based dataflow solving over a function's recovered CFG.
//!
//! The framework is deliberately small: an [`Analysis`] supplies the
//! lattice (fact type, boundary/initial values, join) and the transfer
//! function; [`solve`] iterates block-level facts to a fixed point in the
//! analysis' [`Direction`]. All concrete analyses in this crate
//! (constant propagation, reaching definitions, liveness) are instances.
//!
//! ## Reachability discipline
//!
//! Forward solving only propagates facts along edges whose source is
//! reachable from the function entry. This is not an optimisation but a
//! soundness requirement for constant propagation: the VM zero-initialises
//! registers, so the entry boundary fact claims "every non-parameter
//! register is 0" — joining in facts from blocks that can never execute
//! would let impossible register values pollute (or, worse, impossible
//! *constants* sharpen) the states of live blocks.

use octo_cfg::FuncCfg;
use octo_ir::BlockId;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry to exits; `input[b]` joins predecessors.
    Forward,
    /// Facts flow from exits to entry; `input[b]` joins successors.
    Backward,
}

/// One dataflow analysis: lattice plus transfer function.
pub trait Analysis {
    /// The per-block fact (an element of the lattice).
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// Fact at the flow boundary: function entry for forward analyses,
    /// every exit block for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// Optimistic initial fact for all other blocks (lattice top).
    fn init(&self) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Transfers the fact across block `block` (over its instructions and,
    /// in the forward direction, its terminator's uses).
    fn transfer(&self, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// The fixed point: per-block facts on entry to and exit from each block.
///
/// For a backward analysis the names keep their flow meaning, not their
/// textual one: `input[b]` is the fact flowing *into* the transfer
/// function (the block's live-out set, say) and `output[b]` the fact it
/// produces (live-in).
#[derive(Debug, Clone)]
pub struct BlockStates<F> {
    /// Fact entering each block's transfer function.
    pub input: Vec<F>,
    /// Fact leaving each block's transfer function.
    pub output: Vec<F>,
}

/// Blocks reachable from the function entry over `cfg.succs`.
pub fn reachable_blocks(cfg: &FuncCfg) -> Vec<bool> {
    let n = cfg.succs.len();
    let mut seen = vec![false; n];
    if n == 0 {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in &cfg.succs[b] {
            let si = s.0 as usize;
            if !seen[si] {
                seen[si] = true;
                stack.push(si);
            }
        }
    }
    seen
}

/// Solves `analysis` over the function graph `cfg` by round-robin
/// iteration to a fixed point.
///
/// Forward analyses iterate only entry-reachable blocks (see the module
/// docs); unreachable blocks keep the optimistic [`Analysis::init`] fact.
/// Backward analyses iterate every block — liveness facts of dead blocks
/// are harmless and the extra generality keeps the loop uniform.
pub fn solve<A: Analysis>(analysis: &A, cfg: &FuncCfg) -> BlockStates<A::Fact> {
    let n = cfg.succs.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    if n == 0 {
        return BlockStates { input, output };
    }

    let forward = analysis.direction() == Direction::Forward;
    let reach = reachable_blocks(cfg);
    let live = |b: usize| !forward || reach[b];

    loop {
        let mut changed = false;
        for b in 0..n {
            if !live(b) {
                continue;
            }
            // Recompute the in-flow fact from scratch: boundary where the
            // flow starts, joined with every live in-edge source.
            let at_boundary = if forward {
                b == 0
            } else {
                cfg.succs[b].is_empty()
            };
            let mut inp = if at_boundary {
                analysis.boundary()
            } else {
                analysis.init()
            };
            let sources: &[BlockId] = if forward {
                &cfg.preds[b]
            } else {
                &cfg.succs[b]
            };
            for s in sources {
                let si = s.0 as usize;
                if live(si) {
                    analysis.join(&mut inp, &output[si]);
                }
            }
            if inp != input[b] {
                input[b] = inp;
                changed = true;
            }
            let out = analysis.transfer(BlockId(b as u32), &input[b]);
            if out != output[b] {
                output[b] = out;
                changed = true;
            }
        }
        if !changed {
            return BlockStates { input, output };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    /// A toy forward analysis: "how many distinct blocks lie on some path
    /// from entry to here" — counts via a set union, exercising join.
    struct PathBlocks;

    impl Analysis for PathBlocks {
        type Fact = Vec<u32>;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> Vec<u32> {
            Vec::new()
        }

        fn init(&self) -> Vec<u32> {
            Vec::new()
        }

        fn join(&self, into: &mut Vec<u32>, from: &Vec<u32>) -> bool {
            let before = into.len();
            for x in from {
                if !into.contains(x) {
                    into.push(*x);
                }
            }
            into.sort_unstable();
            into.len() != before
        }

        fn transfer(&self, block: BlockId, fact: &Vec<u32>) -> Vec<u32> {
            let mut out = fact.clone();
            if !out.contains(&block.0) {
                out.push(block.0);
            }
            out.sort_unstable();
            out
        }
    }

    #[test]
    fn forward_solve_reaches_fixed_point_with_loop() {
        let p = parse_program(
            "func main() {\nentry:\n i = 0\n jmp head\nhead:\n c = ult i, 4\n \
             br c, body, done\nbody:\n i = add i, 1\n jmp head\ndone:\n halt 0\n}\n",
        )
        .unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let states = solve(&PathBlocks, cfg.func(p.entry()));
        let f = p.func(p.entry());
        let done = f.block_by_label("done").unwrap().0 as usize;
        // Every block is on some path to `done`.
        assert_eq!(states.output[done].len(), f.blocks.len());
        // The loop head sees both entry and the back edge.
        let head = f.block_by_label("head").unwrap().0 as usize;
        assert!(states.input[head].contains(&(f.blocks.len() as u32 - 2)));
    }

    #[test]
    fn unreachable_blocks_keep_init_fact() {
        let p = parse_program("func main() {\nentry:\n halt 0\ndead:\n halt 1\n}\n").unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let fcfg = cfg.func(p.entry());
        let reach = reachable_blocks(fcfg);
        assert_eq!(reach, vec![true, false]);
        let states = solve(&PathBlocks, fcfg);
        assert!(states.output[1].is_empty(), "dead block untouched");
    }
}
