//! Diagnostic records, rule identifiers and rendering.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a fact worth surfacing (e.g. a resolved indirect
    /// jump), not a defect.
    Info,
    /// A likely defect that does not invalidate the program.
    Warning,
    /// The program violates a structural invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable rule identifiers (documented in `docs/static-analysis.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Structural validation failure.
    Val001,
    /// Read of a register that is the implicit zero on every path.
    Ubd001,
    /// Read of a register that is the implicit zero on some path.
    Ubd002,
    /// Unreachable basic block.
    Dead001,
    /// Dead store: pure instruction whose result is never read.
    Dead002,
    /// Branch or switch decided by a propagated constant.
    Cst001,
    /// Indirect jump resolved to an exact target.
    Cst002,
    /// Indirect call resolved to an exact callee.
    Cst003,
    /// Indirect jump with no static resolution (missing CFG edges).
    Cfg001,
    /// Indirect call with no static resolution: the call graph
    /// conservatively lets it reach every function.
    Cfg002,
}

impl Rule {
    /// The rule's identifier string.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Val001 => "VAL001",
            Rule::Ubd001 => "UBD001",
            Rule::Ubd002 => "UBD002",
            Rule::Dead001 => "DEAD001",
            Rule::Dead002 => "DEAD002",
            Rule::Cst001 => "CST001",
            Rule::Cst002 => "CST002",
            Rule::Cst003 => "CST003",
            Rule::Cfg001 => "CFG001",
            Rule::Cfg002 => "CFG002",
        }
    }

    /// The severity every finding of this rule carries.
    pub fn severity(self) -> Severity {
        match self {
            Rule::Val001 => Severity::Error,
            Rule::Ubd001
            | Rule::Ubd002
            | Rule::Dead001
            | Rule::Dead002
            | Rule::Cfg001
            | Rule::Cfg002 => Severity::Warning,
            Rule::Cst001 | Rule::Cst002 | Rule::Cst003 => Severity::Info,
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Function name.
    pub func: String,
    /// Block label, when the finding is block-local.
    pub block: Option<String>,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Severity of the finding (derived from the rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = match &self.block {
            Some(b) => format!("{}/{}", self.func, b),
            None => self.func.clone(),
        };
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.rule.id(),
            loc,
            self.message
        )
    }
}

/// Aggregate counts over one linted program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Functions analysed.
    pub functions: usize,
    /// Unreachable blocks (DEAD001 count).
    pub unreachable_blocks: usize,
    /// Dead stores (DEAD002 count).
    pub dead_stores: usize,
    /// Statically decided branches (CST001 count).
    pub const_branches: usize,
    /// Resolved indirect jumps (CST002 count).
    pub resolved_ijmps: usize,
    /// Resolved indirect calls (CST003 count).
    pub resolved_icalls: usize,
    /// Unresolved indirect jumps (CFG001 count).
    pub unresolved_ijmps: usize,
    /// Unresolved indirect calls (CFG002 count).
    pub unresolved_icalls: usize,
    /// Use-before-def reads (UBD001 + UBD002 count).
    pub use_before_def: usize,
}

/// The result of linting one program.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, ordered by function, then block, then rule.
    pub diags: Vec<Diagnostic>,
    /// Aggregate counts.
    pub summary: LintSummary,
}

impl LintReport {
    /// Findings at or above `min` severity.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.severity() >= min)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.at_least(Severity::Error).count()
    }

    /// Renders the report as human-readable lines plus a summary footer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let s = &self.summary;
        out.push_str(&format!(
            "{} finding(s) across {} function(s): {} error(s), {} warning(s), {} info\n",
            self.diags.len(),
            s.functions,
            self.error_count(),
            self.at_least(Severity::Warning).count() - self.error_count(),
            self.diags.len() - self.at_least(Severity::Warning).count(),
        ));
        out
    }

    /// Renders the report as a JSON object (`{"diagnostics": [...],
    /// "summary": {...}}`), dependency-free like the rest of the
    /// workspace's machine output.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"func\":\"{}\",\"block\":{},\
                 \"message\":\"{}\"}}",
                d.rule.id(),
                d.severity(),
                esc(&d.func),
                match &d.block {
                    Some(b) => format!("\"{}\"", esc(b)),
                    None => "null".to_string(),
                },
                esc(&d.message),
            ));
        }
        let s = &self.summary;
        out.push_str(&format!(
            "],\"summary\":{{\"functions\":{},\"unreachable_blocks\":{},\"dead_stores\":{},\
             \"const_branches\":{},\"resolved_ijmps\":{},\"resolved_icalls\":{},\
             \"unresolved_ijmps\":{},\"unresolved_icalls\":{},\"use_before_def\":{}}}}}",
            s.functions,
            s.unreachable_blocks,
            s.dead_stores,
            s.const_branches,
            s.resolved_ijmps,
            s.resolved_icalls,
            s.unresolved_ijmps,
            s.unresolved_icalls,
            s.use_before_def,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_stable() {
        let d = Diagnostic {
            rule: Rule::Dead002,
            func: "main".into(),
            block: Some("entry".into()),
            message: "dead store to r3".into(),
        };
        assert_eq!(
            d.to_string(),
            "warning[DEAD002] main/entry: dead store to r3"
        );
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Rule::Val001.severity(), Severity::Error);
    }

    #[test]
    fn json_escapes_quotes() {
        let report = LintReport {
            diags: vec![Diagnostic {
                rule: Rule::Val001,
                func: "we\"ird".into(),
                block: None,
                message: "x".into(),
            }],
            summary: LintSummary::default(),
        };
        let j = report.render_json();
        assert!(j.contains("we\\\"ird"));
        assert!(j.contains("\"block\":null"));
    }
}
