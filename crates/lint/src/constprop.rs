//! Constant propagation and folding with code-address provenance.
//!
//! The lattice element per register is [`CVal`]: unknown-yet (`Undef`,
//! top), a single compile-time constant (`Known`), or not-a-constant
//! (`Nac`, bottom). Two design points matter for soundness against the
//! concrete VM:
//!
//! * **Entry boundary.** The VM zero-initialises every register, so at
//!   function entry the non-parameter registers are `Known(0)` while the
//!   parameters — whose values the caller supplies — are `Nac`.
//! * **Provenance.** A `Known` value remembers whether it was materialised
//!   as a code address (`baddr`/`faddr`) or is plain data. Only
//!   code-provenance constants resolve indirect jumps and calls: a raw
//!   integer that merely *looks* like a tagged address (the Idx-15
//!   corpus shape, where the jump target is produced by arithmetic) is
//!   deliberately left unresolved, mirroring how binary-level CFG
//!   recovery cannot see through computed gotos.

use octo_cfg::FuncCfg;
use octo_ir::{decode_block_addr, decode_func_addr, Operand};
use octo_ir::{BlockId, FuncId, Function, Inst, Reg, Terminator};

use crate::dataflow::{reachable_blocks, solve, Analysis, BlockStates, Direction};

/// Where a known constant came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Plain data: literals, arithmetic results, file-independent moves.
    Data,
    /// Materialised by `baddr` (and only moved since).
    Block,
    /// Materialised by `faddr` (and only moved since).
    Func,
}

/// The constant-propagation lattice value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CVal {
    /// Top: no execution reaching this point has been observed yet.
    Undef,
    /// The register holds exactly this value on every execution.
    Known {
        /// The constant.
        value: u64,
        /// Its origin (see [`Provenance`]).
        prov: Provenance,
    },
    /// Bottom: the register may hold different values on different runs.
    Nac,
}

impl CVal {
    /// A known data constant.
    pub fn known(value: u64) -> CVal {
        CVal::Known {
            value,
            prov: Provenance::Data,
        }
    }

    /// The constant value, if the register holds exactly one.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            CVal::Known { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Lattice join (`Undef` is identity, disagreeing constants fall to
    /// `Nac`, provenance must agree for the constant to survive).
    pub fn join(self, other: CVal) -> CVal {
        match (self, other) {
            (CVal::Undef, x) | (x, CVal::Undef) => x,
            (CVal::Nac, _) | (_, CVal::Nac) => CVal::Nac,
            (a @ CVal::Known { .. }, b) => {
                if a == b {
                    a
                } else {
                    CVal::Nac
                }
            }
        }
    }
}

/// Forward constant propagation over one function.
pub struct ConstProp<'f> {
    func: &'f Function,
    func_id: FuncId,
}

impl<'f> ConstProp<'f> {
    /// Creates the analysis for `func`, whose program-level id is
    /// `func_id` (needed to encode `baddr` results exactly as the VM
    /// does, so that folded comparisons on address values stay faithful).
    pub fn new(func: &'f Function, func_id: FuncId) -> ConstProp<'f> {
        ConstProp { func, func_id }
    }
}

/// Evaluates an operand under the register fact `regs`.
pub fn eval_operand(op: &Operand, regs: &[CVal]) -> CVal {
    match op {
        Operand::Imm(v) => CVal::known(*v),
        Operand::Reg(r) => regs[r.0 as usize],
    }
}

fn set(regs: &mut [CVal], r: Reg, v: CVal) {
    regs[r.0 as usize] = v;
}

/// Applies one instruction to the register fact (shared by the block
/// transfer function and by mid-block queries at call sites).
/// `func_id` is the id of the enclosing function.
pub fn transfer_inst(inst: &Inst, regs: &mut [CVal], func_id: FuncId) {
    match inst {
        Inst::Const { dst, value } => set(regs, *dst, CVal::known(*value)),
        Inst::Move { dst, src } => {
            // Moves preserve provenance: a copied baddr still resolves.
            set(regs, *dst, eval_operand(src, regs));
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            let v = match (
                eval_operand(lhs, regs).as_const(),
                eval_operand(rhs, regs).as_const(),
            ) {
                // Folding strips provenance: arithmetic on a code address
                // yields data, so the result never resolves indirect flow.
                (Some(a), Some(b)) => match op.eval(a, b) {
                    Some(r) => CVal::known(r),
                    None => CVal::Nac, // division by zero crashes at runtime
                },
                _ => CVal::Nac,
            };
            set(regs, *dst, v);
        }
        Inst::Un { dst, op, src } => {
            let v = match eval_operand(src, regs).as_const() {
                Some(a) => CVal::known(op.eval(a)),
                None => CVal::Nac,
            };
            set(regs, *dst, v);
        }
        Inst::FuncAddr { dst, func } => set(
            regs,
            *dst,
            CVal::Known {
                value: octo_ir::encode_func_addr(*func),
                prov: Provenance::Func,
            },
        ),
        Inst::BlockAddr { dst, block } => set(
            regs,
            *dst,
            CVal::Known {
                value: octo_ir::encode_block_addr(func_id, *block),
                prov: Provenance::Block,
            },
        ),
        // Everything whose result depends on input, memory, allocation
        // placement, overflow behaviour or a callee is not a constant.
        Inst::CheckedBin { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Alloc { dst, .. }
        | Inst::FileOpen { dst }
        | Inst::FileRead { dst, .. }
        | Inst::FileGetc { dst, .. }
        | Inst::FileTell { dst, .. }
        | Inst::FileSize { dst, .. }
        | Inst::MemMap { dst, .. } => set(regs, *dst, CVal::Nac),
        Inst::Call { dst, .. } | Inst::CallIndirect { dst, .. } => {
            if let Some(d) = dst {
                set(regs, *d, CVal::Nac);
            }
        }
        Inst::Store { .. } | Inst::FileSeek { .. } | Inst::Trap { .. } | Inst::Nop => {}
    }
}

impl Analysis for ConstProp<'_> {
    type Fact = Vec<CVal>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Vec<CVal> {
        // VM semantics: parameters are caller-supplied, everything else
        // starts at zero.
        (0..self.func.n_regs)
            .map(|r| {
                if r < self.func.n_params {
                    CVal::Nac
                } else {
                    CVal::known(0)
                }
            })
            .collect()
    }

    fn init(&self) -> Vec<CVal> {
        vec![CVal::Undef; self.func.n_regs as usize]
    }

    fn join(&self, into: &mut Vec<CVal>, from: &Vec<CVal>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from.iter()) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, block: BlockId, fact: &Vec<CVal>) -> Vec<CVal> {
        let mut regs = fact.clone();
        for inst in &self.func.blocks[block.0 as usize].insts {
            transfer_inst(inst, &mut regs, self.func_id);
        }
        regs
    }
}

/// Statically resolved control flow of one function.
#[derive(Debug, Clone, Default)]
pub struct ResolvedFlow {
    /// `Br`/`Switch` blocks whose scrutinee is constant, with the only
    /// successor that can execute.
    pub const_branches: Vec<(BlockId, BlockId)>,
    /// `ijmp` blocks whose target is a block address constant, with the
    /// exact successor.
    pub resolved_ijmps: Vec<(BlockId, BlockId)>,
    /// Blocks containing an `icall` whose target is a function-address
    /// constant, with the exact callee.
    pub resolved_icalls: Vec<(BlockId, FuncId)>,
}

/// Runs constant propagation on `func` (program-level id `func_id`) and
/// extracts the per-block states plus every statically resolved branch /
/// indirect transfer.
pub fn analyze(
    func: &Function,
    func_id: FuncId,
    cfg: &FuncCfg,
) -> (BlockStates<Vec<CVal>>, ResolvedFlow) {
    let states = solve(&ConstProp::new(func, func_id), cfg);
    let reach = reachable_blocks(cfg);
    let mut flow = ResolvedFlow::default();

    for (bi, block) in func.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let bid = BlockId(bi as u32);

        // Mid-block scan for resolvable indirect calls.
        let mut regs = states.input[bi].clone();
        for inst in &block.insts {
            if let Inst::CallIndirect { target, .. } = inst {
                if let CVal::Known {
                    value,
                    prov: Provenance::Func,
                } = eval_operand(target, &regs)
                {
                    if let Some(f) = decode_func_addr(value) {
                        flow.resolved_icalls.push((bid, f));
                    }
                }
            }
            transfer_inst(inst, &mut regs, func_id);
        }

        // `regs` now holds the block's output fact; resolve the terminator.
        match &block.term {
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                if let Some(c) = eval_operand(cond, &regs).as_const() {
                    let taken = if c != 0 { *then_bb } else { *else_bb };
                    if then_bb != else_bb {
                        flow.const_branches.push((bid, taken));
                    }
                }
            }
            Terminator::Switch {
                scrut,
                cases,
                default,
            } => {
                if let Some(c) = eval_operand(scrut, &regs).as_const() {
                    let taken = cases
                        .iter()
                        .find(|(v, _)| *v == c)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    flow.const_branches.push((bid, taken));
                }
            }
            Terminator::JmpIndirect { target } => {
                if let CVal::Known {
                    value,
                    prov: Provenance::Block,
                } = eval_operand(target, &regs)
                {
                    // The VM only accepts same-function block addresses.
                    if let Some((f, b)) = decode_block_addr(value) {
                        if f == func_id && (b.0 as usize) < func.blocks.len() {
                            flow.resolved_ijmps.push((bid, b));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    (states, flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    fn analyze_main(src: &str) -> (octo_ir::Program, BlockStates<Vec<CVal>>, ResolvedFlow) {
        let p = parse_program(src).unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let (states, flow) = analyze(p.func(p.entry()), p.entry(), cfg.func(p.entry()));
        (p, states, flow)
    }

    #[test]
    fn folds_arithmetic_and_branches() {
        let (p, _, flow) = analyze_main(
            "func main() {\nentry:\n a = 20\n b = add a, 22\n c = eq b, 42\n \
             br c, yes, no\nyes:\n halt 0\nno:\n halt 1\n}\n",
        );
        let f = p.func(p.entry());
        let entry = f.block_by_label("entry").unwrap();
        let yes = f.block_by_label("yes").unwrap();
        assert_eq!(flow.const_branches, vec![(entry, yes)]);
    }

    #[test]
    fn zero_init_registers_are_known_zero() {
        // `u` is only written in an unreachable block; every executing
        // path reads the VM's zero initialisation, and the analysis knows.
        let (p, _, flow) = analyze_main(
            "func main() {\nentry:\n jmp probe\nnever:\n u = 5\n jmp probe\n\
             probe:\n c = eq u, 0\n br c, yes, no\nyes:\n halt 0\nno:\n halt 1\n}\n",
        );
        let f = p.func(p.entry());
        assert_eq!(
            flow.const_branches,
            vec![(
                f.block_by_label("probe").unwrap(),
                f.block_by_label("yes").unwrap()
            )]
        );
    }

    #[test]
    fn params_are_not_constant() {
        let p = parse_program(
            "func main() {\nentry:\n r = call f(3)\n halt r\n}\n\
             func f(x) {\nentry:\n c = eq x, 3\n br c, a, b\na:\n ret 1\nb:\n ret 0\n}\n",
        )
        .unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let fid = p.func_by_name("f").unwrap();
        let (_, flow) = analyze(p.func(fid), fid, cfg.func(fid));
        assert!(flow.const_branches.is_empty(), "param must stay Nac");
    }

    #[test]
    fn resolves_block_address_ijmp_but_not_raw_arithmetic() {
        let (p, _, flow) = analyze_main(
            "func main() {\nentry:\n t = baddr tgt\n jmp go\ngo:\n ijmp t\n\
             tgt:\n halt 0\n}\n",
        );
        let f = p.func(p.entry());
        assert_eq!(
            flow.resolved_ijmps,
            vec![(
                f.block_by_label("go").unwrap(),
                f.block_by_label("tgt").unwrap()
            )]
        );

        // The Idx-15 shape: a raw constant that happens to carry the tag
        // bits must NOT resolve (data provenance).
        let src = format!(
            "func main() {{\nentry:\n t = {:#x}\n t2 = baddr dead\n ijmp t\ndead:\n halt 0\n}}\n",
            octo_ir::encode_block_addr(octo_ir::FuncId(0), octo_ir::BlockId(1))
        );
        let (_, _, flow) = analyze_main(&src);
        assert!(flow.resolved_ijmps.is_empty(), "arithmetic target resolved");
    }

    #[test]
    fn join_of_disagreeing_constants_is_nac() {
        let (p, states, flow) = analyze_main(
            "func main() {\nentry:\n fd = open\n v = getc fd\n c = eq v, 1\n \
             br c, a, b\na:\n x = 1\n jmp m\nb:\n x = 2\n jmp m\nm:\n \
             d = eq x, 1\n br d, p, q\np:\n halt 0\nq:\n halt 1\n}\n",
        );
        let f = p.func(p.entry());
        let m = f.block_by_label("m").unwrap();
        assert!(flow.const_branches.iter().all(|(b, _)| *b != m));
        // x is Nac at m's input.
        let x_known = states.input[m.0 as usize]
            .iter()
            .filter(|v| matches!(v, CVal::Nac))
            .count();
        assert!(x_known >= 1);
    }

    #[test]
    fn resolves_constant_icall() {
        let p = parse_program(
            "func main() {\nentry:\n g = faddr f\n r = icall g(5)\n halt r\n}\n\
             func f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let (_, flow) = analyze(p.func(p.entry()), p.entry(), cfg.func(p.entry()));
        let f = p.func_by_name("f").unwrap();
        assert_eq!(flow.resolved_icalls, vec![(octo_ir::BlockId(0), f)]);
    }
}
