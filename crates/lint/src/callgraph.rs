//! Interprocedural call graph and the static `ep`-reachability /
//! argument pre-screen (pipeline phase P0).
//!
//! The pre-screen answers, **before** any symbolic execution, two
//! questions whose negative answers decide a verification verdict:
//!
//! 1. *Can the entry point `ep` execute at all?* If no chain of calls
//!    from the target's entry can reach `ep`, the propagated vulnerable
//!    code is dead in `T` — verdict "not triggerable" (paper case ii).
//! 2. *Can any call of `ep` match the recorded crash primitives?* The
//!    directed engine must stitch every recorded `ep` entry against a
//!    concrete call whose arguments equal the recorded values. If every
//!    static call site of `ep` passes a compile-time constant that
//!    disagrees with what the crash recorded, stitching is doomed —
//!    verdict "not triggerable, unsatisfiable constraints".
//!
//! Everything here is an over-approximation of runtime behaviour: an
//! unresolved indirect call contributes edges to *every* function, an
//! address-taken `ep` disables the argument screen entirely, and a
//! register argument only refutes when constant propagation's facts are
//! sound for the block it appears in. When in doubt the screen stays
//! silent and the pipeline proceeds to symbolic execution.

use octo_cfg::FuncCfg;
use octo_ir::{decode_func_addr, BlockId, FuncId, Function, Inst, Operand, Program, Terminator};

use crate::constprop::{self, CVal, Provenance};
use crate::dataflow::reachable_blocks;

/// Best-effort per-function CFG: like dynamic mode, but an indirect jump
/// with no address-taken candidates marks the block unresolved instead of
/// failing the whole build. Used by the lint driver so one pathological
/// function does not blind the analysis of every other.
pub fn lenient_func_cfg(func: &Function) -> FuncCfg {
    let n = func.blocks.len();
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    let mut calls: Vec<(BlockId, FuncId)> = Vec::new();
    let mut unresolved: Vec<BlockId> = Vec::new();

    let mut addr_taken: Vec<BlockId> = Vec::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Inst::BlockAddr { block, .. } = inst {
                if !addr_taken.contains(block) {
                    addr_taken.push(*block);
                }
            }
        }
    }

    for (bi, b) in func.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for inst in &b.insts {
            if let Inst::Call { callee, .. } = inst {
                calls.push((bid, *callee));
            }
        }
        match &b.term {
            Terminator::JmpIndirect { .. } => {
                if addr_taken.is_empty() {
                    unresolved.push(bid);
                } else {
                    succs[bi].extend(addr_taken.iter().copied());
                }
            }
            t => succs[bi].extend(t.static_successors()),
        }
        succs[bi].sort_by_key(|b| b.0);
        succs[bi].dedup();
    }

    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (bi, ss) in succs.iter().enumerate() {
        for s in ss {
            preds[s.0 as usize].push(BlockId(bi as u32));
        }
    }
    calls.sort_by_key(|(b, f)| (b.0, f.0));
    calls.dedup();

    FuncCfg {
        succs,
        preds,
        calls,
        unresolved_indirect: unresolved,
    }
}

/// The interprocedural call graph, as over-approximated statically.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per caller: callees of direct `call` instructions in blocks that
    /// can execute.
    pub direct: Vec<Vec<FuncId>>,
    /// Per caller: exact callees of `icall`s whose target resolved to a
    /// function-address constant.
    pub resolved_icalls: Vec<Vec<FuncId>>,
    /// Per caller: whether some `icall`'s target did *not* resolve — that
    /// call may reach any function in the program.
    pub unknown_icall: Vec<bool>,
    /// Per function: whether its address is materialised (`faddr`)
    /// anywhere in the program.
    pub addr_taken: Vec<bool>,
    /// Every `icall` site whose target did not resolve statically, in
    /// (caller, block) order. These are the sites that force
    /// [`CallGraph::unknown_icall`] — kept individually so lints can
    /// point at them instead of silently widening the graph.
    pub unresolved_icall_sites: Vec<(FuncId, BlockId)>,
}

/// How a function is reached from a root, distinguishing edges the
/// static graph proves from edges it merely cannot rule out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachKind {
    /// Not reachable even with every unknown indirect call widened.
    No,
    /// Reachable through direct calls and exactly-resolved `icall`s only.
    Direct,
    /// Reachable only if some unknown indirect call hits it — the
    /// over-approximation, not a proven path.
    OverApprox,
}

impl CallGraph {
    /// Functions reachable from `from` over the call graph, where an
    /// unknown indirect call conservatively reaches every function.
    pub fn reachable_from(&self, from: FuncId) -> Vec<bool> {
        let n = self.direct.len();
        let mut seen = vec![false; n];
        let mut stack = vec![from.0 as usize];
        seen[from.0 as usize] = true;
        while let Some(f) = stack.pop() {
            let visit = |callee: usize, seen: &mut Vec<bool>, stack: &mut Vec<usize>| {
                if !seen[callee] {
                    seen[callee] = true;
                    stack.push(callee);
                }
            };
            for c in self.direct[f].iter().chain(self.resolved_icalls[f].iter()) {
                visit(c.0 as usize, &mut seen, &mut stack);
            }
            if self.unknown_icall[f] {
                for callee in 0..n {
                    visit(callee, &mut seen, &mut stack);
                }
            }
        }
        seen
    }

    /// Like [`CallGraph::reachable_from`], but classifies every function
    /// as [`ReachKind::Direct`] (reachable over proven edges alone),
    /// [`ReachKind::OverApprox`] (reachable only via the unknown-icall
    /// widening) or [`ReachKind::No`].
    pub fn reach_kinds_from(&self, from: FuncId) -> Vec<ReachKind> {
        let n = self.direct.len();
        // Pass 1: proven edges only.
        let mut direct = vec![false; n];
        let mut stack = vec![from.0 as usize];
        direct[from.0 as usize] = true;
        while let Some(f) = stack.pop() {
            for c in self.direct[f].iter().chain(self.resolved_icalls[f].iter()) {
                let c = c.0 as usize;
                if !direct[c] {
                    direct[c] = true;
                    stack.push(c);
                }
            }
        }
        // Pass 2: the full over-approximation.
        let wide = self.reachable_from(from);
        (0..n)
            .map(|f| match (direct[f], wide[f]) {
                (true, _) => ReachKind::Direct,
                (false, true) => ReachKind::OverApprox,
                (false, false) => ReachKind::No,
            })
            .collect()
    }
}

/// Builds the call graph of `program`.
pub fn build_call_graph(program: &Program) -> CallGraph {
    let n = program.function_count();
    let mut direct: Vec<Vec<FuncId>> = vec![Vec::new(); n];
    let mut resolved_icalls: Vec<Vec<FuncId>> = vec![Vec::new(); n];
    let mut unknown_icall = vec![false; n];
    let mut addr_taken = vec![false; n];
    let mut unresolved_icall_sites: Vec<(FuncId, BlockId)> = Vec::new();

    for (_, f) in program.iter() {
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::FuncAddr { func, .. } = inst {
                    addr_taken[func.0 as usize] = true;
                }
            }
        }
    }

    for (fid, func) in program.iter() {
        let cfg = lenient_func_cfg(func);
        // Any indirect jump — even one with address-taken candidates —
        // means the recovered CFG may miss edges: a computed block
        // address can land on a block `baddr` never named. Edge
        // collection must then scan every block, and the dataflow facts
        // (solved over the possibly-incomplete graph) cannot be trusted.
        let has_ijmp = func.blocks.iter().any(|b| b.term.is_indirect());
        let reach = reachable_blocks(&cfg);
        let fi = fid.0 as usize;
        let states = (!has_ijmp).then(|| constprop::analyze(func, fid, &cfg).0);

        for (bi, block) in func.blocks.iter().enumerate() {
            // In a soundly-recovered function, unreachable blocks never
            // execute and contribute no edges. With any indirect jump the
            // recovered graph may miss edges, so every block might run.
            if !has_ijmp && !reach[bi] {
                continue;
            }
            let mut regs = match &states {
                Some(s) => s.input[bi].clone(),
                None => vec![CVal::Nac; func.n_regs as usize],
            };
            for inst in &block.insts {
                match inst {
                    Inst::Call { callee, .. } if !direct[fi].contains(callee) => {
                        direct[fi].push(*callee);
                    }
                    Inst::CallIndirect { target, .. } => {
                        let resolved = match target {
                            // An immediate target is a fixed value no
                            // matter what the dataflow facts say.
                            Operand::Imm(v) => decode_func_addr(*v),
                            Operand::Reg(_) => match constprop::eval_operand(target, &regs) {
                                CVal::Known {
                                    value,
                                    prov: Provenance::Func,
                                } => decode_func_addr(value),
                                _ => None,
                            },
                        };
                        match resolved {
                            Some(callee) if (callee.0 as usize) < n => {
                                if !resolved_icalls[fi].contains(&callee) {
                                    resolved_icalls[fi].push(callee);
                                }
                            }
                            _ => {
                                unknown_icall[fi] = true;
                                let site = (fid, BlockId(bi as u32));
                                if !unresolved_icall_sites.contains(&site) {
                                    unresolved_icall_sites.push(site);
                                }
                            }
                        }
                    }
                    _ => {}
                }
                constprop::transfer_inst(inst, &mut regs, fid);
            }
        }
    }

    CallGraph {
        direct,
        resolved_icalls,
        unknown_icall,
        addr_taken,
        unresolved_icall_sites,
    }
}

/// A conclusive pre-screen finding (absence means "proceed to symex").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prescreen {
    /// No call chain from the program entry reaches `ep`.
    EpUnreachable,
    /// Recorded `ep` entry `entry` can never be stitched: every static
    /// call site passes a constant that disagrees with the recording.
    ArgsNeverMatch {
        /// Index of the unmatchable recorded entry.
        entry: usize,
    },
}

/// Runs the static pre-screen of `ep` in `program` against the crash
/// recording's per-entry argument values.
///
/// Returns `None` whenever static knowledge is insufficient to decide —
/// the screen never guesses.
pub fn prescreen_ep(
    program: &Program,
    ep: FuncId,
    recorded_args: &[Vec<u64>],
) -> Option<Prescreen> {
    let cg = build_call_graph(program);
    let reach = cg.reachable_from(program.entry());
    if !reach[ep.0 as usize] {
        return Some(Prescreen::EpUnreachable);
    }

    // Argument screen. Bail out (stay silent) unless every way of
    // entering `ep` is a statically visible direct call.
    if recorded_args.is_empty() || cg.addr_taken[ep.0 as usize] {
        return None;
    }
    if (0..program.function_count()).any(|f| reach[f] && cg.unknown_icall[f]) {
        return None;
    }

    let mut sites: Vec<Vec<CVal>> = Vec::new();
    for (fid, func) in program.iter() {
        if !reach[fid.0 as usize] {
            continue;
        }
        let cfg = lenient_func_cfg(func);
        // Mirror build_call_graph: any ijmp may hide CFG edges, making
        // both block reachability and the dataflow facts untrustworthy.
        let has_ijmp = func.blocks.iter().any(|b| b.term.is_indirect());
        let block_reach = reachable_blocks(&cfg);
        let states = (!has_ijmp).then(|| constprop::analyze(func, fid, &cfg).0);
        for (bi, block) in func.blocks.iter().enumerate() {
            // Sites in provably dead blocks still count (harmless: they
            // only weaken the screen), but their register facts do not.
            let facts_ok = !has_ijmp && block_reach[bi];
            let mut regs = match (&states, facts_ok) {
                (Some(s), true) => s.input[bi].clone(),
                _ => vec![CVal::Nac; func.n_regs as usize],
            };
            for inst in &block.insts {
                if let Inst::Call { callee, args, .. } = inst {
                    if *callee == ep {
                        sites.push(
                            args.iter()
                                .map(|a| match a {
                                    Operand::Imm(v) => CVal::known(*v),
                                    Operand::Reg(_) if facts_ok => {
                                        constprop::eval_operand(a, &regs)
                                    }
                                    Operand::Reg(_) => CVal::Nac,
                                })
                                .collect(),
                        );
                    }
                }
                constprop::transfer_inst(inst, &mut regs, fid);
            }
        }
    }
    if sites.is_empty() {
        return None;
    }

    for (k, recorded) in recorded_args.iter().enumerate() {
        let all_conflict = sites.iter().all(|site| {
            site.iter()
                .zip(recorded.iter())
                .any(|(cv, want)| matches!(cv.as_const(), Some(have) if have != *want))
        });
        if all_conflict {
            return Some(Prescreen::ArgsNeverMatch { entry: k });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    #[test]
    fn unreachable_ep_detected() {
        let p = parse_program(
            "func main() {\nentry:\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        assert_eq!(prescreen_ep(&p, ep, &[]), Some(Prescreen::EpUnreachable));
    }

    #[test]
    fn transitively_reachable_ep_passes() {
        let p = parse_program(
            "func main() {\nentry:\n call mid()\n halt 0\n}\n\
             func mid() {\nentry:\n r = call ep(1)\n ret\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        assert_eq!(prescreen_ep(&p, ep, &[]), None);
    }

    #[test]
    fn constant_argument_conflict_detected() {
        // Every site passes tag 0x100; the crash recorded tag 0x13d.
        let p = parse_program(
            "func main() {\nentry:\n r = call ep(0x100, 5)\n s = call ep(0x101, 6)\n \
             halt 0\n}\n\
             func ep(tag, v) {\nentry:\n ret v\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        assert_eq!(
            prescreen_ep(&p, ep, &[vec![0x13d, 0xdead]]),
            Some(Prescreen::ArgsNeverMatch { entry: 0 })
        );
        // A recording the sites can produce is not refuted.
        assert_eq!(prescreen_ep(&p, ep, &[vec![0x100, 5]]), None);
    }

    #[test]
    fn non_constant_argument_stays_silent() {
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n r = call ep(v)\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        assert_eq!(prescreen_ep(&p, ep, &[vec![0x13d]]), None);
    }

    #[test]
    fn address_taken_ep_disables_argument_screen() {
        let p = parse_program(
            "func main() {\nentry:\n g = faddr ep\n r = call ep(1)\n s = icall g(9)\n \
             halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        assert_eq!(prescreen_ep(&p, ep, &[vec![2]]), None);
    }

    #[test]
    fn unknown_icall_disables_argument_screen_and_widens_reachability() {
        // The icall target comes from input — it could be anything,
        // including ep.
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n r = icall v(1)\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let ep = p.func_by_name("ep").unwrap();
        // Reachable through the unknown icall, and no argument verdict.
        assert_eq!(prescreen_ep(&p, ep, &[vec![2]]), None);
    }

    #[test]
    fn computed_block_address_does_not_drop_call_edges() {
        // `t2 = t + 1` lands on block `b`, which `baddr` never names: the
        // lenient CFG thinks `b` is dead, yet it runs and calls `helper`.
        // A sound call graph must keep that edge (and the pre-screen must
        // not declare helper unreachable).
        let p = parse_program(
            "func main() {\nentry:\n t = baddr a\n t2 = add t, 1\n ijmp t2\n\
             a:\n halt 0\n\
             b:\n call helper()\n halt 1\n}\n\
             func helper() {\nentry:\n ret\n}\n",
        )
        .unwrap();
        let cg = build_call_graph(&p);
        let helper = p.func_by_name("helper").unwrap();
        let reach = cg.reachable_from(p.entry());
        assert!(
            reach[helper.0 as usize],
            "call edge in a lenient-unreachable block was dropped"
        );
        assert_eq!(prescreen_ep(&p, helper, &[]), None);
    }

    #[test]
    fn unresolved_icall_sites_are_recorded() {
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n r = icall v(1)\n halt 0\n}\n\
             func ep(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let cg = build_call_graph(&p);
        assert_eq!(cg.unresolved_icall_sites, vec![(p.entry(), BlockId(0))]);
    }

    #[test]
    fn reach_kinds_distinguish_proven_from_widened() {
        let p = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n r = icall v(1)\n \
             call sub()\n halt 0\n}\n\
             func sub() {\nentry:\n ret\n}\n\
             func maybe(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let cg = build_call_graph(&p);
        let kinds = cg.reach_kinds_from(p.entry());
        let sub = p.func_by_name("sub").unwrap();
        let maybe = p.func_by_name("maybe").unwrap();
        assert_eq!(kinds[p.entry().0 as usize], ReachKind::Direct);
        assert_eq!(kinds[sub.0 as usize], ReachKind::Direct);
        assert_eq!(kinds[maybe.0 as usize], ReachKind::OverApprox);
    }

    #[test]
    fn resolved_icall_contributes_exact_edge() {
        let p = parse_program(
            "func main() {\nentry:\n g = faddr a\n r = icall g(1)\n halt 0\n}\n\
             func a(x) {\nentry:\n ret x\n}\n\
             func b(x) {\nentry:\n ret x\n}\n",
        )
        .unwrap();
        let cg = build_call_graph(&p);
        let a = p.func_by_name("a").unwrap();
        let b = p.func_by_name("b").unwrap();
        let reach = cg.reachable_from(p.entry());
        assert!(reach[a.0 as usize]);
        assert!(!reach[b.0 as usize]);
        assert!(!cg.unknown_icall[p.entry().0 as usize]);
    }
}
